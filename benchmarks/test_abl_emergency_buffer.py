"""Extra ablation (DESIGN.md §5): SmartHarvest emergency-buffer size.

The paper notes the buffer trades utilization for Primary protection
("resulting in even lower core utilization"). We sweep the buffer size in
the software baseline: more buffer cores soften the tail but cost
utilization/throughput; HardHarvest needs no buffer at all.
"""

from dataclasses import replace

from conftest import SWEEP_SIM, bench_run_systems, once

from repro.analysis.report import format_table
from repro.core.presets import harvest_block, hardharvest_block

SIZES = (0, 2, 4)


def build_systems():
    base = harvest_block()
    systems = {
        f"buffer={n}": replace(
            base, smartharvest=replace(base.smartharvest, emergency_buffer_cores=n)
        )
        for n in SIZES
    }
    systems["HardHarvest"] = hardharvest_block()
    return systems


def run_all():
    return bench_run_systems(build_systems(), SWEEP_SIM)


def test_ablation_emergency_buffer(benchmark):
    results = once(benchmark, run_all)
    cols = ["P99 ms", "busy cores", "batch units/s", "borrows"]
    rows = {
        name: [
            res.avg_p99_ms(),
            res.avg_busy_cores,
            res.batch_units_per_s,
            float(res.counters.get("buffer_borrows", 0)),
        ]
        for name, res in results.items()
    }
    print("\n" + format_table(
        "Ablation: SmartHarvest emergency-buffer size", cols, rows))

    # The buffer is actually exercised when present.
    assert results["buffer=2"].counters.get("buffer_borrows", 0) > 0
    assert results["buffer=0"].counters.get("buffer_borrows", 0) == 0
    # HardHarvest without any buffer still beats every software point on
    # the tail AND on utilization — the paper's core claim.
    hh = results["HardHarvest"]
    for n in SIZES:
        sw = results[f"buffer={n}"]
        assert hh.avg_p99_ms() < sw.avg_p99_ms()
        assert hh.avg_busy_cores > sw.avg_busy_cores
