"""Shared infrastructure for the per-figure benchmark harnesses.

Each ``benchmarks/test_*`` file regenerates one table or figure of the
paper: it runs the relevant systems on the standard workload, prints the
same rows/series the paper reports, and asserts the qualitative shape
(who wins, roughly by how much). Expensive multi-system runs are shared
through session-scoped fixtures.

Scale note: ``BENCH_SIM`` simulates 500 ms of an 8-Primary-VM server per
system — large enough for stable P99s at the paper's request rates, small
enough that the full suite finishes in minutes. Set ``REPRO_BENCH_SCALE``
(e.g. ``2.0``) to lengthen every run for tighter percentiles.

Parallelism/caching: multi-system fixtures go through the
:mod:`repro.parallel` runner.  ``REPRO_BENCH_WORKERS=N`` fans the systems
out over N processes (results are bit-identical to serial), and
``REPRO_BENCH_CACHE=<dir>`` serves unchanged runs from the
content-addressed result cache, making benchmark re-runs near-instant.
"""

from __future__ import annotations

import os

import pytest

from repro.config import SimulationConfig
from repro.core.experiment import run_systems
from repro.core.presets import all_systems
from repro.parallel import ResultCache

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE", "")


def bench_run_systems(systems, simcfg):
    """Run a dict of systems through the parallel runner.

    Honors ``REPRO_BENCH_WORKERS``/``REPRO_BENCH_CACHE``; with neither set
    it degrades to the plain serial path (identical results either way).
    """
    cache = ResultCache(root=_CACHE_DIR) if _CACHE_DIR else None
    if _WORKERS <= 1 and cache is None:
        return run_systems(systems, simcfg)
    return run_systems(systems, simcfg, workers=_WORKERS, cache=cache)

BENCH_SIM = SimulationConfig(
    horizon_ms=500.0 * _SCALE,
    warmup_ms=80.0,
    accesses_per_segment=24,
    seed=2025,
)

#: Shorter config for wide sweeps (throughput converges quickly).
SWEEP_SIM = SimulationConfig(
    horizon_ms=280.0 * _SCALE,
    warmup_ms=60.0,
    accesses_per_segment=20,
    seed=2025,
)


@pytest.fixture(scope="session")
def five_systems():
    """The five evaluated architectures on the identical workload."""
    return bench_run_systems(all_systems(), BENCH_SIM)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def save_table(figure_id: str, columns, rows) -> str:
    """Persist a figure's rows as CSV under ``bench_results/`` so runs
    leave a machine-readable artifact trail. Returns the path."""
    import csv

    out_dir = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{figure_id}.csv")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["name"] + list(columns))
        for name, values in rows.items():
            writer.writerow([name] + list(values))
    return path
