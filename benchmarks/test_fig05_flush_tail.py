"""F5 — Figure 5: P99 tail latency under cache/TLB flushing and, for the
last two bars, flushing plus optimized hypervisor reassignment.

Five configurations: No-Flush, Flush-Term, Flush-Block (wbinvd-style flush
with zero-cost reassignment), Harvest-Term, Harvest-Block (flush + optimized
reassignment — "the current true cost"). Paper: flushing alone raises the
average P99 by 2.7x/3.3x; with reassignment 3.6x/4.2x.
"""

from conftest import SWEEP_SIM, bench_run_systems, once

from repro.analysis.report import format_table, with_average
from repro.config import HarvestTrigger
from repro.core.presets import fig5_flush, fig5_harvest, fig5_no_flush
from repro.workloads.microservices import SERVICE_NAMES

SYSTEMS = {
    "No-Flush": fig5_no_flush(),
    "Flush-Term": fig5_flush(HarvestTrigger.ON_TERMINATION),
    "Flush-Block": fig5_flush(HarvestTrigger.ON_BLOCK),
    "Harvest-Term": fig5_harvest(HarvestTrigger.ON_TERMINATION),
    "Harvest-Block": fig5_harvest(HarvestTrigger.ON_BLOCK),
}


def run_all():
    return bench_run_systems(SYSTEMS, SWEEP_SIM)


def test_fig05_flush_and_cold_restart_tail(benchmark):
    results = once(benchmark, run_all)
    cols = list(SERVICE_NAMES) + ["Avg"]
    rows = {
        name: list(with_average(res.p99_ms).values())
        for name, res in results.items()
    }
    print("\n" + format_table(
        "Figure 5: P99 with cache/TLB flushing (+ reassignment)", cols, rows,
        unit="ms"))

    base = results["No-Flush"].avg_p99_ms()
    ratios = {
        name: results[name].avg_p99_ms() / base for name in SYSTEMS if name != "No-Flush"
    }
    print("  degradation vs No-Flush: " + "  ".join(
        f"{k} {v:.2f}x" for k, v in ratios.items()
    ) + "  (paper: 2.7x 3.3x 3.6x 4.2x)")

    # Flushing hurts the tail in every configuration; the aggressive Block
    # variants (more transitions -> more flushes) hurt clearly more.
    for name, ratio in ratios.items():
        assert ratio > 1.05, (name, ratio)
    assert ratios["Flush-Block"] > 1.2
    assert ratios["Harvest-Block"] > 1.2
    assert ratios["Harvest-Block"] > ratios["Harvest-Term"]
    # Adding reassignment on top of flushing does not make things better
    # (within single-seed noise between the Term/Block variants).
    harvest_mean = (ratios["Harvest-Term"] + ratios["Harvest-Block"]) / 2
    flush_mean = (ratios["Flush-Term"] + ratios["Flush-Block"]) / 2
    assert harvest_mean > flush_mean * 0.85
    # Flushes really happened (cold restarts observed as flushed entries).
    assert results["Flush-Block"].counters.get("reclaims", 0) > 0
