"""F17 — Figure 17: throughput of Harvest VMs, normalized to NoHarvest.

One batch application per server (the paper's 8-server cluster). We run
each job under NoHarvest, Harvest-Term (the software baseline), and
HardHarvest-Block (the proposal). Paper: Harvest-Term 1.7x, HardHarvest-
Block 3.1x on average; memory-intensive jobs (RndFTrain) gain slightly less.
"""

from conftest import SWEEP_SIM, once

from repro.analysis.report import format_table
from repro.core.experiment import run_server
from repro.core.presets import harvest_term, hardharvest_block, noharvest
from repro.workloads.batch import BATCH_JOBS, BATCH_NAMES

SYSTEMS = {
    "NoHarvest": noharvest(),
    "Harvest-Term": harvest_term(),
    "HardHarvest-Block": hardharvest_block(),
}


def run_all():
    results = {}
    for name, system in SYSTEMS.items():
        per_job = {}
        for i, job in enumerate(BATCH_JOBS):
            res = run_server(system, SWEEP_SIM, batch_job=job, server_index=i)
            per_job[job.name] = res.batch_units_per_s
        results[name] = per_job
    return results


def test_fig17_harvest_vm_throughput(benchmark):
    results = once(benchmark, run_all)
    base = results["NoHarvest"]
    cols = list(BATCH_NAMES) + ["Avg"]
    rows = {}
    for name, per_job in results.items():
        normalized = [per_job[j] / base[j] for j in BATCH_NAMES]
        rows[name] = normalized + [sum(normalized) / len(normalized)]
    print("\n" + format_table(
        "Figure 17: Harvest VM throughput normalized to NoHarvest",
        cols, rows))
    from repro.analysis.plots import grouped_bar_chart

    print(grouped_bar_chart(
        "Figure 17 (per batch job)",
        {
            job: {name: results[name][job] / base[job] for name in results}
            for job in BATCH_NAMES[:4]
        },
        unit="x",
    ))

    sw_avg = rows["Harvest-Term"][-1]
    hh_avg = rows["HardHarvest-Block"][-1]
    print(f"  averages: Harvest-Term {sw_avg:.2f}x (paper 1.7x), "
          f"HardHarvest-Block {hh_avg:.2f}x (paper 3.1x)")

    # Shape: both harvest; HardHarvest close to twice the software gain.
    assert sw_avg > 1.2
    assert hh_avg > sw_avg * 1.4
    # Memory-intensive RndFTrain gains less than the average under
    # HardHarvest (reduced cache share hurts it most).
    hh = rows["HardHarvest-Block"]
    rndf = hh[BATCH_NAMES.index("RndFTrain")]
    assert rndf < hh_avg * 1.05
