"""Extra ablation (DESIGN.md §5): harvest-region size.

The paper defaults to 50% of the ways (Table 1) and notes the region could
be 1/2 or 1/3 of the structure. We sweep the fraction and check the
tradeoff: a bigger harvest region gives batch work more cache (throughput
up) but leaves the Primary VM less protected state.
"""

from dataclasses import replace

from conftest import SWEEP_SIM, bench_run_systems, once

from repro.analysis.report import format_table
from repro.core.presets import hardharvest_block

FRACTIONS = (0.33, 0.50, 0.67)


def build_systems():
    base = hardharvest_block()
    return {
        f"region={int(f * 100)}%": replace(
            base, partition=replace(base.partition, harvest_fraction=f)
        )
        for f in FRACTIONS
    }


def run_all():
    return bench_run_systems(build_systems(), SWEEP_SIM)


def test_ablation_harvest_region_size(benchmark):
    results = once(benchmark, run_all)
    cols = ["P99 ms", "P50 ms", "batch units/s", "busy cores"]
    rows = {
        name: [res.avg_p99_ms(), res.avg_p50_ms(), res.batch_units_per_s,
               res.avg_busy_cores]
        for name, res in results.items()
    }
    print("\n" + format_table(
        "Ablation: harvest-region fraction (HardHarvest-Block)", cols, rows))

    # Primary latency stays in a narrow band across region sizes (the
    # mechanism is robust), and utilization stays high everywhere.
    p99s = [r.avg_p99_ms() for r in results.values()]
    assert max(p99s) < min(p99s) * 1.4
    for res in results.values():
        assert res.avg_busy_cores > 28
