"""F7 — Figure 7: tail latency with a fraction of the cache/TLB hierarchy.

The paper scales the *ways* of every cache and TLB to 100/75/50/25% (sets
constant), plus an infinite-cache bar, and finds microservices barely
suffer until 25% — the small-working-set observation that motivates
way-partitioning.
"""

from dataclasses import replace

from conftest import SWEEP_SIM, bench_run_systems, once

from repro.analysis.report import format_table, with_average
from repro.core.presets import noharvest
from repro.workloads.microservices import SERVICE_NAMES


def build_systems():
    base = noharvest()
    systems = {
        "Inf": replace(base, hierarchy=replace(base.hierarchy, infinite=True)),
        "100%": base,
    }
    for frac in (0.75, 0.50, 0.25):
        systems[f"{int(frac * 100)}%"] = replace(
            base, hierarchy=base.hierarchy.scaled(frac)
        )
    return systems


def run_all():
    return bench_run_systems(build_systems(), SWEEP_SIM)


def test_fig07_cache_size_sensitivity(benchmark):
    results = once(benchmark, run_all)
    cols = list(SERVICE_NAMES) + ["Avg"]
    rows = {
        name: list(with_average(res.p99_ms).values())
        for name, res in results.items()
    }
    print("\n" + format_table(
        "Figure 7: P99 vs fraction of the cache/TLB hierarchy", cols, rows,
        unit="ms"))

    inf = results["Inf"].avg_p99_ms()
    full = results["100%"].avg_p99_ms()
    half = results["50%"].avg_p99_ms()
    quarter = results["25%"].avg_p99_ms()
    print(f"  Avg P99: Inf {inf:.2f}  100% {full:.2f}  50% {half:.2f}  "
          f"25% {quarter:.2f} ms")

    # Shape: infinite <= full; half costs little (paper: "very small
    # impact even with 1/2"); quarter is the worst finite point.
    assert inf <= full * 1.02
    assert half <= full * 1.30
    assert quarter >= half * 0.98
    assert quarter >= full
