"""Data-plane benchmark: split-key hashing, cache v2, warm-run speedup.

Measures the three layers of the data-plane fast path against the
``REPRO_DATAPLANE_SLOWPATH=1`` reference on one 128-server cluster
configuration, and records the evidence that the optimization changed
*nothing* about the results:

* **Keying microbench** — legacy ``cache.key(point.payload())`` (full
  ``canonical_json`` per point) vs split-key
  ``cache.key_json(point.payload_json())`` (memoized fragments), in
  keys/second over the run's actual sweep points.
* **Cold + warm cluster runs** — the full configuration is run cold and
  then warm (same cache directory, fresh :class:`ResultCache` instance)
  under both the legacy path (v1 entries, full-payload keying,
  uncompressed dict IPC) and the fast path (v2 entries, split keys,
  worker memo, compressed chunk IPC).  The headline is the *warm*
  speedup: a warm re-run is pure data plane, so it isolates exactly what
  this fast path optimizes.
* **Disk footprint** — ``disk_stats()`` bytes of the v1 directory vs the
  v2 directory for the same entries.
* **Digest gates** — the record is only written as passing if the cold
  legacy, cold fast, warm legacy, and warm fast runs (plus a
  scaled-down workers=1 vs workers=N cross-check) all carry one
  bit-identical digest.  A speedup that changed a digest is a bug, not
  a result.

Usage::

    PYTHONPATH=src python benchmarks/dataplane_bench.py \
        --servers 128 --requests 60000 --workers 4

CI runs a scaled-down configuration; the defaults match the nightly
record.  Exits non-zero if a digest diverges or a ``--min-*`` floor is
missed.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from dataclasses import replace

import repro
from repro.cluster_scale import (
    ROUTING_POLICY_NAMES,
    ClusterScaleConfig,
    RoutingPolicy,
    run_cluster_scale,
)
from repro.config import SimulationConfig, SystemKind
from repro.core.presets import build_system
from repro.parallel.cache import ResultCache
from repro.parallel.sweep import SweepPoint, clear_fragment_memo
from repro.workloads.batch import BATCH_JOBS

sys.path.insert(0, os.path.dirname(__file__))
from _timing import env_overrides, write_record  # noqa: E402

#: Environment selecting the pre-fast-path reference implementation.
SLOWPATH = {"REPRO_DATAPLANE_SLOWPATH": "1"}
FASTPATH = {"REPRO_DATAPLANE_SLOWPATH": None}


def _build(args):
    system = build_system(SystemKind(args.system))
    if args.harvest_base is not None:
        system = replace(
            system,
            cluster=replace(
                system.cluster, harvest_vm_base_cores=args.harvest_base
            ),
        )
    sim = SimulationConfig(
        seed=args.seed,
        accesses_per_segment=args.accesses,
        warmup_ms=args.warmup_ms,
    )
    cfg = ClusterScaleConfig(
        servers=args.servers,
        requests=args.requests,
        epochs=args.epochs,
        epoch_ms=args.epoch_ms,
        warmup_ms=args.warmup_ms,
        routing=RoutingPolicy(args.routing),
        harvest_max_cores=args.harvest_max,
    )
    return system, sim, cfg


def _sample_points(system, sim, cfg):
    """Representative sweep points: one per server, as epoch 0 builds them."""
    return [
        SweepPoint(
            label=f"epoch=0/server={i}",
            system=system,
            sim=replace(
                sim,
                horizon_ms=cfg.epoch_ms,
                servers_to_simulate=cfg.servers,
            ),
            batch_job=BATCH_JOBS[i % len(BATCH_JOBS)],
            server_index=i,
        )
        for i in range(cfg.servers)
    ]


def _keying_bench(points, min_seconds=0.3):
    """keys/second for legacy full-payload vs split-key hashing."""
    cache = ResultCache(root="/nonexistent")

    def run(fn):
        clear_fragment_memo()
        total, elapsed = 0, 0.0
        while elapsed < min_seconds:
            t0 = time.perf_counter()
            for p in points:
                fn(p)
            elapsed += time.perf_counter() - t0
            total += len(points)
        return total / elapsed

    legacy = run(lambda p: cache.key(p.payload()))
    split = run(lambda p: cache.key_json(p.payload_json()))
    # The two paths must agree on every key before their speeds mean a thing.
    for p in points:
        assert cache.key(p.payload()) == cache.key_json(p.payload_json())
    return {
        "points": len(points),
        "legacy_keys_per_s": round(legacy, 1),
        "split_keys_per_s": round(split, 1),
        "speedup": round(split / legacy, 2),
    }


def _timed_run(system, sim, cfg, workers, cache_dir, env, progress):
    """One cluster run in a given env; returns (elapsed_s, digest, stats)."""
    with env_overrides(env):
        cache = ResultCache(root=cache_dir)
        t0 = time.perf_counter()
        result = run_cluster_scale(
            system, sim, cfg, workers=workers, cache=cache, progress=progress
        )
        elapsed = time.perf_counter() - t0
    return elapsed, result.digest(), cache.stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=128)
    parser.add_argument("--requests", type=int, default=9_000,
                        help="total routed requests (kept modest so the "
                             "routing stage, which both paths share, does "
                             "not drown the data plane being measured)")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--epoch-ms", type=float, default=20.0)
    parser.add_argument("--warmup-ms", type=float, default=5.0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--routing", choices=sorted(ROUTING_POLICY_NAMES),
                        default="p2c")
    parser.add_argument("--system", default=SystemKind.HARDHARVEST_BLOCK.value,
                        choices=[k.value for k in SystemKind])
    parser.add_argument("--accesses", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--harvest-base", type=int, default=2)
    parser.add_argument("--harvest-max", type=int, default=4)
    parser.add_argument("--warm-rounds", type=int, default=3,
                        help="warm re-runs per mode; best (min) is reported")
    parser.add_argument("--min-warm-speedup", type=float, default=3.0,
                        help="required warm legacy/fast wall ratio (0 skips)")
    parser.add_argument("--min-compression", type=float, default=4.0,
                        help="required v1/v2 disk-bytes ratio (0 skips)")
    parser.add_argument("--out", default=None,
                        help="output path (default "
                             "bench_results/BENCH_dataplane.json)")
    args = parser.parse_args(argv)

    system, sim, cfg = _build(args)

    def progress(message: str) -> None:
        print(f"[{time.strftime('%H:%M:%S')}] {message}", flush=True)

    progress(f"keying microbench over {cfg.servers} point(s)")
    keying = _keying_bench(_sample_points(system, sim, cfg))
    progress(
        f"keying: legacy {keying['legacy_keys_per_s']:.0f}/s, "
        f"split {keying['split_keys_per_s']:.0f}/s "
        f"({keying['speedup']:.1f}x)"
    )

    work = tempfile.mkdtemp(prefix="dataplane_bench.")
    dir_v1 = os.path.join(work, "cache_v1")
    dir_v2 = os.path.join(work, "cache_v2")
    try:
        digests = {}
        record: dict = {}

        # Cold runs populate each directory in its native format.
        progress("cold run: legacy slow path (v1 entries)")
        cold_legacy, digests["cold_legacy"], _ = _timed_run(
            system, sim, cfg, args.workers, dir_v1, SLOWPATH, progress
        )
        progress("cold run: fast path (v2 entries)")
        cold_fast, digests["cold_fast"], _ = _timed_run(
            system, sim, cfg, args.workers, dir_v2, FASTPATH, progress
        )

        # Warm re-runs: pure data plane.  Fresh cache instance per run so
        # every hit goes through key derivation + the disk entry.
        warm_legacy, warm_fast = [], []
        warm_stats = None
        for rnd in range(max(1, args.warm_rounds)):
            progress(f"warm round {rnd}: legacy then fast")
            t, digests["warm_legacy"], _ = _timed_run(
                system, sim, cfg, args.workers, dir_v1, SLOWPATH, None
            )
            warm_legacy.append(t)
            t, digests["warm_fast"], warm_stats = _timed_run(
                system, sim, cfg, args.workers, dir_v2, FASTPATH, None
            )
            warm_fast.append(t)
        # And the fast path reading the *v1* directory: transparent
        # migration under the same split keys, same digest.
        progress("warm run: fast path over the legacy v1 directory")
        _, digests["warm_fast_over_v1"], migrate_stats = _timed_run(
            system, sim, cfg, args.workers, dir_v1, FASTPATH, None
        )

        disk_v1 = ResultCache(root=dir_v1).disk_stats()
        disk_v2 = ResultCache(root=dir_v2).disk_stats()

        # Scaled-down worker-count cross-check (cold at 1 and N workers).
        small = ClusterScaleConfig(
            servers=5, requests=2000, epochs=2, epoch_ms=20.0, warmup_ms=4.0,
            routing=cfg.routing, harvest_max_cores=cfg.harvest_max_cores,
        )
        progress("cross-check: scaled-down cold runs at workers=1 and "
                 f"workers={max(2, args.workers)}")
        _, w1, _ = _timed_run(
            system, sim, small, 1, os.path.join(work, "x1"), FASTPATH, None
        )
        _, wn, _ = _timed_run(
            system, sim, small, max(2, args.workers),
            os.path.join(work, "xN"), FASTPATH, None
        )
        _, w1_legacy, _ = _timed_run(
            system, sim, small, 1, os.path.join(work, "x1v1"), SLOWPATH, None
        )
        cross = {"workers1": w1, "workersN": wn, "workers1_legacy": w1_legacy,
                 "identical": len({w1, wn, w1_legacy}) == 1}

        main_digests_equal = len(set(digests.values())) == 1
        warm_speedup = min(warm_legacy) / min(warm_fast)
        compression = (
            disk_v1["bytes"] / disk_v2["bytes"] if disk_v2["bytes"] else 0.0
        )
        record = {
            "benchmark": "dataplane",
            "version": repro.__version__,
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "system": system.name,
            "servers": cfg.servers,
            "epochs": cfg.epochs,
            "epoch_ms": cfg.epoch_ms,
            "requests": args.requests,
            "routing": cfg.routing.value,
            "accesses_per_segment": sim.accesses_per_segment,
            "workers": args.workers,
            "keying": keying,
            "cold_legacy_s": round(cold_legacy, 3),
            "cold_fast_s": round(cold_fast, 3),
            "cold_speedup": round(cold_legacy / cold_fast, 2),
            "warm_legacy_s": round(min(warm_legacy), 3),
            "warm_fast_s": round(min(warm_fast), 3),
            "warm_speedup": round(warm_speedup, 2),
            "warm_hit_rate": warm_stats.hit_rate(),
            "warm_over_v1_hit_rate": migrate_stats.hit_rate(),
            "disk_v1_bytes": disk_v1["bytes"],
            "disk_v2_bytes": disk_v2["bytes"],
            "disk_entries": disk_v2["entries"],
            "disk_by_format": {"v1": disk_v1["by_format"],
                               "v2": disk_v2["by_format"]},
            "compression_ratio": round(compression, 2),
            "digest": digests["cold_fast"],
            "digests": digests,
            "digests_equal": main_digests_equal,
            "cross_check": cross,
            "gates": {
                "min_warm_speedup": args.min_warm_speedup,
                "min_compression": args.min_compression,
            },
        }

        failures = []
        if not main_digests_equal:
            failures.append(f"digests diverged: {digests}")
        if not cross["identical"]:
            failures.append(f"worker-count cross-check diverged: {cross}")
        if warm_stats.hit_rate() < 1.0:
            failures.append(
                f"warm fast run missed the cache: {warm_stats.as_dict()}"
            )
        if migrate_stats.hit_rate() < 1.0:
            failures.append(
                "fast path missed over the v1 directory: "
                f"{migrate_stats.as_dict()}"
            )
        if args.min_warm_speedup and warm_speedup < args.min_warm_speedup:
            failures.append(
                f"warm speedup {warm_speedup:.2f}x < {args.min_warm_speedup}x"
            )
        if args.min_compression and compression < args.min_compression:
            failures.append(
                f"compression {compression:.2f}x < {args.min_compression}x"
            )
        record["ok"] = not failures

        write_record(record, "BENCH_dataplane.json", args.out)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    finally:
        shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
