"""F2 — Figure 2: CDF of Alibaba microservice-instance core utilization.

Regenerates the AlibabaAvg / AlibabaMax CDF series from the synthetic trace
generator and checks the two published anchor points: 50% of instances have
average utilization below 16.1%, and 90% have maximum utilization below
40.7%.
"""

import numpy as np
from conftest import once

from repro.workloads.alibaba import sample_instances, utilization_cdf

N_INSTANCES = 30_000


def build_cdfs():
    rng = np.random.default_rng(2025)
    instances = sample_instances(rng, N_INSTANCES)
    avg = [i.avg for i in instances]
    mx = [i.max for i in instances]
    return avg, mx


def test_fig02_alibaba_utilization_cdf(benchmark):
    avg, mx = once(benchmark, build_cdfs)
    xs, avg_cdf = utilization_cdf(avg, points=11)
    _, max_cdf = utilization_cdf(mx, points=11)

    print("\n== Figure 2: Core utilization CDF of Alibaba instances")
    print("  util    AlibabaAvg  AlibabaMax")
    for x, a, m in zip(xs, avg_cdf, max_cdf):
        print(f"  {x:4.1f}  {a:10.3f}  {m:10.3f}")
    print(f"  median(avg) = {np.median(avg):.3f} (paper: 0.161)")
    print(f"  p90(max)    = {np.percentile(mx, 90):.3f} (paper: 0.407)")

    assert abs(np.median(avg) - 0.161) < 0.02
    assert abs(np.percentile(mx, 90) - 0.407) < 0.05
    # CDFs are proper and Avg stochastically dominates Max.
    assert (np.diff(avg_cdf) >= 0).all() and (np.diff(max_cdf) >= 0).all()
    assert (avg_cdf >= max_cdf - 1e-9).all()
