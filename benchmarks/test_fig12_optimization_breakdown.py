"""F12 — Figure 12: cumulative impact of individual HardHarvest
optimizations on Primary VM P99 (harvesting enabled).

Starting from software Harvest-Block, the ladder applies: +Sched (hardware
request scheduler), +Queue (SRAM request queues), +CtxtSw (in-hardware
context switching), +Part (cache/TLB partitioning with LRU), +Flush
(efficient background flush), and finally the HardHarvest replacement
policy. Paper: cumulative reductions of 25.6/35.5/61.1/80.1/83.6/85.6%.
"""

from conftest import SWEEP_SIM, bench_run_systems, once

from repro.analysis.report import format_series
from repro.core.presets import fig12_ladder


def run_all():
    return bench_run_systems(fig12_ladder(), SWEEP_SIM)


def test_fig12_cumulative_optimizations(benchmark):
    results = once(benchmark, run_all)
    base = results["Harvest-Block"].avg_p99_ms()
    series = {}
    for name, res in results.items():
        p99 = res.avg_p99_ms()
        series[name] = p99
    print("\n" + format_series(
        "Figure 12: cumulative optimization ladder (avg P99, ms)", series))
    ladder = ["+Sched", "+Queue", "+CtxtSw", "+Part", "+Flush", "HardHarvest"]
    reductions = {n: 1 - results[n].avg_p99_ms() / base for n in ladder}
    print("  cumulative reduction vs Harvest-Block: " + "  ".join(
        f"{n} {r * 100:.1f}%" for n, r in reductions.items()
    ))
    print("  (paper: 25.6 / 35.5 / 61.1 / 80.1 / 83.6 / 85.6 %)")

    # Shape: the full ladder monotonically improves (small non-monotonic
    # wiggles between adjacent steps are within noise; the ends must hold).
    assert reductions["+Sched"] > 0.05
    assert reductions["HardHarvest"] > reductions["+Sched"]
    assert reductions["HardHarvest"] >= reductions["+Part"] - 0.05
    assert results["HardHarvest"].avg_p99_ms() < base * 0.8
