"""S — Section 6.8: storage, area, and power cost of HardHarvest.

Paper: 18.9 KB per controller (2K-entry RQ at 66 bits + 16 QM/state-register
pairs), 67.8 KB of Shared bits per server (1.9 KB/core by the paper's
accounting; our bit-exact inventory of the named structures gives 1.36
KB/core — the delta is documented in EXPERIMENTS.md), and ~0.19% / 0.16%
area/power overhead at 7 nm.
"""

from conftest import once

from repro.config import ControllerConfig, HierarchyConfig
from repro.hw.storage_cost import compute_storage_report


def test_sec68_storage_cost(benchmark):
    report = once(
        benchmark,
        lambda: compute_storage_report(ControllerConfig(), HierarchyConfig(), 36),
    )
    print("\n== Section 6.8: HardHarvest storage cost")
    print(f"  RQ storage            {report.rq_bytes / 1024:8.2f} KB")
    print(f"  QM + registers        {report.qm_bytes / 1024:8.2f} KB")
    print(f"  controller total      {report.controller_bytes / 1024:8.2f} KB (paper: 18.9 KB)")
    print(f"  Shared bits per core  {report.shared_bit_bytes_per_core / 1024:8.2f} KB (paper: 1.9 KB)")
    print(f"  Shared bits total     {report.shared_bit_bytes_total / 1024:8.2f} KB (paper: 67.8 KB)")
    print(f"  area overhead         {report.area_overhead_fraction * 100:8.3f} % (paper: 0.19%)")
    print(f"  power overhead        {report.power_overhead_fraction * 100:8.3f} % (paper: 0.16%)")

    assert abs(report.controller_bytes / 1024 - 18.9) < 0.2
    assert 1.0 < report.shared_bit_bytes_per_core / 1024 < 2.0
    assert report.area_overhead_fraction < 0.005
    assert report.power_overhead_fraction < report.area_overhead_fraction
