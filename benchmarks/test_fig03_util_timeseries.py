"""F3 — Figure 3: core utilization of a representative Alibaba VM over time.

Regenerates the bursty 30-second-granularity utilization series: a low
baseline with spikes toward the instance's maximum.
"""

import numpy as np
from conftest import once

from repro.workloads.alibaba import representative_instance, utilization_timeseries


def build_series():
    rng = np.random.default_rng(7)
    inst = representative_instance()
    return inst, utilization_timeseries(rng, inst, duration_s=510)


def test_fig03_utilization_timeseries(benchmark):
    inst, series = once(benchmark, build_series)
    print("\n== Figure 3: Core utilization of a representative Alibaba VM")
    print("  t[s]   utilization")
    for i, u in enumerate(series):
        bar = "#" * int(40 * u)
        print(f"  {i * 30:4d}   {u:5.2f} {bar}")

    # Shape checks: mostly low, with bursts approaching the maximum.
    assert series.mean() < 0.45
    assert series.max() > 0.55
    assert series.max() <= inst.max + 1e-9
    # At least one spike at >=2x the mean (the figure's defining feature).
    assert series.max() > 2 * series.mean() * 0.8
