"""Performance microbenchmarks of the simulator's own substrate.

Unlike the figure benches (one timed round of a whole experiment), these
use pytest-benchmark conventionally, timing the hot paths many times:
cache accesses, replacement decisions, queue operations, and the event
engine. Useful for keeping the simulator fast enough for the full suite.
"""

import numpy as np
import pytest

from repro.hw.request_queue import RequestQueue
from repro.mem.cache import SetAssocArray
from repro.mem.partition import full_mask
from repro.mem.replacement import HardHarvestPolicy, LruPolicy
from repro.sim.engine import Simulator


@pytest.fixture()
def access_stream():
    rng = np.random.default_rng(0)
    sets = rng.integers(0, 64, 4000)
    tags = (rng.random(4000) ** 2 * 300).astype(int)
    shared = rng.random(4000) < 0.5
    return list(zip(sets.tolist(), tags.tolist(), shared.tolist()))


def test_perf_cache_access_lru(benchmark, access_stream):
    arr = SetAssocArray("L2", 64, 8, LruPolicy())
    allowed = full_mask(8)

    def run():
        for s, t, sh in access_stream:
            arr.access(s, t, sh, allowed)

    benchmark(run)
    assert arr.accesses > 0


def test_perf_cache_access_hardharvest(benchmark, access_stream):
    arr = SetAssocArray("L2", 64, 8, HardHarvestPolicy(0b1111, 0.75))
    allowed = full_mask(8)

    def run():
        for s, t, sh in access_stream:
            arr.access(s, t, sh, allowed)

    benchmark(run)
    assert arr.accesses > 0


def test_perf_region_flush_lazy(benchmark, access_stream):
    """Lazy flushing must be O(1) per flush call, not O(sets)."""
    arr = SetAssocArray("L2", 1024, 8, LruPolicy())
    allowed = full_mask(8)
    for s, t, sh in access_stream:
        arr.access(s, t, sh, allowed)

    benchmark(lambda: arr.flush_ways(0b1111))


def test_perf_event_engine(benchmark):
    def run():
        sim = Simulator()

        def chain(n):
            if n:
                sim.schedule(10, chain, n - 1)

        for _ in range(50):
            sim.schedule(1, chain, 100)
        sim.run()
        return sim.events_fired

    fired = benchmark(run)
    assert fired == 50 * 101


def test_perf_queue_operations(benchmark):
    rq = RequestQueue(32, 64)
    sq = rq.create_subqueue(0, 32)

    def run():
        for i in range(500):
            sq.enqueue(i)
        for _ in range(500):
            req = sq.dequeue_ready()
            sq.complete(req)

    benchmark(run)
    assert sq.total_pending() == 0
