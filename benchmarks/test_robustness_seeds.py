"""Robustness check: the headline orderings hold across seeds.

Single-seed P99s are noisy; this harness replicates the three key systems
over several paired seeds and reports 95% confidence intervals on the
headline ratios. The assertions are on the CIs, not point estimates:

* software harvesting degrades the Primary P99 (ratio CI above 1);
* HardHarvest does not (ratio CI at or below ~1);
* HardHarvest's utilization gain over NoHarvest is large (CI above 2.5x).
"""

from conftest import once

from repro.analysis.report import format_table
from repro.config import SimulationConfig
from repro.core.presets import harvest_block, hardharvest_block, noharvest
from repro.core.replicate import compare_metric

SEEDS = [11, 22, 33, 44]
SIM = SimulationConfig(horizon_ms=350, warmup_ms=60, accesses_per_segment=18)

SYSTEMS = {
    "NoHarvest": noharvest(),
    "Harvest-Block": harvest_block(),
    "HardHarvest-Block": hardharvest_block(),
}


def run_all():
    p99 = compare_metric(
        SYSTEMS, SIM, SEEDS, lambda r: r.avg_p99_ms(), baseline="NoHarvest"
    )
    busy = compare_metric(
        SYSTEMS, SIM, SEEDS, lambda r: r.avg_busy_cores, baseline="NoHarvest"
    )
    return p99, busy


def test_headline_orderings_across_seeds(benchmark):
    p99, busy = once(benchmark, run_all)
    cols = ["mean", "ci_low", "ci_high"]
    rows = {}
    for name in SYSTEMS:
        r = p99[name]["ratio_vs_baseline"]
        rows[f"P99 ratio {name}"] = [r.mean, r.ci_low, r.ci_high]
    for name in SYSTEMS:
        r = busy[name]["ratio_vs_baseline"]
        rows[f"util ratio {name}"] = [r.mean, r.ci_low, r.ci_high]
    print("\n" + format_table(
        f"Headline ratios vs NoHarvest (95% CI over {len(SEEDS)} paired seeds)",
        cols, rows))

    sw = p99["Harvest-Block"]["ratio_vs_baseline"]
    hh = p99["HardHarvest-Block"]["ratio_vs_baseline"]
    assert sw.ci_low > 1.05, "software tail degradation not robust"
    assert hh.ci_high < 1.05, "HardHarvest tail advantage not robust"
    util = busy["HardHarvest-Block"]["ratio_vs_baseline"]
    assert util.ci_low > 2.5, "utilization gain not robust"
