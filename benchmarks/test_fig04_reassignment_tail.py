"""F4 — Figure 4: P99 tail latency under hypervisor core-reassignment
overheads alone (no cache flushing, idle Harvest VM).

Five configurations: No-Move, KVM-Term, KVM-Block (full ~5 ms hypervisor
costs), Opt-Term, Opt-Block (SmartHarvest-optimized latencies). Paper: KVM
and Opt raise average P99 by 3.2x/3.8x and 2.7x/3.1x respectively; we check
the ordering and that every reassignment scheme degrades the tail
substantially.
"""

from conftest import SWEEP_SIM, bench_run_systems, once

from repro.analysis.report import format_table, with_average
from repro.config import HarvestTrigger
from repro.core.presets import fig4_kvm, fig4_no_move, fig4_opt
from repro.workloads.microservices import SERVICE_NAMES

SYSTEMS = {
    "No-Move": fig4_no_move(),
    "KVM-Term": fig4_kvm(HarvestTrigger.ON_TERMINATION),
    "KVM-Block": fig4_kvm(HarvestTrigger.ON_BLOCK),
    "Opt-Term": fig4_opt(HarvestTrigger.ON_TERMINATION),
    "Opt-Block": fig4_opt(HarvestTrigger.ON_BLOCK),
}


def run_all():
    return bench_run_systems(SYSTEMS, SWEEP_SIM)


def test_fig04_hypervisor_reassignment_tail(benchmark):
    results = once(benchmark, run_all)
    cols = list(SERVICE_NAMES) + ["Avg"]
    rows = {
        name: list(with_average(res.p99_ms).values())
        for name, res in results.items()
    }
    print("\n" + format_table("Figure 4: P99 with hypervisor reassignment",
                              cols, rows, unit="ms"))

    base = results["No-Move"].avg_p99_ms()
    kvm_t = results["KVM-Term"].avg_p99_ms() / base
    kvm_b = results["KVM-Block"].avg_p99_ms() / base
    opt_t = results["Opt-Term"].avg_p99_ms() / base
    opt_b = results["Opt-Block"].avg_p99_ms() / base
    print(f"  degradation: KVM-Term {kvm_t:.2f}x  KVM-Block {kvm_b:.2f}x  "
          f"Opt-Term {opt_t:.2f}x  Opt-Block {opt_b:.2f}x "
          f"(paper: 3.2x 3.8x 2.7x 3.1x)")

    # Shape: every scheme degrades the tail; KVM worse than Opt.
    for ratio in (kvm_t, kvm_b, opt_t, opt_b):
        assert ratio > 1.15
    assert kvm_b > opt_b
    assert kvm_t > opt_t
    # Reassignments actually happened.
    for name in ("KVM-Term", "KVM-Block", "Opt-Term", "Opt-Block"):
        assert results[name].counters.get("reclaims", 0) > 0, name
