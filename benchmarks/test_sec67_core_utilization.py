"""U — Section 6.7: average core utilization of the five systems.

Paper: NoHarvest 10.3, Harvest-Term 23.8, Harvest-Block 26.5,
HardHarvest-Term 28.7, HardHarvest-Block 34.8 (of 36 cores);
HardHarvest-Block = 1.5x Harvest-Term and 3.4x NoHarvest.
"""

from conftest import five_systems, once

from repro.analysis.report import format_series

ORDER = ["NoHarvest", "Harvest-Term", "Harvest-Block",
         "HardHarvest-Term", "HardHarvest-Block"]
PAPER = {"NoHarvest": 10.3, "Harvest-Term": 23.8, "Harvest-Block": 26.5,
         "HardHarvest-Term": 28.7, "HardHarvest-Block": 34.8}


def test_sec67_core_utilization(benchmark, five_systems):
    results = once(benchmark, lambda: five_systems)
    series = {name: results[name].avg_busy_cores for name in ORDER}
    print("\n" + format_series(
        "Section 6.7: average busy cores (of 36)", series, precision=1))
    print("  paper: " + "  ".join(f"{k}={v}" for k, v in PAPER.items()))
    hh = series["HardHarvest-Block"]
    sw = series["Harvest-Term"]
    noh = series["NoHarvest"]
    print(f"  HardHarvest-Block vs Harvest-Term: {hh / sw:.2f}x (paper 1.5x); "
          f"vs NoHarvest: {hh / noh:.2f}x (paper 3.4x)")

    # Orderings: harvesting helps; hardware helps more; Block >= Term for
    # the hardware design.
    assert noh < sw
    assert sw < hh
    assert series["HardHarvest-Term"] <= hh + 0.5
    # Headline factors in the right regime.
    assert 1.3 < hh / sw < 4.0
    assert hh / noh > 2.5
    # HardHarvest-Block utilizes most of the server.
    assert hh > 30
