"""Telemetry disabled-path overhead guard.

The tracer hooks are compiled into the hot paths of
:class:`~repro.cluster.server.ServerSimulation` (arrival, enqueue,
dispatch, segment completion, lend/reclaim, batch units).  When telemetry
is off they must cost essentially nothing: each hook is a single
attribute load plus an ``is not None`` test.  This benchmark times the
same simulation three ways —

* ``telemetry=None`` (the pre-telemetry spelling),
* ``TelemetryConfig(enabled=False)`` (explicit off),
* ``TelemetryConfig(enabled=True)`` (full tracing, informational only),

— interleaves them over ``--repeats`` rounds (see
:mod:`benchmarks._timing`), keeps the best wall-clock of each, asserts
the disabled configurations agree within ``--tolerance`` (default 2%),
and records the wall-clocks under
``bench_results/BENCH_telemetry_overhead.json``.

Usage::

    PYTHONPATH=src python benchmarks/telemetry_overhead.py [--horizon-ms 60]
"""

from __future__ import annotations

import argparse
import platform
import sys
from dataclasses import replace

import repro
from repro.config import SimulationConfig, TelemetryConfig
from repro.core import hardharvest_block, run_server

from _timing import best_wall, interleaved_rounds, write_record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon-ms", type=float, default=60.0)
    parser.add_argument("--accesses", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed runs per configuration (min is kept)")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed disabled-path slowdown (fraction)")
    parser.add_argument("--out", default=None,
                        help="output path (default bench_results/BENCH_telemetry_overhead.json)")
    args = parser.parse_args(argv)

    system = hardharvest_block()
    base = SimulationConfig(
        horizon_ms=args.horizon_ms,
        warmup_ms=args.horizon_ms / 5,
        accesses_per_segment=args.accesses,
    )

    configs = {
        "none": base,
        "off": replace(base, telemetry=TelemetryConfig(enabled=False)),
        "on": replace(base, telemetry=TelemetryConfig(enabled=True)),
    }
    samples = interleaved_rounds(
        [
            (name, lambda cfg=cfg: run_server(system, cfg))
            for name, cfg in configs.items()
        ],
        args.repeats,
    )
    none_s = best_wall(samples["none"])
    off_s = best_wall(samples["off"])
    on_s = best_wall(samples["on"])

    disabled_ratio = off_s / none_s
    record = {
        "benchmark": "telemetry_overhead",
        "version": repro.__version__,
        "python": platform.python_version(),
        "horizon_ms": args.horizon_ms,
        "repeats": args.repeats,
        "telemetry_none_s": round(none_s, 4),
        "telemetry_off_s": round(off_s, 4),
        "telemetry_on_s": round(on_s, 4),
        "disabled_ratio": round(disabled_ratio, 4),
        "enabled_ratio": round(on_s / none_s, 4),
        "tolerance": args.tolerance,
    }
    write_record(record, "BENCH_telemetry_overhead.json", args.out)

    if disabled_ratio > 1.0 + args.tolerance:
        print(
            f"ERROR: disabled telemetry costs {100 * (disabled_ratio - 1):.1f}% "
            f"(> {100 * args.tolerance:.0f}% budget)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
