"""Telemetry disabled-path overhead guard.

The tracer hooks are compiled into the hot paths of
:class:`~repro.cluster.server.ServerSimulation` (arrival, enqueue,
dispatch, segment completion, lend/reclaim, batch units).  When telemetry
is off they must cost essentially nothing: each hook is a single
attribute load plus an ``is not None`` test.  This benchmark times the
same simulation three ways —

* ``telemetry=None`` (the pre-telemetry spelling),
* ``TelemetryConfig(enabled=False)`` (explicit off),
* ``TelemetryConfig(enabled=True)`` (full tracing, informational only),

— takes the min over ``--repeats`` runs of each, asserts the disabled
configurations agree within ``--tolerance`` (default 2%), and records the
wall-clocks under ``bench_results/BENCH_telemetry_overhead.json``.

Usage::

    PYTHONPATH=src python benchmarks/telemetry_overhead.py [--horizon-ms 60]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import replace

import repro
from repro.config import SimulationConfig, TelemetryConfig
from repro.core import hardharvest_block, run_server


def timed_run(system, simcfg, repeats: int) -> float:
    """Min-of-k wall-clock for one configuration (min rejects scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run_server(system, simcfg)
        best = min(best, time.perf_counter() - started)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon-ms", type=float, default=60.0)
    parser.add_argument("--accesses", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed runs per configuration (min is kept)")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed disabled-path slowdown (fraction)")
    parser.add_argument("--out", default=None,
                        help="output path (default bench_results/BENCH_telemetry_overhead.json)")
    args = parser.parse_args(argv)

    system = hardharvest_block()
    base = SimulationConfig(
        horizon_ms=args.horizon_ms,
        warmup_ms=args.horizon_ms / 5,
        accesses_per_segment=args.accesses,
    )

    none_s = timed_run(system, base, args.repeats)
    off_s = timed_run(
        system, replace(base, telemetry=TelemetryConfig(enabled=False)),
        args.repeats,
    )
    on_s = timed_run(
        system, replace(base, telemetry=TelemetryConfig(enabled=True)),
        args.repeats,
    )

    disabled_ratio = off_s / none_s
    record = {
        "benchmark": "telemetry_overhead",
        "version": repro.__version__,
        "python": platform.python_version(),
        "horizon_ms": args.horizon_ms,
        "repeats": args.repeats,
        "telemetry_none_s": round(none_s, 4),
        "telemetry_off_s": round(off_s, 4),
        "telemetry_on_s": round(on_s, 4),
        "disabled_ratio": round(disabled_ratio, 4),
        "enabled_ratio": round(on_s / none_s, 4),
        "tolerance": args.tolerance,
    }
    out_dir = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    os.makedirs(out_dir, exist_ok=True)
    out_path = args.out or os.path.join(out_dir, "BENCH_telemetry_overhead.json")
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))

    if disabled_ratio > 1.0 + args.tolerance:
        print(
            f"ERROR: disabled telemetry costs {100 * (disabled_ratio - 1):.1f}% "
            f"(> {100 * args.tolerance:.0f}% budget)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
