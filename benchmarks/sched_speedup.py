"""Scheduler + combined fast-path speedup benchmark (single server, fig11 config).

Times the same simulation in three modes per interleaved round:

* ``reference`` — ``REPRO_MEM_SLOWPATH=1`` *and* ``REPRO_SCHED_SLOWPATH=1``:
  both in-tree reference implementations together, a live replica of the
  pre-fast-path behavior and the denominator of the headline
  ``speedup_cpu``;
* ``sched_reference`` — ``REPRO_SCHED_SLOWPATH=1`` only (fast memory, the
  reference one-event-at-a-time engine loop and object-walk queue scans):
  isolates what the scheduler layer contributes on top of the memory
  fast path;
* ``fast`` — both fast paths (the default configuration).

All three modes must produce the *same result digest* (bit-identity is
the fast paths' contract, pinned independently by
``tests/test_hotpath_parity.py``); the benchmark aborts on divergence, so
a speedup number can never come from a behavioral shortcut.

Methodology (see :mod:`benchmarks._timing`): interleaved rounds,
best-of-N, CPU-time headline, digest guard.

Honest-numbers note: the combined speedup on the default config measures
~1.8–2.0x on the development host. The memory layer dominates the
reference cost (its isolated ratio is ~2.2x asymptotically); the
scheduler layer's marginal contribution over fast memory is small at
this single-server config (~1.0–1.2x; it grows on queue-heavy cluster
configs), because post-memory-fast-path wall time is mostly cache-walk
work, not event dispatch. The original 2.5x combined target is not
reachable without de-optimizing the reference, which this benchmark
refuses to do — the reference branches are the live, parity-tested
pre-PR algorithms.

Usage::

    PYTHONPATH=src python benchmarks/sched_speedup.py [--rounds 3] \
        [--horizon-ms 60] [--min-speedup 1.6]
"""

from __future__ import annotations

import argparse
import platform

import repro
from repro.config import SimulationConfig
from repro.core.experiment import run_server
from repro.core.presets import hardharvest_block
from repro.mem.cache import SLOWPATH_ENV
from repro.sim.engine import SCHED_SLOWPATH_ENV

from _timing import (
    best_cpu,
    best_wall,
    digest_of,
    env_overrides,
    interleaved_rounds,
    require_same_digest,
    write_record,
)

#: Mode name -> environment overrides selecting its implementation.
MODES = {
    "reference": {SLOWPATH_ENV: "1", SCHED_SLOWPATH_ENV: "1"},
    "sched_reference": {SLOWPATH_ENV: None, SCHED_SLOWPATH_ENV: "1"},
    "fast": {SLOWPATH_ENV: None, SCHED_SLOWPATH_ENV: None},
}


def _mode_runner(cfg: SimulationConfig, overrides):
    def run():
        with env_overrides(overrides):
            return digest_of(run_server(hardharvest_block(), cfg))

    return run


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3,
                        help="interleaved measurement rounds per mode")
    parser.add_argument("--horizon-ms", type=float, default=60.0)
    parser.add_argument("--warmup-ms", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if the combined CPU-time speedup "
                             "is below this (CI gate)")
    parser.add_argument("--out", default=None,
                        help="output path (default bench_results/BENCH_sched_hotpath.json)")
    args = parser.parse_args(argv)

    cfg = SimulationConfig(
        seed=args.seed, horizon_ms=args.horizon_ms, warmup_ms=args.warmup_ms
    )
    modes = [
        (name, _mode_runner(cfg, overrides)) for name, overrides in MODES.items()
    ]
    samples = interleaved_rounds(modes, args.rounds)

    try:
        digest = require_same_digest(samples)
    except RuntimeError as exc:
        print(f"ERROR: {exc}")
        return 1

    ref_cpu = best_cpu(samples["reference"])
    sched_ref_cpu = best_cpu(samples["sched_reference"])
    fast_cpu = best_cpu(samples["fast"])
    speedup_cpu = ref_cpu / fast_cpu
    sched_layer_cpu = sched_ref_cpu / fast_cpu

    record = {
        "benchmark": "sched_hotpath_speedup",
        "version": repro.__version__,
        "python": platform.python_version(),
        "config": {
            "system": "hardharvest_block",
            "seed": args.seed,
            "horizon_ms": args.horizon_ms,
            "warmup_ms": args.warmup_ms,
        },
        "rounds": args.rounds,
        "reference_cpu_s": round(ref_cpu, 3),
        "sched_reference_cpu_s": round(sched_ref_cpu, 3),
        "fast_cpu_s": round(fast_cpu, 3),
        "reference_wall_s": round(best_wall(samples["reference"]), 3),
        "sched_reference_wall_s": round(best_wall(samples["sched_reference"]), 3),
        "fast_wall_s": round(best_wall(samples["fast"]), 3),
        "speedup_cpu": round(speedup_cpu, 3),
        "speedup_wall": round(
            best_wall(samples["reference"]) / best_wall(samples["fast"]), 3
        ),
        "sched_layer_speedup_cpu": round(sched_layer_cpu, 3),
        "digest": digest,
        "baseline_note": (
            "reference = both in-tree slow paths (REPRO_MEM_SLOWPATH + "
            "REPRO_SCHED_SLOWPATH): the parity-tested pre-fast-path "
            "algorithms over current data structures. The combined speedup "
            "is dominated by the memory layer; the scheduler layer's "
            "marginal contribution over fast memory is recorded as "
            "sched_layer_speedup_cpu (~1.0-1.2x at this single-server "
            "config, larger on queue-heavy cluster configs). Issue target "
            "was 2.5x combined; the honest measured ceiling on this config "
            "is ~2.0-2.25x and no reference de-optimization was applied to "
            "close the gap."
        ),
    }
    write_record(record, "BENCH_sched_hotpath.json", args.out)

    if args.min_speedup is not None and speedup_cpu < args.min_speedup:
        print(f"ERROR: combined CPU speedup {speedup_cpu:.3f} below required "
              f"{args.min_speedup}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
