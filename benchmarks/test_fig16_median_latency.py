"""F16 — Figure 16: median latency of Primary VM microservices.

Paper: software harvesting barely moves the median (+7.9% for Harvest-Term)
even though it wrecks the tail; HardHarvest-Block cuts the median by 26.1%
below NoHarvest.
"""

from conftest import five_systems, once, save_table

from repro.analysis.report import format_table, with_average
from repro.workloads.microservices import SERVICE_NAMES

ORDER = ["NoHarvest", "Harvest-Term", "Harvest-Block",
         "HardHarvest-Term", "HardHarvest-Block"]


def test_fig16_median_latency(benchmark, five_systems):
    results = once(benchmark, lambda: five_systems)
    cols = list(SERVICE_NAMES) + ["Avg"]
    rows = {
        name: list(with_average(results[name].p50_ms).values())
        for name in ORDER
    }
    print("\n" + format_table("Figure 16: median latency (5 systems)",
                              cols, rows, unit="ms"))
    save_table("fig16_median_ms", cols, rows)

    base = results["NoHarvest"].avg_p50_ms()
    sw_t = results["Harvest-Term"].avg_p50_ms() / base
    hh_b = results["HardHarvest-Block"].avg_p50_ms() / base
    print(f"  Harvest-Term median {sw_t:.3f}x NoHarvest (paper: 1.079x)")
    print(f"  HardHarvest-Block median {hh_b:.3f}x NoHarvest (paper: 0.739x)")

    # Shape: software harvesting's median impact is modest (tail is where
    # it hurts); HardHarvest reduces the median.
    assert 1.0 <= sw_t < 1.35
    assert hh_b < 0.95
    # The median story contrasts with the tail story: software's tail
    # degradation is much larger than its median degradation.
    tail_ratio = results["Harvest-Block"].avg_p99_ms() / results["NoHarvest"].avg_p99_ms()
    median_ratio = results["Harvest-Block"].avg_p50_ms() / base
    assert tail_ratio > median_ratio
