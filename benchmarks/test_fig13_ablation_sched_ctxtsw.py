"""F13 — Figure 13: ablation on in-hardware context switching vs hardware
request scheduling, applied individually and together over Harvest-Block.

Paper: Sched and CtxtSw have similar individual impact and a partially
additive combined effect.
"""

from conftest import SWEEP_SIM, bench_run_systems, once

from repro.analysis.report import format_series
from repro.core.presets import fig13_points


def run_all():
    return bench_run_systems(fig13_points(), SWEEP_SIM)


def test_fig13_sched_vs_ctxtsw(benchmark):
    results = once(benchmark, run_all)
    series = {name: res.avg_p99_ms() for name, res in results.items()}
    print("\n" + format_series(
        "Figure 13: CtxtSw / Sched ablation (avg P99, ms)", series))

    base = series["HarvestBlock"]
    both = series["+CtxtSw&Sched"]
    ctxtsw = series["+CtxtSw"]
    sched = series["+Sched"]
    print(f"  reductions: +CtxtSw {1 - ctxtsw / base:.1%}, "
          f"+Sched {1 - sched / base:.1%}, both {1 - both / base:.1%}")

    # Each alone helps; together they help at least as much as the better
    # single optimization (partially additive).
    assert ctxtsw <= base
    assert sched < base
    assert both <= min(ctxtsw, sched) * 1.05
