"""F15 — Figure 15: HardHarvest optimizations applied to NoHarvest (no core
harvesting at all): +Sched, +Queue, +CtxtSw, +ReplPolicy.

Paper: the mechanisms help microservices in general, cutting the P99 by
14.5 / 20.1 / 28.6 / 33.6 % cumulatively — the reason HardHarvest beats
even NoHarvest in Figure 11.
"""

from conftest import SWEEP_SIM, bench_run_systems, once

from repro.analysis.report import format_series
from repro.core.presets import fig15_ladder


def run_all():
    return bench_run_systems(fig15_ladder(), SWEEP_SIM)


def test_fig15_optimizations_without_harvesting(benchmark):
    results = once(benchmark, run_all)
    series = {name: res.avg_p99_ms() for name, res in results.items()}
    print("\n" + format_series(
        "Figure 15: opts on NoHarvest (avg P99, ms)", series))
    base = series["NoHarvest"]
    ladder = ["+Sched", "+Queue", "+CtxtSw", "+ReplPolicy"]
    reductions = {n: 1 - series[n] / base for n in ladder}
    print("  cumulative reduction: " + "  ".join(
        f"{n} {r * 100:.1f}%" for n, r in reductions.items()))
    print("  (paper: 14.5 / 20.1 / 28.6 / 33.6 %)")

    # Every step improves over the software baseline; the ladder is
    # cumulative within noise and substantial overall.
    assert reductions["+Sched"] > 0.04
    assert reductions["+ReplPolicy"] > reductions["+Sched"] - 0.03
    assert reductions["+ReplPolicy"] > 0.10
    # No harvesting anywhere.
    for res in results.values():
        assert res.counters.get("lends", 0) == 0
