"""Service smoke: drive a real ``python -m repro serve`` end to end.

The CI ``service-smoke`` job's workhorse.  It starts the service as a
subprocess (the real CLI, the real socket, the real signal path), then:

1. submits a small sweep job and a duplicate of it — the duplicate must
   dedupe onto the same job id;
2. submits a 4-server cluster-scale job;
3. polls both to completion and compares every digest against the
   direct CLI path (``python -m repro sweep/cluster --stats-json``) run
   in a *separate* cache directory, so equality is a genuine cross-check
   rather than a cache echo;
4. scrapes ``/metrics`` and saves the exposition text for
   ``ci_checks.py metrics-text``;
5. SIGTERMs the server and requires a graceful exit 0.

``--soak`` (nightly) additionally submits a crash-storm fault-plan
cluster job through the API plus a concurrent duplicate storm, and
verifies the dedupe counters.  The machine-checkable record lands at
``bench_results/BENCH_service_smoke.json`` (``ci_checks.py
service-stats`` asserts on it).

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py --workers 2
    PYTHONPATH=src python benchmarks/service_smoke.py --soak
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import platform
import signal
import socket
import subprocess
import sys
import tempfile
import time

import repro
from repro.service.client import ServiceClient

SWEEP_SIM = {"horizon_ms": 40.0, "warmup_ms": 8.0, "accesses_per_segment": 6}
CLUSTER_SIM = {"horizon_ms": 25.0, "warmup_ms": 5.0, "accesses_per_segment": 4}


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start_server(port: int, cache_dir: str, workers: int):
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(repro.__file__))
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port), "--cache-dir", cache_dir,
            "--service-workers", str(workers), "--grace-s", "60",
        ],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    client = ServiceClient(port=port)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server died at startup:\n{proc.stdout.read()}"
            )
        try:
            client.healthz()
            return proc, client
        except OSError:
            time.sleep(0.1)
    proc.kill()
    raise RuntimeError("server did not become healthy within 60s")


def _cli_stats(command: list, stats_path: str) -> dict:
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(repro.__file__))
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    subprocess.run(
        [sys.executable, "-m", "repro", *command, "--stats-json", stats_path],
        env=env, check=True, stdout=subprocess.DEVNULL,
    )
    with open(stats_path) as fh:
        return json.load(fh)


def _metric_value(metrics_text: str, name: str) -> float:
    for line in metrics_text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            return float(line.rsplit(None, 1)[1])
    raise KeyError(f"metric {name} not found")


def run_smoke(workers: int, soak: bool, timeout_s: float) -> dict:
    record: dict = {
        "bench": "service_smoke",
        "version": repro.__version__,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workers": workers,
        "soak": soak,
    }
    with tempfile.TemporaryDirectory(prefix="repro_svc_") as tmp:
        service_cache = os.path.join(tmp, "service_cache")
        cli_cache = os.path.join(tmp, "cli_cache")
        port = _free_port()
        proc, client = _start_server(port, service_cache, workers=2)
        try:
            # --- sweep job + duplicate -------------------------------
            sweep_job = {
                "kind": "sweep",
                "systems": "NoHarvest,HardHarvest-Block",
                "seeds": "0..1",
                "workers": workers,
                "simulation": SWEEP_SIM,
            }
            first = client.submit(sweep_job)
            duplicate = client.submit(sweep_job)
            record["sweep_job_id"] = first["job_id"]
            record["dedupe_same_id"] = first["job_id"] == duplicate["job_id"]
            record["dedupe_not_recreated"] = duplicate["created"] is False

            # --- cluster job -----------------------------------------
            cluster_job = {
                "kind": "cluster",
                "system": "HardHarvest-Block",
                "workers": workers,
                "cluster": {
                    "servers": 4, "requests": 6000, "epochs": 2,
                    "routing": "p2c",
                },
                "simulation": CLUSTER_SIM,
            }
            cluster = client.submit(cluster_job)
            record["cluster_job_id"] = cluster["job_id"]

            client.wait(first["job_id"], timeout_s=timeout_s)
            client.wait(cluster["job_id"], timeout_s=timeout_s)
            sweep_result = client.result(first["job_id"])
            cluster_result = client.result(cluster["job_id"])

            # --- CLI cross-check (separate cache dir) ----------------
            cli_sweep = _cli_stats(
                [
                    "sweep", "--systems", "NoHarvest,HardHarvest-Block",
                    "--seeds", "0..1",
                    "--horizon-ms", str(SWEEP_SIM["horizon_ms"]),
                    "--accesses", str(SWEEP_SIM["accesses_per_segment"]),
                    "--cache-dir", cli_cache,
                ],
                os.path.join(tmp, "cli_sweep.json"),
            )
            cli_cluster = _cli_stats(
                [
                    "cluster", "--system", "HardHarvest-Block",
                    "--servers", "4", "--requests", "6000",
                    "--epochs", "2", "--routing", "p2c",
                    "--horizon-ms", str(CLUSTER_SIM["horizon_ms"]),
                    "--accesses", str(CLUSTER_SIM["accesses_per_segment"]),
                    "--workers", "1", "--cache-dir", cli_cache,
                ],
                os.path.join(tmp, "cli_cluster.json"),
            )
            record["sweep_digest_service"] = sweep_result["digest"]
            record["sweep_digest_cli"] = cli_sweep["digest"]
            record["sweep_digests_equal"] = (
                sweep_result["digest"] == cli_sweep["digest"]
            )
            record["cluster_digest_service"] = cluster_result["digest"]
            record["cluster_digest_cli"] = cli_cluster["digest"]
            record["cluster_digests_equal"] = (
                cluster_result["digest"] == cli_cluster["digest"]
            )

            # --- soak: fault plan through the API + dup storm --------
            if soak:
                storm_job = {
                    "kind": "cluster",
                    "system": "HardHarvest-Block",
                    "workers": workers,
                    "cluster": {
                        "servers": 4, "requests": 4800, "epochs": 3,
                        "routing": "p2c",
                    },
                    "fault_plan": "crash-storm",
                    "simulation": CLUSTER_SIM,
                }
                with concurrent.futures.ThreadPoolExecutor(8) as pool:
                    ids = {
                        s["job_id"]
                        for s in pool.map(
                            lambda _: client.submit(storm_job), range(8)
                        )
                    }
                record["storm_unique_ids"] = len(ids)
                storm_id = next(iter(ids))
                client.wait(storm_id, timeout_s=timeout_s)
                storm = client.result(storm_id)
                record["storm_digest"] = storm["digest"]
                record["storm_resilience_epochs"] = len(
                    storm["resilience_curve"]
                )

            # --- metrics ---------------------------------------------
            metrics_text = client.metrics()
            record["metrics_text"] = metrics_text
            record["metrics_deduped"] = _metric_value(
                metrics_text, "repro_service_deduped_total"
            )
            record["metrics_completed"] = _metric_value(
                metrics_text, "repro_service_jobs_completed_total"
            )

            # --- graceful SIGTERM ------------------------------------
            proc.send_signal(signal.SIGTERM)
            record["server_exit"] = proc.wait(timeout=90)
            record["server_log_tail"] = proc.stdout.read()[-2000:]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    record["ok"] = bool(
        record.get("dedupe_same_id")
        and record.get("dedupe_not_recreated")
        and record.get("sweep_digests_equal")
        and record.get("cluster_digests_equal")
        and record.get("server_exit") == 0
        and (not soak or record.get("storm_unique_ids") == 1)
    )
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2,
                        help="per-job process-pool workers (default 2)")
    parser.add_argument("--soak", action="store_true",
                        help="also run the fault-plan + duplicate-storm "
                             "soak phase (nightly)")
    parser.add_argument("--timeout-s", type=float, default=900.0,
                        help="per-job completion timeout (default 900)")
    parser.add_argument("--out", default=None,
                        help="record path (default bench_results/"
                             "BENCH_service_smoke.json)")
    parser.add_argument("--metrics-out", default=None,
                        help="also write the scraped /metrics text here")
    args = parser.parse_args(argv)

    started = time.monotonic()
    record = run_smoke(args.workers, args.soak, args.timeout_s)
    record["wall_s"] = round(time.monotonic() - started, 3)

    metrics_text = record.pop("metrics_text", "")
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(metrics_text)
        print(f"wrote metrics exposition to {args.metrics_out}")

    out = args.out or os.path.join(
        "bench_results",
        "BENCH_service_smoke.json" if not args.soak
        else "BENCH_service_soak.json",
    )
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as fh:
        json.dump(record, fh, indent=2)
    print(f"wrote {out}")
    print(f"sweep digests equal:   {record['sweep_digests_equal']}")
    print(f"cluster digests equal: {record['cluster_digests_equal']}")
    print(f"dedupe: same id {record['dedupe_same_id']}, "
          f"metrics deduped {record['metrics_deduped']}")
    print(f"server exit: {record['server_exit']}")
    if not record["ok"]:
        print("service smoke FAILED", file=sys.stderr)
        return 1
    print("service smoke PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
