"""Memory-hierarchy fast-path speedup benchmark (single server, fig11 config).

Runs the same simulation twice per round — once with
``REPRO_MEM_SLOWPATH=1`` (the reference per-access implementation, a live
replica of the pre-fast-path behavior) and once on the batched fast path —
and records best-of-N wall and CPU times plus their ratio under
``bench_results/BENCH_hotpath.json``.

Both modes must produce the *same result digest* (bit-identity is the
fast path's contract, pinned independently by ``tests/test_hotpath_parity.py``);
the benchmark aborts if they diverge, so a speedup number can never come
from a behavioral shortcut.

Methodology (see :mod:`benchmarks._timing`): interleaved rounds,
best-of-N, CPU-time headline, digest guard.  One scope note specific to
this benchmark:

* The baseline carries the reference *algorithms* (linear tag scans,
  scalar per-access loops) over the current data structures, which
  include hashed-index upkeep the original tree did not pay on fills.
  A checkout of the pre-PR tree measures ~1.85 s CPU on the default
  config (vs ~2.5 s for the in-tree reference mode), so the speedup
  against the true seed is ~1.3x; the in-tree ratio reported here tracks
  the cost of the reference access algorithms themselves.

Usage::

    PYTHONPATH=src python benchmarks/hotpath_speedup.py [--rounds 3] \
        [--horizon-ms 60] [--min-speedup 1.5]
"""

from __future__ import annotations

import argparse
import platform

import repro
from repro.config import SimulationConfig
from repro.core.experiment import run_server
from repro.core.presets import hardharvest_block
from repro.mem.cache import SLOWPATH_ENV

from _timing import (
    best_cpu,
    best_wall,
    digest_of,
    env_overrides,
    interleaved_rounds,
    require_same_digest,
    write_record,
)


def _mode_runner(cfg: SimulationConfig, slowpath: bool):
    """Thunk running one construction+run in the requested mode.

    The slow-path switch is read at construction time of every array and
    sampler, so flipping the environment variable between runs in one
    process selects the implementation cleanly.
    """
    overrides = {SLOWPATH_ENV: "1" if slowpath else None}

    def run():
        with env_overrides(overrides):
            return digest_of(run_server(hardharvest_block(), cfg))

    return run


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3,
                        help="interleaved measurement rounds per mode")
    parser.add_argument("--horizon-ms", type=float, default=60.0)
    parser.add_argument("--warmup-ms", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if the CPU-time speedup is below "
                             "this (CI gate)")
    parser.add_argument("--out", default=None,
                        help="output path (default bench_results/BENCH_hotpath.json)")
    args = parser.parse_args(argv)

    cfg = SimulationConfig(
        seed=args.seed, horizon_ms=args.horizon_ms, warmup_ms=args.warmup_ms
    )
    samples = interleaved_rounds(
        [
            ("reference", _mode_runner(cfg, True)),
            ("fast", _mode_runner(cfg, False)),
        ],
        args.rounds,
    )

    try:
        digest = require_same_digest(samples)
    except RuntimeError as exc:
        print(f"ERROR: {exc}")
        return 1

    ref_cpu = best_cpu(samples["reference"])
    fast_cpu = best_cpu(samples["fast"])
    ref_wall = best_wall(samples["reference"])
    fast_wall = best_wall(samples["fast"])
    speedup_cpu = ref_cpu / fast_cpu

    record = {
        "benchmark": "mem_hotpath_speedup",
        "version": repro.__version__,
        "python": platform.python_version(),
        "config": {
            "system": "hardharvest_block",
            "seed": args.seed,
            "horizon_ms": args.horizon_ms,
            "warmup_ms": args.warmup_ms,
        },
        "rounds": args.rounds,
        "reference_cpu_s": round(ref_cpu, 3),
        "fast_cpu_s": round(fast_cpu, 3),
        "reference_wall_s": round(ref_wall, 3),
        "fast_wall_s": round(fast_wall, 3),
        "speedup_cpu": round(speedup_cpu, 3),
        "speedup_wall": round(ref_wall / fast_wall, 3),
        "digest": digest,
        "baseline_note": (
            "reference = in-tree REPRO_MEM_SLOWPATH algorithms (linear tag "
            "scans, scalar access/sampling loops) over current data "
            "structures; the pre-fast-path git tree measures ~1.85s CPU on "
            "this config, ~1.3x vs the fast path. For the combined "
            "memory+scheduler ratio see BENCH_sched_hotpath.json."
        ),
    }
    write_record(record, "BENCH_hotpath.json", args.out)

    if args.min_speedup is not None and speedup_cpu < args.min_speedup:
        print(f"ERROR: CPU speedup {speedup_cpu:.3f} below required "
              f"{args.min_speedup}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
