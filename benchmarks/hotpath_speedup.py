"""Memory-hierarchy fast-path speedup benchmark (single server, fig11 config).

Runs the same simulation twice per round — once with
``REPRO_MEM_SLOWPATH=1`` (the reference per-access implementation, a live
replica of the pre-fast-path behavior) and once on the batched fast path —
and records best-of-N wall and CPU times plus their ratio under
``bench_results/BENCH_hotpath.json``.

Both modes must produce the *same result digest* (bit-identity is the
fast path's contract, pinned independently by ``tests/test_hotpath_parity.py``);
the benchmark aborts if they diverge, so a speedup number can never come
from a behavioral shortcut.

Methodology notes:

* Modes are interleaved within each round and summarized best-of-N, which
  cancels CPU frequency drift on throttling hosts; CPU time
  (``time.process_time``) is the headline because it is immune to
  scheduler preemption.
* The baseline carries the reference *algorithms* (linear tag scans,
  scalar per-access loops) over the current data structures, which
  include hashed-index upkeep the original tree did not pay on fills.
  A checkout of the pre-PR tree measures ~1.85 s CPU on the default
  config (vs ~2.5 s for the in-tree reference mode), so the speedup
  against the true seed is ~1.3x; the in-tree ratio reported here tracks
  the cost of the reference access algorithms themselves.

Usage::

    PYTHONPATH=src python benchmarks/hotpath_speedup.py [--rounds 3] \
        [--horizon-ms 60] [--min-speedup 1.3]
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import os
import platform
import time

import repro
from repro.config import SimulationConfig
from repro.core.experiment import run_server
from repro.core.export import server_result_to_dict
from repro.core.presets import hardharvest_block
from repro.mem.cache import SLOWPATH_ENV
from repro.parallel.cache import canonical_json


def _timed_run(cfg: SimulationConfig, slowpath: bool):
    """One construction+run in the requested mode; returns (wall, cpu, digest).

    The slow-path switch is read at construction time of every array and
    sampler, so flipping the environment variable between runs in one
    process selects the implementation cleanly.
    """
    if slowpath:
        os.environ[SLOWPATH_ENV] = "1"
    else:
        os.environ.pop(SLOWPATH_ENV, None)
    try:
        gc.collect()
        t0_wall, t0_cpu = time.perf_counter(), time.process_time()
        result = run_server(hardharvest_block(), cfg)
        wall = time.perf_counter() - t0_wall
        cpu = time.process_time() - t0_cpu
    finally:
        os.environ.pop(SLOWPATH_ENV, None)
    payload = canonical_json(server_result_to_dict(result))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return wall, cpu, digest


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3,
                        help="interleaved measurement rounds per mode")
    parser.add_argument("--horizon-ms", type=float, default=60.0)
    parser.add_argument("--warmup-ms", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if the CPU-time speedup is below "
                             "this (CI gate)")
    parser.add_argument("--out", default=None,
                        help="output path (default bench_results/BENCH_hotpath.json)")
    args = parser.parse_args(argv)

    cfg = SimulationConfig(
        seed=args.seed, horizon_ms=args.horizon_ms, warmup_ms=args.warmup_ms
    )

    samples = {"reference": [], "fast": []}
    digests = set()
    for rnd in range(args.rounds):
        for mode, slowpath in (("reference", True), ("fast", False)):
            wall, cpu, digest = _timed_run(cfg, slowpath)
            samples[mode].append((wall, cpu))
            digests.add(digest)
            print(f"round {rnd} {mode:9s} wall={wall:.3f}s cpu={cpu:.3f}s")

    if len(digests) != 1:
        print("ERROR: reference and fast modes produced different result "
              f"digests: {sorted(digests)}")
        return 1

    ref_cpu = min(c for _, c in samples["reference"])
    fast_cpu = min(c for _, c in samples["fast"])
    ref_wall = min(w for w, _ in samples["reference"])
    fast_wall = min(w for w, _ in samples["fast"])
    speedup_cpu = ref_cpu / fast_cpu
    speedup_wall = ref_wall / fast_wall

    record = {
        "benchmark": "mem_hotpath_speedup",
        "version": repro.__version__,
        "python": platform.python_version(),
        "config": {
            "system": "hardharvest_block",
            "seed": args.seed,
            "horizon_ms": args.horizon_ms,
            "warmup_ms": args.warmup_ms,
        },
        "rounds": args.rounds,
        "reference_cpu_s": round(ref_cpu, 3),
        "fast_cpu_s": round(fast_cpu, 3),
        "reference_wall_s": round(ref_wall, 3),
        "fast_wall_s": round(fast_wall, 3),
        "speedup_cpu": round(speedup_cpu, 3),
        "speedup_wall": round(speedup_wall, 3),
        "digest": digests.pop(),
        "baseline_note": (
            "reference = in-tree REPRO_MEM_SLOWPATH algorithms (linear tag "
            "scans, scalar access/sampling loops) over current data "
            "structures; the pre-PR git tree measures ~1.85s CPU on this "
            "config, ~1.3x vs the fast path"
        ),
    }
    out_dir = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    os.makedirs(out_dir, exist_ok=True)
    out_path = args.out or os.path.join(out_dir, "BENCH_hotpath.json")
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))

    if args.min_speedup is not None and speedup_cpu < args.min_speedup:
        print(f"ERROR: CPU speedup {speedup_cpu:.3f} below required "
              f"{args.min_speedup}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
