"""Cluster-scale benchmark: 100+ servers, a million routed requests.

Runs one sharded :func:`repro.cluster_scale.run_cluster_scale` pass at
datacenter scale and records the wall clock, request counts, and the
run digest under ``bench_results/BENCH_cluster_scale.json``.  The digest
is the determinism fingerprint: any two hosts (or worker counts) running
the same configuration must record the same value.

An optional ``--cross-check`` pass re-runs a scaled-down copy of the
configuration at ``--workers 1`` and at the benchmark worker count and
fails if their digests differ, so the record carries its own evidence
that the sharded merge is deterministic.

Usage::

    PYTHONPATH=src python benchmarks/cluster_scale_bench.py \
        --servers 128 --requests 1500000 --workers 4 --routing p2c
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import replace

import repro
from repro.cluster_scale import (
    ROUTING_POLICY_NAMES,
    ClusterScaleConfig,
    RoutingPolicy,
    run_cluster_scale,
)
from repro.config import SimulationConfig, SystemKind
from repro.core.presets import build_system


def _build(args) -> tuple:
    system = build_system(SystemKind(args.system))
    if args.harvest_base is not None:
        system = replace(
            system,
            cluster=replace(
                system.cluster, harvest_vm_base_cores=args.harvest_base
            ),
        )
    sim = SimulationConfig(
        seed=args.seed,
        accesses_per_segment=args.accesses,
        warmup_ms=args.warmup_ms,
    )
    cfg = ClusterScaleConfig(
        servers=args.servers,
        requests=args.requests,
        epochs=args.epochs,
        epoch_ms=args.epoch_ms,
        warmup_ms=args.warmup_ms,
        routing=RoutingPolicy(args.routing),
        harvest_max_cores=args.harvest_max,
    )
    return system, sim, cfg


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=128)
    parser.add_argument("--requests", type=int, default=1_500_000,
                        help="requests routed across the whole run")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--epoch-ms", type=float, default=100.0)
    parser.add_argument("--warmup-ms", type=float, default=10.0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--routing", choices=sorted(ROUTING_POLICY_NAMES),
                        default="p2c")
    parser.add_argument("--system", default=SystemKind.HARDHARVEST_BLOCK.value,
                        choices=[k.value for k in SystemKind])
    parser.add_argument("--accesses", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--harvest-base", type=int, default=2,
                        help="harvest-VM base cores (headroom for rebalancing)")
    parser.add_argument("--harvest-max", type=int, default=4)
    parser.add_argument("--cross-check", action="store_true",
                        help="also verify a scaled-down config is "
                             "bit-identical at workers=1 vs --workers")
    parser.add_argument("--out", default=None,
                        help="output path (default "
                             "bench_results/BENCH_cluster_scale.json)")
    args = parser.parse_args(argv)

    system, sim, cfg = _build(args)

    def progress(message: str) -> None:
        print(f"[{time.strftime('%H:%M:%S')}] {message}", flush=True)

    started = time.perf_counter()
    result = run_cluster_scale(
        system, sim, cfg, workers=args.workers, progress=progress
    )
    elapsed = time.perf_counter() - started
    digest = result.digest()
    summary = result.summary_dict()
    progress(
        f"done: {summary['requests_arrived']} arrived / "
        f"{summary['requests_measured']} measured in {elapsed:.1f}s"
    )

    record = {
        "benchmark": "cluster_scale",
        "version": repro.__version__,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "system": system.name,
        "servers": cfg.servers,
        "epochs": cfg.epochs,
        "epoch_ms": cfg.epoch_ms,
        "routing": cfg.routing.value,
        "seed": sim.seed,
        "accesses_per_segment": sim.accesses_per_segment,
        "workers": args.workers,
        "requests_routed": args.requests,
        "requests_arrived": summary["requests_arrived"],
        "requests_measured": summary["requests_measured"],
        "avg_p99_ms": round(summary["avg_p99_ms"], 4),
        "avg_busy_cores": round(summary["avg_busy_cores"], 3),
        "batch_units_per_s": round(summary["batch_units_per_s"], 1),
        "rebalance_moves": summary["rebalance_moves"],
        "wall_s": round(elapsed, 1),
        "requests_per_wall_s": round(summary["requests_arrived"] / elapsed, 1),
        "digest": digest,
    }

    if args.cross_check:
        # Small enough to finish in seconds, sharded unevenly on purpose
        # (5 servers over N workers) so the check exercises the merge.
        small = ClusterScaleConfig(
            servers=5, requests=4000, epochs=2, epoch_ms=20.0, warmup_ms=4.0,
            routing=cfg.routing, harvest_max_cores=cfg.harvest_max_cores,
        )
        d1 = run_cluster_scale(system, sim, small, workers=1).digest()
        dn = run_cluster_scale(
            system, sim, small, workers=max(2, args.workers)
        ).digest()
        record["cross_check"] = {"workers1": d1, "workersN": dn,
                                 "identical": d1 == dn}
        if d1 != dn:
            print("ERROR: cross-check digests differ "
                  f"({d1[:12]} vs {dn[:12]})", file=sys.stderr)

    out_dir = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    os.makedirs(out_dir, exist_ok=True)
    out_path = args.out or os.path.join(out_dir, "BENCH_cluster_scale.json")
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))

    if args.cross_check and not record["cross_check"]["identical"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
