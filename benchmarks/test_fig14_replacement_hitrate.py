"""F14 — Figure 14: L2 hit rate under different replacement policies.

A focused cache study at full fill density: a scaled L2 (64 sets x 8 ways,
harvest region = 4 ways) serves interleaved Primary-request phases (shared
pages with long-term reuse + per-invocation private pages) and Harvest-VM
batch phases (confined to the harvest region), with the harvest region
flushed at every transition — exactly the access regime a loaned core's L2
sees under HardHarvest-Block.

Policies: vanilla LRU, RRIP, the paper's Algorithm 1, and Belady's MIN
replayed offline on the primary access stream. Paper: Algorithm 1 beats LRU
by 11.3% and RRIP by 8.2% and is within 3.1% of Belady.

(The full-system engine also reports in-run L2 hit rates, but its sampled
access density is far below real request density, which starves
invalid-first placement; this study keeps the density realistic relative to
the cache size.)
"""

import numpy as np
from conftest import once

from repro.analysis.belady import belady_hit_rate
from repro.analysis.report import format_series
from repro.mem.cache import SetAssocArray
from repro.mem.partition import full_mask
from repro.mem.replacement import HardHarvestPolicy, LruPolicy, RripPolicy

SETS = 64
WAYS = 8
HARVEST_MASK = 0b00001111
ROUNDS = 150
PRIMARY_ACCESSES = 2400
BATCH_ACCESSES = 1500
SHARED_LINES = 450    # hot shared set: protectable by the non-harvest region
PRIVATE_LINES = 2200  # heavy per-invocation churn pressure
BATCH_LINES = 4000
SHARED_SKEW = 2.5
SHARED_FRACTION = 0.6


def generate_phases(seed=1):
    """A list of (kind, accesses) phases; access = (set, tag, shared)."""
    rng = np.random.default_rng(seed)
    phases = []
    for r in range(ROUNDS):
        primary = []
        # Shared working set: hot-skewed, stable across rounds.
        n_shared = int(PRIMARY_ACCESSES * SHARED_FRACTION)
        shared_lines = (rng.random(n_shared) ** SHARED_SKEW * SHARED_LINES).astype(int)
        # Private pages: fresh-ish per round (allocator cycles 4 pools).
        pool = r % 4
        private_lines = (
            SHARED_LINES
            + pool * PRIVATE_LINES
            + (rng.random(PRIMARY_ACCESSES - n_shared) ** 1.5 * PRIVATE_LINES).astype(int)
        )
        for line in shared_lines:
            primary.append((int(line) % SETS, int(line), True))
        for line in private_lines:
            primary.append((int(line) % SETS, int(line), False))
        rng.shuffle(primary)
        phases.append(("primary", primary))

        batch = []
        base = SHARED_LINES + 8 * PRIVATE_LINES
        batch_lines = base + (rng.random(BATCH_ACCESSES) * BATCH_LINES).astype(int)
        for line in batch_lines:
            batch.append((int(line) % SETS, int(line), False))
        phases.append(("batch", batch))
    return phases


def run_policy(policy, phases):
    arr = SetAssocArray("L2", SETS, WAYS, policy)
    all_ways = full_mask(WAYS)
    hits = accesses = 0
    for kind, stream in phases:
        allowed = all_ways if kind == "primary" else HARVEST_MASK
        for s, tag, shared in stream:
            hit = arr.access(s, tag, shared, allowed)
            if kind == "primary":
                accesses += 1
                hits += hit
        # Transition: flush the harvest region (both directions).
        arr.flush_ways(HARVEST_MASK)
    return hits / accesses


def run_all():
    phases = generate_phases()
    results = {
        "Vanilla LRU": run_policy(LruPolicy(), phases),
        "RRIP": run_policy(RripPolicy(), phases),
        "HardHarvest": run_policy(HardHarvestPolicy(HARVEST_MASK, 0.75), phases),
    }
    primary_trace = [a for kind, stream in phases if kind == "primary" for a in stream]
    results["Belady"] = belady_hit_rate(primary_trace, WAYS)
    return results


def test_fig14_l2_hit_rate_by_policy(benchmark):
    rates = once(benchmark, run_all)
    print("\n" + format_series(
        "Figure 14: L2 hit rate by replacement policy (%)",
        {k: v * 100 for k, v in rates.items()}, precision=1))
    print(f"  HardHarvest vs LRU: +{(rates['HardHarvest'] - rates['Vanilla LRU']) * 100:.1f}pp"
          f" (paper: +11.3%);  vs RRIP: +{(rates['HardHarvest'] - rates['RRIP']) * 100:.1f}pp"
          f" (paper: +8.2%)")
    print(f"  gap to Belady: {(rates['Belady'] - rates['HardHarvest']) * 100:.1f}pp"
          " (paper: 3.1%)")

    # Paper's ordering: HardHarvest > RRIP, LRU; Belady bounds everything.
    assert rates["HardHarvest"] > rates["Vanilla LRU"] + 0.02
    assert rates["HardHarvest"] > rates["RRIP"]
    assert rates["Belady"] >= rates["HardHarvest"]
    # All policies operate in a sane regime (not degenerate).
    assert rates["Vanilla LRU"] > 0.2
