"""F19 — Figure 19: P99 of HardHarvest with different eviction-candidate
set sizes (the M parameter of Algorithm 1).

Paper: 75% of the ways is the sweet spot — smaller windows (25/50%) fail to
preserve shared lines; 100% keeps evicting needed private lines.
"""

from dataclasses import replace

from conftest import SWEEP_SIM, bench_run_systems, once

from repro.analysis.report import format_table, with_average
from repro.core.presets import hardharvest_block
from repro.workloads.microservices import SERVICE_NAMES

FRACTIONS = (0.25, 0.50, 0.75, 1.00)


def build_systems():
    base = hardharvest_block()
    return {
        f"{int(f * 100)}%": replace(
            base,
            partition=replace(base.partition, eviction_candidates_fraction=f),
        )
        for f in FRACTIONS
    }


def run_all():
    return bench_run_systems(build_systems(), SWEEP_SIM)


def test_fig19_eviction_candidate_window(benchmark):
    results = once(benchmark, run_all)
    cols = list(SERVICE_NAMES) + ["Avg"]
    rows = {
        name: list(with_average(res.p99_ms).values())
        for name, res in results.items()
    }
    print("\n" + format_table(
        "Figure 19: HardHarvest P99 vs eviction-candidate set size",
        cols, rows, unit="ms"))
    p99 = {name: res.avg_p99_ms() for name, res in results.items()}
    print("  Avg P99: " + "  ".join(f"{k} {v:.2f}" for k, v in p99.items()))

    # Shape: the chosen default (75%) is at least as good as the extremes.
    assert p99["75%"] <= p99["25%"] * 1.03
    assert p99["75%"] <= p99["100%"] * 1.03
    # The whole sweep stays in a narrow band (it is a replacement detail).
    assert max(p99.values()) < min(p99.values()) * 1.5
