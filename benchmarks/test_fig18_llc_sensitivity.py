"""F18 — Figure 18: P99 of HardHarvest-Block with different LLC sizes.

Paper: growing the LLC to 2.5 MB/core slightly lowers the tail; shrinking
to 1 and 0.5 MB/core raises it, but changes stay small because
microservice footprints are modest.
"""

from dataclasses import replace

from conftest import SWEEP_SIM, bench_run_systems, once

from repro.analysis.report import format_table, with_average
from repro.core.presets import hardharvest_block
from repro.workloads.microservices import SERVICE_NAMES

SIZES_MB = (2.5, 2.0, 1.0, 0.5)


def build_systems():
    base = hardharvest_block()
    return {
        f"{mb}MB/core": replace(
            base, hierarchy=base.hierarchy.with_llc_mb_per_core(mb)
        )
        for mb in SIZES_MB
    }


def run_all():
    return bench_run_systems(build_systems(), SWEEP_SIM)


def test_fig18_llc_size_sensitivity(benchmark):
    results = once(benchmark, run_all)
    cols = list(SERVICE_NAMES) + ["Avg"]
    rows = {
        name: list(with_average(res.p99_ms).values())
        for name, res in results.items()
    }
    print("\n" + format_table(
        "Figure 18: HardHarvest-Block P99 vs LLC size", cols, rows, unit="ms"))

    p99 = {name: res.avg_p99_ms() for name, res in results.items()}
    print("  Avg P99: " + "  ".join(f"{k} {v:.2f}" for k, v in p99.items()))

    # Shape: the paper's conclusion is that "changes in latency are small
    # because microservices have relatively modest footprints" — in our
    # model the hot working sets fit even the smallest LLC, so the sweep is
    # near-flat. Assert the small-swing conclusion and that shrinking the
    # LLC never *helps* beyond noise.
    assert p99["2.5MB/core"] <= p99["0.5MB/core"] * 1.02
    assert p99["2.0MB/core"] <= p99["0.5MB/core"] * 1.02
    assert max(p99.values()) < min(p99.values()) * 1.25
