"""Chaos soak benchmark: SIGKILL-and-resume a fault-plan cluster run.

Drives :func:`repro.cluster_scale.chaos.run_chaos_soak` at soak scale —
a long cluster run under a composed fault plan whose orchestrator is
SIGKILLed mid-run, resumed from its epoch checkpoints, and required to
reproduce the uninterrupted run's digest bit for bit — and records the
evidence (digests, resume point, per-epoch goodput/time-to-recovery
curve, wall clocks) under ``bench_results/BENCH_chaos_soak.json``.

Exit status is 1 on any digest mismatch, so the nightly workflow fails
loudly if recovery ever stops being bit-identical.

Usage::

    PYTHONPATH=src python benchmarks/chaos_soak.py \
        --servers 8 --requests 24000 --epochs 6 --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.cluster_scale import ROUTING_POLICY_NAMES, cluster_plan_names
from repro.cluster_scale.chaos import run_chaos_soak
from repro.config import SystemKind


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--system", default=SystemKind.HARDHARVEST_BLOCK.value,
                        choices=[k.value for k in SystemKind])
    parser.add_argument("--servers", type=int, default=8)
    parser.add_argument("--requests", type=int, default=24_000)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--epoch-ms", type=float, default=25.0)
    parser.add_argument("--routing", choices=sorted(ROUTING_POLICY_NAMES),
                        default="p2c")
    parser.add_argument("--plan", choices=cluster_plan_names(),
                        default="crash-storm")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--accesses", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--kill-after", type=int, default=2,
                        help="checkpointed epochs required before SIGKILL")
    parser.add_argument("--out", default=None,
                        help="output path (default "
                             "bench_results/BENCH_chaos_soak.json)")
    args = parser.parse_args(argv)

    def progress(message: str) -> None:
        print(f"[{time.strftime('%H:%M:%S')}] {message}", flush=True)

    record = run_chaos_soak(
        system_name=args.system,
        servers=args.servers,
        requests=args.requests,
        epochs=args.epochs,
        epoch_ms=args.epoch_ms,
        routing=args.routing,
        plan_name=args.plan,
        seed=args.seed,
        accesses=args.accesses,
        workers=args.workers,
        kill_after_epochs=args.kill_after,
        progress=progress,
    )
    record["benchmark"] = "chaos_soak"
    record["cpus"] = os.cpu_count()
    record["platform"] = platform.python_version()

    out_dir = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    os.makedirs(out_dir, exist_ok=True)
    out_path = args.out or os.path.join(out_dir, "BENCH_chaos_soak.json")
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))

    if not record["digests_equal"]:
        print("ERROR: resumed digest differs from the uninterrupted run",
              file=sys.stderr)
        return 1
    if not record["killed"]:
        print("note: the victim finished before the SIGKILL landed; the "
              "resume still replayed its checkpoints bit-identically")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
