"""T1 — Table 1: architectural parameters of the evaluated system.

Regenerates the table rows from the default configuration objects and
checks them against the paper's values.
"""

from conftest import once

from repro.config import ClusterConfig, ControllerConfig, HierarchyConfig, SystemConfig
from repro.sim.units import KB, MB


def build_table():
    h = HierarchyConfig()
    c = ClusterConfig()
    ctrl = ControllerConfig()
    rows = {
        "Servers in cluster": c.num_servers,
        "Cores per server": c.cores_per_server,
        "Core frequency (GHz)": h.freq_ghz,
        "L1D (KB/ways/cycles)": (h.l1d.size_bytes // KB, h.l1d.ways, h.l1d.round_trip_cycles),
        "L1I (KB/ways/cycles)": (h.l1i.size_bytes // KB, h.l1i.ways, h.l1i.round_trip_cycles),
        "L2 (KB/ways/cycles)": (h.l2.size_bytes // KB, h.l2.ways, h.l2.round_trip_cycles),
        "LLC/core (MB/ways/cycles)": (
            h.llc_per_core.size_bytes / MB,
            h.llc_per_core.ways,
            h.llc_per_core.round_trip_cycles,
        ),
        "L1 TLB (entries/ways/cycles)": (h.l1_tlb.entries, h.l1_tlb.ways, h.l1_tlb.round_trip_cycles),
        "L2 TLB (entries/ways/cycles)": (h.l2_tlb.entries, h.l2_tlb.ways, h.l2_tlb.round_trip_cycles),
        "Primary VMs/server x cores": (c.primary_vms_per_server, c.cores_per_primary_vm),
        "Harvest VMs/server x cores": (c.harvest_vms_per_server, c.harvest_vm_base_cores),
        "Inter-server RT (us)": c.inter_server_rt_ns / 1000,
        "RQ chunks x entries": (ctrl.num_chunks, ctrl.entries_per_chunk),
        "Queue Managers": ctrl.num_queue_managers,
        "VM State registers": ctrl.vm_state_registers,
        "Mem bandwidth (GB/s)": h.memory.bandwidth_gbps,
    }
    return rows


def test_table1_parameters(benchmark):
    rows = once(benchmark, build_table)
    print("\n== Table 1: Architectural parameters")
    for key, value in rows.items():
        print(f"  {key:34s} {value}")

    assert rows["Cores per server"] == 36
    assert rows["L1D (KB/ways/cycles)"] == (48, 12, 5)
    assert rows["L1I (KB/ways/cycles)"] == (32, 8, 5)
    assert rows["L2 (KB/ways/cycles)"] == (512, 8, 13)
    assert rows["LLC/core (MB/ways/cycles)"] == (2.0, 16, 36)
    assert rows["L1 TLB (entries/ways/cycles)"] == (128, 4, 2)
    assert rows["L2 TLB (entries/ways/cycles)"] == (2048, 8, 12)
    assert rows["Primary VMs/server x cores"] == (8, 4)
    assert rows["Harvest VMs/server x cores"] == (1, 4)
    assert rows["RQ chunks x entries"] == (32, 64)
    assert rows["Queue Managers"] == 16
    assert rows["Mem bandwidth (GB/s)"] == 102.4
    # Harvest region / eviction candidates defaults (Table 1 bottom).
    system = SystemConfig()
    assert system.partition.harvest_fraction == 0.5
    assert system.partition.eviction_candidates_fraction == 0.75
    assert system.flush_costs.region_flush_cycles == 1000
