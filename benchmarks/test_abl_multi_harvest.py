"""Extra ablation: one big Harvest VM vs two smaller ones.

The HardHarvest controller provisions 16 QM/state-register pairs
(Table 1) precisely so multiple VMs — including multiple Harvest VMs —
can coexist. We compare the paper's 1x4-core Harvest VM against 2x2-core
Harvest VMs (same base-core budget): Primary tails must be unaffected
(reclamation cost does not depend on who borrowed the core), while the
harvested core-time is shared round-robin.
"""

from dataclasses import replace

from conftest import SWEEP_SIM, once

from repro.analysis.report import format_table
from repro.config import ClusterConfig
from repro.core.experiment import run_server_raw
from repro.core.presets import hardharvest_block


def run_all():
    single = run_server_raw(hardharvest_block(), SWEEP_SIM)
    dual_cfg = replace(
        hardharvest_block(),
        cluster=ClusterConfig(harvest_vms_per_server=2, harvest_vm_base_cores=2),
    )
    dual = run_server_raw(dual_cfg, SWEEP_SIM)
    return single, dual


def test_ablation_multi_harvest_vms(benchmark):
    single, dual = once(benchmark, run_all)
    rows = {
        "1 Harvest VM (4 cores)": [
            single.latency_all.p99() / 1e6,
            single.average_busy_cores(),
            single.batch_throughput_per_s(),
        ],
        "2 Harvest VMs (2+2)": [
            dual.latency_all.p99() / 1e6,
            dual.average_busy_cores(),
            dual.batch_throughput_per_s(),
        ],
    }
    print("\n" + format_table(
        "Ablation: number of Harvest VMs per server",
        ["P99 ms", "busy cores", "batch units/s"], rows))
    for i, hvm in enumerate(dual.harvest_vms):
        print(f"  dual VM {i} ({hvm.name}): {hvm.units_completed:.0f} units, "
              f"{hvm.preemptions} preemptions")

    # Primary latency insensitive to how the harvest side is organized.
    assert dual.latency_all.p99() < single.latency_all.p99() * 1.15
    # Utilization stays high; both dual VMs genuinely harvested.
    assert dual.average_busy_cores() > 30
    assert all(h.preemptions > 0 for h in dual.harvest_vms)
