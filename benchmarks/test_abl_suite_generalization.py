"""Extra ablation: do the headline results generalize beyond SocialNet?

The paper validates its page-sharing assumptions on DeathStarBench,
TrainTicket, and µSuite (Section 4.2.2) but evaluates only SocialNet. We
run the headline comparison on a hotelReservation-style suite with a
different blocking structure and check that HardHarvest's advantages —
tails no worse than NoHarvest, large utilization and throughput gains over
software harvesting — are not SocialNet artifacts.
"""

from dataclasses import replace

from conftest import SWEEP_SIM, bench_run_systems, once

from repro.analysis.report import format_table
from repro.core.presets import harvest_term, hardharvest_block, noharvest

SYSTEMS = {
    "NoHarvest": noharvest(),
    "Harvest-Term": harvest_term(),
    "HardHarvest-Block": hardharvest_block(),
}


def run_all():
    out = {}
    for suite in ("socialnet", "hotel"):
        simcfg = replace(SWEEP_SIM, suite=suite)
        out[suite] = bench_run_systems(SYSTEMS, simcfg)
    return out


def test_ablation_suite_generalization(benchmark):
    results = once(benchmark, run_all)
    cols = ["P99 ratio", "util ratio", "thr ratio"]
    rows = {}
    for suite, res in results.items():
        base = res["NoHarvest"]
        for name in ("Harvest-Term", "HardHarvest-Block"):
            r = res[name]
            rows[f"{suite}/{name}"] = [
                r.avg_p99_ms() / base.avg_p99_ms(),
                r.avg_busy_cores / base.avg_busy_cores,
                r.batch_units_per_s / base.batch_units_per_s,
            ]
    print("\n" + format_table(
        "Generalization: headline ratios vs NoHarvest, per suite", cols, rows))

    for suite, res in results.items():
        base = res["NoHarvest"]
        hh = res["HardHarvest-Block"]
        sw = res["Harvest-Term"]
        assert hh.avg_p99_ms() <= base.avg_p99_ms() * 1.05, suite
        assert hh.avg_busy_cores > 2.0 * base.avg_busy_cores, suite
        assert hh.batch_units_per_s > 1.3 * sw.batch_units_per_s, suite
