"""Sweep-runner wall-clock smoke: serial vs parallel vs cached.

Runs a small (systems x seeds) grid three ways — ``workers=1`` cold,
``workers=2`` cold, then ``workers=2`` against the now-warm cache — and
records the wall-clocks plus the cache hit rate under ``bench_results/``
as ``BENCH_sweep_runner.json``.  CI invokes this on every push so the
perf trajectory of the parallel substrate accumulates alongside the
figure CSVs.

Usage::

    PYTHONPATH=src python benchmarks/sweep_smoke.py [--horizon-ms 40]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time

import repro
from repro.config import SimulationConfig
from repro.core.presets import all_systems
from repro.parallel import ResultCache, SweepSpec, run_sweep


def timed_sweep(spec, workers, cache=None):
    started = time.perf_counter()
    outcome = run_sweep(spec, workers=workers, cache=cache)
    return time.perf_counter() - started, outcome


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon-ms", type=float, default=40.0)
    parser.add_argument("--accesses", type=int, default=6)
    parser.add_argument("--seeds", type=int, default=2,
                        help="number of seeds in the grid")
    parser.add_argument("--out", default=None,
                        help="output path (default bench_results/BENCH_sweep_runner.json)")
    args = parser.parse_args(argv)

    spec = SweepSpec(
        systems=all_systems(),
        seeds=tuple(range(args.seeds)),
        sim=SimulationConfig(
            horizon_ms=args.horizon_ms,
            warmup_ms=args.horizon_ms / 5,
            accesses_per_segment=args.accesses,
        ),
    )
    cache_dir = tempfile.mkdtemp(prefix="repro-sweep-smoke-")
    try:
        serial_s, serial = timed_sweep(spec, workers=1)
        parallel_s, parallel = timed_sweep(
            spec, workers=2, cache=ResultCache(root=cache_dir)
        )
        warm_cache = ResultCache(root=cache_dir)
        cached_s, cached = timed_sweep(spec, workers=2, cache=warm_cache)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    record = {
        "benchmark": "sweep_runner_scaling",
        "version": repro.__version__,
        "python": platform.python_version(),
        # parallel_speedup > 1 needs real cores: on a single-CPU host two
        # workers time-slice one core and the pool overhead is pure loss.
        "cpus": os.cpu_count(),
        "points": spec.size(),
        "horizon_ms": args.horizon_ms,
        "workers1_cold_s": round(serial_s, 3),
        "workers2_cold_s": round(parallel_s, 3),
        "workers2_cached_s": round(cached_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 3),
        "cache_speedup": round(serial_s / cached_s, 3),
        "cache_hit_rate": warm_cache.stats.hit_rate(),
    }
    out_dir = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    os.makedirs(out_dir, exist_ok=True)
    out_path = args.out or os.path.join(out_dir, "BENCH_sweep_runner.json")
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))

    if cached.from_cache != spec.size():
        print("ERROR: warm run was not fully served from cache", file=sys.stderr)
        return 1
    if cached_s >= serial_s:
        # Cached must beat cold serial by a wide margin; this is the smoke
        # assertion that the cache actually short-circuits simulation.
        print("ERROR: cached sweep not faster than cold serial run", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
