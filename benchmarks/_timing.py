"""Shared measurement machinery for the speedup/overhead benchmarks.

Every benchmark in this directory follows the same methodology, extracted
here so the scripts stay thin and measure the same way:

* **Interleaved rounds.** Comparing modes A/B/C as A,B,C,A,B,C (instead
  of A,A,B,B,C,C) cancels CPU-frequency drift on throttling hosts: every
  mode samples every thermal regime.
* **Best-of-N.** The minimum over rounds rejects scheduler preemption and
  GC pauses — those only ever make a sample slower.
* **CPU time headline.** ``time.process_time`` is immune to the process
  being descheduled; wall time is recorded alongside for context.
* **Digest guards.** A speedup between modes is only meaningful if the
  modes computed the same thing; :func:`digest_of` hashes the canonical
  JSON of a full result and :func:`require_same_digest` aborts the
  benchmark on any divergence, so a reported number can never come from a
  behavioral shortcut.
"""

from __future__ import annotations

import contextlib
import gc
import hashlib
import json
import os
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.export import server_result_to_dict
from repro.parallel.cache import canonical_json


class Sample:
    """One timed run: wall seconds, CPU seconds, and the run's value
    (whatever the mode thunk returned — typically a result digest)."""

    __slots__ = ("wall", "cpu", "value")

    def __init__(self, wall: float, cpu: float, value):
        self.wall = wall
        self.cpu = cpu
        self.value = value


@contextlib.contextmanager
def env_overrides(overrides: Dict[str, Optional[str]]):
    """Temporarily set (value) or clear (None) environment variables.

    The slow-path switches are read at *construction* time of each
    simulator/array, so flipping them between runs in one process selects
    the implementation cleanly — this context manager is how a benchmark
    mode requests its implementation.
    """
    saved = {name: os.environ.get(name) for name in overrides}
    try:
        for name, value in overrides.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def timed_call(fn: Callable[[], object]) -> Sample:
    """Run ``fn`` once under the standard clocks (after a GC sweep, so a
    previous run's garbage is not charged to this one)."""
    gc.collect()
    t0_wall, t0_cpu = time.perf_counter(), time.process_time()
    value = fn()
    wall = time.perf_counter() - t0_wall
    cpu = time.process_time() - t0_cpu
    return Sample(wall, cpu, value)


def interleaved_rounds(
    modes: Sequence[Tuple[str, Callable[[], object]]],
    rounds: int,
    progress: Optional[Callable[[str], None]] = print,
) -> Dict[str, List[Sample]]:
    """Run every mode once per round, in order; returns samples per mode."""
    samples: Dict[str, List[Sample]] = {name: [] for name, _ in modes}
    for rnd in range(rounds):
        for name, fn in modes:
            s = timed_call(fn)
            samples[name].append(s)
            if progress is not None:
                progress(
                    f"round {rnd} {name:15s} wall={s.wall:.3f}s cpu={s.cpu:.3f}s"
                )
    return samples


def best_cpu(samples: Iterable[Sample]) -> float:
    return min(s.cpu for s in samples)


def best_wall(samples: Iterable[Sample]) -> float:
    return min(s.wall for s in samples)


def digest_of(result) -> str:
    """sha256 of the canonical JSON of a full ServerResult."""
    payload = canonical_json(server_result_to_dict(result))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def require_same_digest(samples: Dict[str, List[Sample]]) -> str:
    """All modes must have produced one identical digest; returns it.

    Raises ``RuntimeError`` otherwise — the caller should let that abort
    the benchmark, because timing numbers for diverging computations are
    meaningless.
    """
    digests = {s.value for mode in samples.values() for s in mode}
    if len(digests) != 1:
        raise RuntimeError(
            f"benchmark modes produced different result digests: {sorted(digests)}"
        )
    return digests.pop()


def write_record(record: dict, filename: str, out: Optional[str] = None) -> str:
    """Write a benchmark record under ``bench_results/`` (or ``out``) and
    echo it; returns the path written."""
    out_dir = os.path.join(os.path.dirname(__file__), "..", "bench_results")
    os.makedirs(out_dir, exist_ok=True)
    out_path = out or os.path.join(out_dir, filename)
    with open(out_path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    return out_path
