"""Extra analysis: energy proportionality of core harvesting.

Not a paper figure, but the flip side of Section 6.7's utilization claim:
a NoHarvest server burns most of its energy on leakage while cores idle;
harvesting amortizes the same static power over 3-4x the work. We report
average power and energy per completed batch unit for the five systems.
"""

from conftest import SWEEP_SIM, once

from repro.analysis.energy import energy_per_batch_unit, estimate_energy
from repro.analysis.report import format_table
from repro.core.experiment import run_server_raw
from repro.core.presets import all_systems


def run_all():
    out = {}
    for name, system in all_systems().items():
        sim = run_server_raw(system, SWEEP_SIM)
        report = estimate_energy(sim)
        out[name] = {
            "power_w": report.average_power_w,
            "j_per_unit": energy_per_batch_unit(sim),
            "busy": sim.average_busy_cores(),
        }
    return out


def test_ablation_energy_proportionality(benchmark):
    results = once(benchmark, run_all)
    cols = ["avg power W", "J per batch unit", "busy cores"]
    rows = {
        name: [r["power_w"], r["j_per_unit"], r["busy"]]
        for name, r in results.items()
    }
    print("\n" + format_table("Energy proportionality of harvesting",
                              cols, rows, precision=3))

    base = results["NoHarvest"]
    hh = results["HardHarvest-Block"]
    print(f"  HardHarvest-Block: {hh['power_w'] / base['power_w']:.2f}x the power, "
          f"{base['j_per_unit'] / hh['j_per_unit']:.2f}x less energy per unit")

    # Harvesting draws more power but is far more energy-proportional.
    assert hh["power_w"] > base["power_w"]
    assert hh["j_per_unit"] < base["j_per_unit"] / 1.5
    # Ordering follows utilization.
    assert results["Harvest-Term"]["j_per_unit"] < base["j_per_unit"]
    assert hh["j_per_unit"] < results["Harvest-Term"]["j_per_unit"]
