"""F11 — Figure 11 (headline): P99 tail latency of Primary VM microservices
under the five evaluated architectures.

Paper: software harvesting raises the average P99 by 3.4x (Term) / 4.1x
(Block) over NoHarvest; HardHarvest cuts the software tail by 83.3% (6x)
and even beats NoHarvest by ~30%.
"""

from conftest import five_systems, once, save_table

from repro.analysis.report import format_table, with_average
from repro.workloads.microservices import SERVICE_NAMES

ORDER = ["NoHarvest", "Harvest-Term", "Harvest-Block",
         "HardHarvest-Term", "HardHarvest-Block"]


def test_fig11_p99_tail_latency(benchmark, five_systems):
    results = once(benchmark, lambda: five_systems)
    cols = list(SERVICE_NAMES) + ["Avg"]
    rows = {
        name: list(with_average(results[name].p99_ms).values())
        for name in ORDER
    }
    print("\n" + format_table("Figure 11: P99 tail latency (5 systems)",
                              cols, rows, unit="ms"))
    save_table("fig11_p99_ms", cols, rows)
    from repro.analysis.plots import bar_chart

    print(bar_chart(
        "Figure 11 (avg across services)",
        {name: results[name].avg_p99_ms() for name in ORDER},
        unit="ms",
        baseline="NoHarvest",
    ))

    base = results["NoHarvest"].avg_p99_ms()
    sw_t = results["Harvest-Term"].avg_p99_ms()
    sw_b = results["Harvest-Block"].avg_p99_ms()
    hh_t = results["HardHarvest-Term"].avg_p99_ms()
    hh_b = results["HardHarvest-Block"].avg_p99_ms()
    print(f"  vs NoHarvest: Harvest-Term {sw_t / base:.2f}x (paper 3.4x), "
          f"Harvest-Block {sw_b / base:.2f}x (paper 4.1x)")
    print(f"  HardHarvest-Term {hh_t / base:.2f}x (paper 0.70x), "
          f"HardHarvest-Block {hh_b / base:.2f}x (paper 0.72x)")
    print(f"  HardHarvest vs software: {sw_t / hh_t:.2f}x lower (paper ~6x)")

    # Shape: software harvesting degrades the tail; HardHarvest is at least
    # as good as NoHarvest and clearly better than software harvesting.
    assert sw_t > base * 1.1
    assert sw_b > base * 1.1
    assert hh_t <= base * 1.05
    assert hh_b <= base * 1.05
    assert sw_t / hh_t > 1.3
    assert sw_b / hh_b > 1.3
