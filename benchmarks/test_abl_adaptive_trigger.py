"""Extra ablation (Section 4.1.5 future work): the adaptive trigger.

The paper sketches a policy that "dynamically switch[es] from harvesting on
blocking call to harvesting only on request completion" when blocks are too
short to be worth stealing. We compare HardHarvest-Term, HardHarvest-Block,
and the adaptive agent: the adaptive point should land between the two on
lending volume while keeping Block-level throughput when blocks are long.
"""

from dataclasses import replace

from conftest import SWEEP_SIM, bench_run_systems, once

from repro.analysis.report import format_table
from repro.core.presets import hardharvest_block, hardharvest_term


def build_systems():
    return {
        "HardHarvest-Term": hardharvest_term(),
        "HardHarvest-Block": hardharvest_block(),
        "Adaptive": replace(
            hardharvest_block(), name="Adaptive", adaptive_trigger=True
        ),
    }


def run_all():
    return bench_run_systems(build_systems(), SWEEP_SIM)


def test_ablation_adaptive_trigger(benchmark):
    results = once(benchmark, run_all)
    cols = ["P99 ms", "busy cores", "batch units/s", "lends"]
    rows = {
        name: [res.avg_p99_ms(), res.avg_busy_cores, res.batch_units_per_s,
               float(res.counters.get("lends", 0))]
        for name, res in results.items()
    }
    print("\n" + format_table(
        "Ablation: adaptive harvesting trigger (Section 4.1.5)", cols, rows))

    term = results["HardHarvest-Term"]
    block = results["HardHarvest-Block"]
    adaptive = results["Adaptive"]
    # Our services block for >= 100 µs, above the default 50 µs threshold,
    # so the adaptive agent behaves like Block (full harvesting) while
    # retaining the ability to throttle if blocks were shorter.
    assert adaptive.counters["lends"] > term.counters["lends"]
    assert adaptive.avg_busy_cores >= block.avg_busy_cores * 0.9
    assert adaptive.avg_p99_ms() < block.avg_p99_ms() * 1.15
