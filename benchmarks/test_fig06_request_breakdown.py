"""F6 — Figure 6: execution time of a single service request in steady
state, without core harvesting (left bar) and with software core harvesting
(right bar, broken into Core Reassign / Flush+Inval / Execution).

Paper: with harvesting a request takes 1.9x longer on average, and the
execution component itself is ~1.2x longer due to cold microarchitectural
structures.
"""

from conftest import once, five_systems

from repro.analysis.report import format_table
from repro.workloads.microservices import SERVICE_NAMES


def test_fig06_request_time_breakdown(benchmark, five_systems):
    results = once(benchmark, lambda: five_systems)
    no_harvest = results["NoHarvest"]
    harvest = results["Harvest-Block"]

    cols = ["NoHarv exec", "Harv reassign", "Harv flush", "Harv exec", "slowdown"]
    rows = {}
    slowdowns = []
    exec_ratios = []
    for svc in SERVICE_NAMES:
        base = no_harvest.breakdown[svc].execution_ns / 1e6
        b = harvest.breakdown[svc]
        total = (b.reassign_ns + b.flush_ns + b.execution_ns) / 1e6
        slowdown = total / base
        slowdowns.append(slowdown)
        exec_ratios.append(b.execution_ns / 1e6 / base)
        rows[svc] = [base, b.reassign_ns / 1e6, b.flush_ns / 1e6,
                     b.execution_ns / 1e6, slowdown]
    print("\n" + format_table(
        "Figure 6: per-request time, NoHarvest vs software harvesting",
        cols, rows, unit="ms", precision=3))
    avg_slow = sum(slowdowns) / len(slowdowns)
    avg_exec = sum(exec_ratios) / len(exec_ratios)
    print(f"  average request slowdown {avg_slow:.2f}x (paper: 1.9x); "
          f"execution-only {avg_exec:.2f}x (paper: 1.2x)")

    # Shape: harvesting adds reassignment+flush components and the
    # execution itself runs longer on cold structures.
    assert avg_slow > 1.03
    assert avg_exec > 1.0
    total_reassign = sum(harvest.breakdown[s].reassign_ns for s in SERVICE_NAMES)
    assert total_reassign > 0
    assert all(no_harvest.breakdown[s].reassign_ns == 0 for s in SERVICE_NAMES)
