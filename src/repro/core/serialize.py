"""Config serialization: dump/load a :class:`SystemConfig` and
:class:`SimulationConfig` as JSON so experiments are reproducible artifacts.

The encoder walks nested (frozen) dataclasses and enums; the decoder
rebuilds them with full validation (dataclass ``__post_init__`` runs).
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from functools import lru_cache
from typing import Any, Dict, TypeVar

from repro.config import SimulationConfig, SystemConfig

T = TypeVar("T")


def to_dict(obj: Any) -> Any:
    """Recursively encode dataclasses and enums into plain JSON types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = to_dict(getattr(obj, f.name))
        return out
    if isinstance(obj, Enum):
        return {"__enum__": type(obj).__name__, "value": obj.value}
    if isinstance(obj, (list, tuple)):
        return [to_dict(v) for v in obj]
    if isinstance(obj, dict):
        return {k: to_dict(v) for k, v in obj.items()}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot serialize {type(obj).__name__}")


@lru_cache(maxsize=1)
def _registry() -> Dict[str, type]:
    """All dataclass/enum types reachable from the config module.

    Cached: :func:`from_dict` recurses through every nested dataclass and
    enum, and rebuilding the registry (a ``dir()`` walk over the config
    module) on each recursion dominated deserialization cost in sweep
    workers.  The config module's class set is fixed at import time, so a
    single cached snapshot is safe.
    """
    import repro.config as cfg

    out: Dict[str, type] = {}
    for name in dir(cfg):
        candidate = getattr(cfg, name)
        if isinstance(candidate, type) and (
            dataclasses.is_dataclass(candidate) or issubclass(candidate, Enum)
        ):
            out[name] = candidate
    return out


def from_dict(data: Any) -> Any:
    """Inverse of :func:`to_dict`."""
    if isinstance(data, dict):
        if "__enum__" in data:
            enum_type = _registry().get(data["__enum__"])
            if enum_type is None:
                raise ValueError(f"unknown enum {data['__enum__']!r}")
            return enum_type(data["value"])
        if "__type__" in data:
            cls = _registry().get(data["__type__"])
            if cls is None:
                raise ValueError(f"unknown config type {data['__type__']!r}")
            kwargs = {
                k: from_dict(v) for k, v in data.items() if k != "__type__"
            }
            return cls(**kwargs)
        return {k: from_dict(v) for k, v in data.items()}
    if isinstance(data, list):
        return [from_dict(v) for v in data]
    return data


def dumps(system: SystemConfig, simcfg: SimulationConfig = None) -> str:
    """Serialize an experiment description to a JSON string."""
    payload: Dict[str, Any] = {"system": to_dict(system)}
    if simcfg is not None:
        payload["simulation"] = to_dict(simcfg)
    return json.dumps(payload, indent=2, sort_keys=True)


def loads(text: str):
    """Deserialize; returns (SystemConfig, SimulationConfig-or-None)."""
    payload = json.loads(text)
    system = from_dict(payload["system"])
    if not isinstance(system, SystemConfig):
        raise ValueError("payload 'system' is not a SystemConfig")
    simcfg = None
    if "simulation" in payload:
        simcfg = from_dict(payload["simulation"])
        if not isinstance(simcfg, SimulationConfig):
            raise ValueError("payload 'simulation' is not a SimulationConfig")
    return system, simcfg
