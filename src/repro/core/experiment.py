"""Experiment driver: build a system, run servers, summarize results.

This is the public entry point a downstream user touches::

    from repro import SystemKind, SimulationConfig, run_server
    result = run_server(build_system(SystemKind.HARDHARVEST_BLOCK),
                        SimulationConfig(requests_per_service=1000))
    print(result.avg_p99_ms())

``run_cluster`` reproduces the paper's 8-server setup: servers are
independent (microservices never talk across servers, Section 5), each
hosting all eight Primary services and one Harvest VM with a *different*
batch application.

Both ``run_systems`` and ``run_cluster`` accept ``workers=`` and
``cache=``: with either set, the runs are routed through
:mod:`repro.parallel` — fanned out over a process pool and/or served from
the content-addressed result cache — with bit-identical results to the
serial path (the simulator is deterministic and servers/systems are
independent).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.cluster.server import ServerSimulation
from repro.config import SimulationConfig, SystemConfig
from repro.core.metrics import ClusterResult, ServerResult
from repro.sim.units import SEC
from repro.workloads.batch import BATCH_JOBS, BatchJobProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.cache import ResultCache


def summarize(sim: ServerSimulation) -> ServerResult:
    """Extract the figure-facing metrics from a completed run.

    Services with zero measured completions are omitted from the latency
    maps rather than raising: a crashed or traffic-starved server (fault
    plans route around casualties at a trickle load) legitimately ends an
    epoch without completing every service.  Nominal runs always record
    samples, so their results are unchanged.
    """
    measured = {
        name: rec for name, rec in sim.latency.items() if rec.count > 0
    }
    p99 = {name: rec.p99() / 1e6 for name, rec in measured.items()}
    p50 = {name: rec.p50() / 1e6 for name, rec in measured.items()}
    mean = {name: rec.mean() / 1e6 for name, rec in measured.items()}
    breakdown = {key: sim.breakdowns.mean(key) for key in sim.breakdowns.keys()}
    return ServerResult(
        system=sim.system.name,
        batch_job=sim.harvest_vm.name,
        p99_ms=p99,
        p50_ms=p50,
        mean_ms=mean,
        breakdown=breakdown,
        avg_busy_cores=sim.average_busy_cores(),
        batch_units_per_s=sim.batch_throughput_per_s(),
        l2_hit_rate=sim.l2_primary_hit_rate(),
        counters=sim.counters.as_dict(),
        simulated_seconds=sim.end_ns / SEC,
        resilience=sim.resilience_summary(),
    )


def run_server(
    system: SystemConfig,
    simcfg: Optional[SimulationConfig] = None,
    batch_job: Optional[BatchJobProfile] = None,
    server_index: int = 0,
) -> ServerResult:
    """Simulate one server to completion and summarize it."""
    sim = ServerSimulation(system, simcfg or SimulationConfig(), batch_job, server_index)
    sim.run()
    return summarize(sim)


def run_server_raw(
    system: SystemConfig,
    simcfg: Optional[SimulationConfig] = None,
    batch_job: Optional[BatchJobProfile] = None,
    server_index: int = 0,
) -> ServerSimulation:
    """Like :func:`run_server` but returns the live simulation object
    (for experiments that inspect caches, traces, or queues).

    With ``simcfg.telemetry`` enabled, the returned simulation exposes the
    span tracer as ``.tracer`` (ring buffer of lifecycle events) and the
    gauge series as ``.probes``; both are ``None`` when telemetry is off.
    """
    sim = ServerSimulation(system, simcfg or SimulationConfig(), batch_job, server_index)
    sim.run()
    return sim


def _cluster_points(
    system: SystemConfig,
    simcfg: SimulationConfig,
    jobs: Sequence[BatchJobProfile],
):
    """One :class:`~repro.parallel.sweep.SweepPoint` per simulated server.

    The single source of truth for the cluster fan-out: the serial loop,
    the process pool, and the result cache all run exactly these points,
    which is what keeps their results bit-identical.
    """
    from repro.parallel.sweep import SweepPoint

    return [
        SweepPoint(
            label=f"server={i}",
            system=system,
            sim=simcfg,
            batch_job=jobs[i % len(jobs)],
            server_index=i,
        )
        for i in range(simcfg.servers_to_simulate)
    ]


def run_cluster(
    system: SystemConfig,
    simcfg: Optional[SimulationConfig] = None,
    batch_jobs: Optional[Sequence[BatchJobProfile]] = None,
    parallel: bool = False,
    workers: Optional[int] = None,
    cache: Optional["ResultCache"] = None,
) -> ClusterResult:
    """Simulate ``simcfg.servers_to_simulate`` independent servers.

    Server ``i`` runs batch job ``i`` (mod 8), mirroring the paper's
    one-batch-application-per-server cluster — servers never communicate
    (Section 5), which is also why the servers can be farmed out to a
    process pool (exactly as the authors parallelized their SST runs)
    without changing any result.  ``workers=N`` routes through
    :func:`repro.parallel.run_sweep` (optionally with a ``cache``);
    ``parallel=True`` is the legacy spelling of ``workers=8`` (the pool
    never exceeds the number of servers).
    """
    simcfg = simcfg or SimulationConfig()
    jobs = list(batch_jobs or BATCH_JOBS)
    points = _cluster_points(system, simcfg, jobs)
    if parallel and workers is None:
        workers = 8
    if workers is not None or cache is not None:
        from repro.parallel.runner import run_sweep

        outcome = run_sweep(points, workers=workers or 1, cache=cache)
        return ClusterResult(
            system=system.name, servers=list(outcome.results.values())
        )
    return ClusterResult(
        system=system.name,
        servers=[
            run_server(p.system, p.sim, p.batch_job, server_index=p.server_index)
            for p in points
        ],
    )


def run_systems(
    systems: Dict[str, SystemConfig],
    simcfg: Optional[SimulationConfig] = None,
    batch_job: Optional[BatchJobProfile] = None,
    workers: Optional[int] = None,
    cache: Optional["ResultCache"] = None,
) -> Dict[str, ServerResult]:
    """Run several systems on the identical workload (same seed) and return
    results keyed by system name — the shape every comparison figure needs.

    ``workers=N`` fans the systems out over a process pool and ``cache=``
    serves repeats from the content-addressed result cache; both produce
    results bit-identical to the serial path.
    """
    if workers is not None or cache is not None:
        from repro.parallel.runner import run_sweep
        from repro.parallel.sweep import SweepPoint

        points = [
            SweepPoint(
                label=name,
                system=cfg,
                sim=simcfg or SimulationConfig(),
                batch_job=batch_job,
            )
            for name, cfg in systems.items()
        ]
        return dict(run_sweep(points, workers=workers or 1, cache=cache).results)
    return {
        name: run_server(cfg, simcfg, batch_job) for name, cfg in systems.items()
    }
