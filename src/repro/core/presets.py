"""System presets: the five evaluated architectures, the motivational
configurations of Section 3, and the ablation points of Figures 12/13/15.

Every preset is a :class:`~repro.config.SystemConfig`; anything an
experiment varies beyond these (LLC size, eviction-candidate fraction,
cache scaling) is applied with :func:`dataclasses.replace` on top.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.config import (
    FlushScope,
    HarvestTrigger,
    OptimizationFlags,
    PartitionConfig,
    ReplacementKind,
    SoftwareCosts,
    SystemConfig,
    SystemKind,
)


def _hw_partition(
    replacement: ReplacementKind = ReplacementKind.HARDHARVEST,
    harvest_fraction: float = 0.5,
    candidates: float = 0.75,
) -> PartitionConfig:
    return PartitionConfig(
        enabled=True,
        harvest_fraction=harvest_fraction,
        eviction_candidates_fraction=candidates,
        replacement=replacement,
    )


# ---------------------------------------------------------------------------
# The five evaluated systems (Section 5).
# ---------------------------------------------------------------------------
def noharvest() -> SystemConfig:
    """Conventional system: no core harvesting; many cores stay idle."""
    return SystemConfig(
        name="NoHarvest",
        trigger=HarvestTrigger.NEVER,
        flush_scope=FlushScope.FULL,
        software_costs=SoftwareCosts.optimized(),
    )


def harvest_term() -> SystemConfig:
    """SmartHarvest-style software harvesting on request termination [88]."""
    return SystemConfig(
        name="Harvest-Term",
        trigger=HarvestTrigger.ON_TERMINATION,
        flush_scope=FlushScope.FULL,
        software_costs=SoftwareCosts.optimized(),
    )


def harvest_block() -> SystemConfig:
    """Aggressive software harvesting: also steals cores blocked on I/O."""
    return replace(
        harvest_term(), name="Harvest-Block", trigger=HarvestTrigger.ON_BLOCK
    )


def hardharvest_term() -> SystemConfig:
    """HardHarvest harvesting only on request termination."""
    return SystemConfig(
        name="HardHarvest-Term",
        trigger=HarvestTrigger.ON_TERMINATION,
        hardware_scheduling=True,
        flags=OptimizationFlags.all(),
        flush_scope=FlushScope.HARVEST_REGION,
        partition=_hw_partition(),
    )


def hardharvest_block() -> SystemConfig:
    """The paper's proposal: HardHarvest, harvesting on block too."""
    return replace(
        hardharvest_term(),
        name="HardHarvest-Block",
        trigger=HarvestTrigger.ON_BLOCK,
    )


_SYSTEMS = {
    SystemKind.NOHARVEST: noharvest,
    SystemKind.HARVEST_TERM: harvest_term,
    SystemKind.HARVEST_BLOCK: harvest_block,
    SystemKind.HARDHARVEST_TERM: hardharvest_term,
    SystemKind.HARDHARVEST_BLOCK: hardharvest_block,
}


def build_system(kind: SystemKind) -> SystemConfig:
    """Preset for one of the five evaluated architectures."""
    return _SYSTEMS[kind]()


def all_systems() -> Dict[str, SystemConfig]:
    """All five evaluated systems, keyed by display name, in paper order."""
    return {cfg().name: cfg() for cfg in _SYSTEMS.values()}


# ---------------------------------------------------------------------------
# Motivational configurations (Section 3, Figures 4-6).
# ---------------------------------------------------------------------------
def fig4_no_move() -> SystemConfig:
    """No core movement at all; the Figure 4 baseline."""
    return replace(noharvest(), name="No-Move", batch_active=False)


def fig4_kvm(trigger: HarvestTrigger) -> SystemConfig:
    """KVM-cost reassignment, idle Harvest VM, no flushing (Figure 4)."""
    name = "KVM-Term" if trigger is HarvestTrigger.ON_TERMINATION else "KVM-Block"
    return SystemConfig(
        name=name,
        trigger=trigger,
        flush_scope=FlushScope.NONE,
        software_costs=SoftwareCosts.kvm(),
        batch_active=False,
    )


def fig4_opt(trigger: HarvestTrigger) -> SystemConfig:
    """SmartHarvest-optimized reassignment latencies (Figure 4)."""
    name = "Opt-Term" if trigger is HarvestTrigger.ON_TERMINATION else "Opt-Block"
    return SystemConfig(
        name=name,
        trigger=trigger,
        flush_scope=FlushScope.NONE,
        software_costs=SoftwareCosts.optimized(),
        batch_active=False,
    )


def fig5_no_flush() -> SystemConfig:
    """Figure 5 baseline: no flushing, no reassignment overhead."""
    free = replace(
        SoftwareCosts.optimized(), detach_attach_ns=0, context_switch_ns=0
    )
    return SystemConfig(
        name="No-Flush",
        trigger=HarvestTrigger.ON_BLOCK,
        flush_scope=FlushScope.NONE,
        software_costs=free,
        batch_active=False,
    )


def fig5_flush(trigger: HarvestTrigger) -> SystemConfig:
    """Flushing only (zero-cost reassignment): Flush-Term / Flush-Block."""
    name = "Flush-Term" if trigger is HarvestTrigger.ON_TERMINATION else "Flush-Block"
    free = replace(
        SoftwareCosts.optimized(), detach_attach_ns=0, context_switch_ns=0
    )
    return SystemConfig(
        name=name,
        trigger=trigger,
        flush_scope=FlushScope.FULL,
        software_costs=free,
        batch_active=False,
    )


def fig5_harvest(trigger: HarvestTrigger) -> SystemConfig:
    """Flushing plus optimized reassignment: the true software cost."""
    name = (
        "Harvest-Term" if trigger is HarvestTrigger.ON_TERMINATION else "Harvest-Block"
    )
    return SystemConfig(
        name=name,
        trigger=trigger,
        flush_scope=FlushScope.FULL,
        software_costs=SoftwareCosts.optimized(),
        batch_active=False,
    )


# ---------------------------------------------------------------------------
# Ablations (Figures 12, 13, 15).
# ---------------------------------------------------------------------------
def fig12_step(
    sched: bool = False,
    queue: bool = False,
    ctxtsw: bool = False,
    part: bool = False,
    flush: bool = False,
    repl: bool = False,
    name: str = "",
) -> SystemConfig:
    """Harvest-Block plus a subset of HardHarvest mechanisms.

    Mirrors Figure 12's cumulative construction: each flag replaces the
    corresponding software mechanism with its hardware counterpart.
    """
    flags = OptimizationFlags(
        sched=sched, queue=queue, ctxtsw=ctxtsw, part=part, flush=flush, repl=repl
    )
    partition = (
        _hw_partition(
            ReplacementKind.HARDHARVEST if repl else ReplacementKind.LRU
        )
        if part
        else PartitionConfig()
    )
    scope = FlushScope.HARVEST_REGION if part else FlushScope.FULL
    return SystemConfig(
        name=name or "Harvest-Block+",
        trigger=HarvestTrigger.ON_BLOCK,
        hardware_scheduling=sched,
        flags=flags,
        flush_scope=scope,
        software_costs=SoftwareCosts.optimized(),
        partition=partition,
    )


def fig12_ladder() -> Dict[str, SystemConfig]:
    """The cumulative optimization ladder of Figure 12, in order."""
    return {
        "Harvest-Term": harvest_term(),
        "Harvest-Block": harvest_block(),
        "+Sched": fig12_step(sched=True, name="+Sched"),
        "+Queue": fig12_step(sched=True, queue=True, name="+Queue"),
        "+CtxtSw": fig12_step(sched=True, queue=True, ctxtsw=True, name="+CtxtSw"),
        "+Part": fig12_step(
            sched=True, queue=True, ctxtsw=True, part=True, name="+Part"
        ),
        "+Flush": fig12_step(
            sched=True, queue=True, ctxtsw=True, part=True, flush=True, name="+Flush"
        ),
        "HardHarvest": fig12_step(
            sched=True,
            queue=True,
            ctxtsw=True,
            part=True,
            flush=True,
            repl=True,
            name="HardHarvest",
        ),
    }


def fig13_points() -> Dict[str, SystemConfig]:
    """Figure 13: CtxtSw-only, Sched-only, and both, over Harvest-Block."""
    return {
        "HarvestBlock": harvest_block(),
        "+CtxtSw": fig12_step(ctxtsw=True, name="+CtxtSw"),
        "+Sched": fig12_step(sched=True, name="+Sched"),
        "+CtxtSw&Sched": fig12_step(sched=True, ctxtsw=True, name="+CtxtSw&Sched"),
    }


def fig15_step(
    sched: bool = False,
    queue: bool = False,
    ctxtsw: bool = False,
    repl: bool = False,
    name: str = "",
) -> SystemConfig:
    """NoHarvest plus HardHarvest mechanisms (no harvesting, Figure 15).

    Partitioning/flushing are irrelevant without harvesting; the replacement
    policy runs un-partitioned (it still prefers evicting private entries).
    """
    flags = OptimizationFlags(sched=sched, queue=queue, ctxtsw=ctxtsw, repl=repl)
    partition = (
        PartitionConfig(enabled=False, replacement=ReplacementKind.HARDHARVEST)
        if repl
        else PartitionConfig()
    )
    return SystemConfig(
        name=name or "NoHarvest+",
        trigger=HarvestTrigger.NEVER,
        hardware_scheduling=sched,
        flags=flags,
        flush_scope=FlushScope.FULL,
        software_costs=SoftwareCosts.optimized(),
        partition=partition,
    )


def fig15_ladder() -> Dict[str, SystemConfig]:
    """The cumulative optimization ladder of Figure 15, in order."""
    return {
        "NoHarvest": noharvest(),
        "+Sched": fig15_step(sched=True, name="+Sched"),
        "+Queue": fig15_step(sched=True, queue=True, name="+Queue"),
        "+CtxtSw": fig15_step(sched=True, queue=True, ctxtsw=True, name="+CtxtSw"),
        "+ReplPolicy": fig15_step(
            sched=True, queue=True, ctxtsw=True, repl=True, name="+ReplPolicy"
        ),
    }
