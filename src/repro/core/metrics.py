"""Result containers and aggregation helpers for experiments.

The paper reports per-service P99/median latency (Figures 11/16), averages
across services, Harvest VM throughput normalized to NoHarvest (Figure 17),
mean busy cores (Section 6.7), L2 hit rates (Figure 14), and per-request
time breakdowns (Figure 6). These containers hold exactly those views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.stats import Breakdown


@dataclass
class ServerResult:
    """Summary of one simulated server under one system."""

    system: str
    batch_job: str
    p99_ms: Dict[str, float]
    p50_ms: Dict[str, float]
    mean_ms: Dict[str, float]
    breakdown: Dict[str, Breakdown]
    avg_busy_cores: float
    batch_units_per_s: float
    l2_hit_rate: float
    counters: Dict[str, int]
    simulated_seconds: float
    #: Degradation metrics under fault injection / client resilience
    #: (goodput, retry_amplification, slo_violation_rate, recovery_ms_*);
    #: empty for plain runs.
    resilience: Dict[str, float] = field(default_factory=dict)

    def avg_p99_ms(self) -> float:
        return sum(self.p99_ms.values()) / len(self.p99_ms)

    def avg_p50_ms(self) -> float:
        return sum(self.p50_ms.values()) / len(self.p50_ms)


@dataclass
class ClusterResult:
    """One system across the simulated servers (different batch job each)."""

    system: str
    servers: List[ServerResult] = field(default_factory=list)

    def _require_servers(self) -> None:
        if not self.servers:
            raise ValueError(
                f"cannot aggregate ClusterResult({self.system!r}) with no servers"
            )

    def avg_p99_ms(self) -> float:
        self._require_servers()
        return sum(s.avg_p99_ms() for s in self.servers) / len(self.servers)

    def avg_busy_cores(self) -> float:
        self._require_servers()
        return sum(s.avg_busy_cores for s in self.servers) / len(self.servers)

    def throughput_by_job(self) -> Dict[str, float]:
        return {s.batch_job: s.batch_units_per_s for s in self.servers}

    def p99_by_service(self) -> Dict[str, float]:
        """Mean per-service P99 across servers."""
        self._require_servers()
        services = self.servers[0].p99_ms.keys()
        return {
            svc: sum(s.p99_ms[svc] for s in self.servers) / len(self.servers)
            for svc in services
        }


def normalize(values: Dict[str, float], baseline: Dict[str, float]) -> Dict[str, float]:
    """Element-wise ratio ``values / baseline`` (Figure 17 normalization)."""
    out: Dict[str, float] = {}
    for key, value in values.items():
        base = baseline.get(key)
        if base is None or base == 0:
            raise ValueError(f"no baseline for {key!r}")
        out[key] = value / base
    return out


def speedup(baseline_ms: float, new_ms: float) -> float:
    """How many times lower ``new_ms`` is than ``baseline_ms``."""
    if new_ms <= 0:
        raise ValueError(f"non-positive latency {new_ms}")
    return baseline_ms / new_ms
