"""Atomic file writes for result artifacts.

Same discipline as :mod:`repro.parallel.cache`: write to a temp file in
the destination directory, then ``os.replace`` into place. An interrupted
run (ctrl-C, OOM-kill, crashed CI worker) therefore never leaves a
truncated JSON/CSV artifact behind — the destination either has the old
content or the complete new content.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from typing import IO, Iterator, Optional


@contextlib.contextmanager
def atomic_open(path: str, newline: Optional[str] = None) -> Iterator[IO[str]]:
    """Open ``path`` for atomic text writing.

    Yields a file handle backed by a temp file next to ``path``; on clean
    exit the temp file replaces ``path`` atomically, on any exception it
    is removed and ``path`` is untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", newline=newline) as fh:
            yield fh
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
