"""Result export: write experiment results as CSV or JSON artifacts.

Downstream users typically post-process results (plotting, regression
tracking); these helpers give them stable, flat file formats:

* :func:`result_to_json` / :func:`write_json` — full nested result.
* :func:`latency_rows` / :func:`write_latency_csv` — one row per
  (system, service) with p50/p99/mean.
* :func:`write_samples_csv` — raw latency samples from a live simulation
  (for CDFs and custom percentiles).
* :func:`server_result_to_dict` / :func:`server_result_from_dict` —
  *lossless* round trip (breakdowns stay in integer ns) used by the
  :mod:`repro.parallel` result cache, where cached and recomputed results
  must compare bit-identical.
* :func:`write_sweep_json` / :func:`write_sweep_csv` — sweep results keyed
  by point label (``python -m repro sweep`` artifacts).
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, List

from repro.cluster.server import ServerSimulation
from repro.core.ioutil import atomic_open
from repro.core.metrics import ServerResult
from repro.sim.stats import Breakdown


def result_to_json(result: ServerResult) -> Dict:
    """Flatten a :class:`ServerResult` into JSON-serializable types."""
    return {
        "system": result.system,
        "batch_job": result.batch_job,
        "simulated_seconds": result.simulated_seconds,
        "avg_busy_cores": result.avg_busy_cores,
        "batch_units_per_s": result.batch_units_per_s,
        "l2_hit_rate": result.l2_hit_rate,
        "latency_ms": {
            svc: {
                "p50": result.p50_ms[svc],
                "p99": result.p99_ms[svc],
                "mean": result.mean_ms[svc],
            }
            for svc in result.p99_ms
        },
        "breakdown_ms": {
            svc: {
                "reassign": b.reassign_ns / 1e6,
                "flush": b.flush_ns / 1e6,
                "execution": b.execution_ns / 1e6,
                "queueing": b.queueing_ns / 1e6,
            }
            for svc, b in result.breakdown.items()
        },
        "counters": dict(result.counters),
        "resilience": dict(result.resilience),
    }


def write_json(path: str, results: Iterable[ServerResult]) -> None:
    with atomic_open(path) as fh:
        json.dump([result_to_json(r) for r in results], fh, indent=2)


def latency_rows(results: Iterable[ServerResult]) -> List[Dict]:
    """One flat row per (system, service)."""
    rows = []
    for result in results:
        for svc in result.p99_ms:
            rows.append(
                {
                    "system": result.system,
                    "service": svc,
                    "p50_ms": result.p50_ms[svc],
                    "p99_ms": result.p99_ms[svc],
                    "mean_ms": result.mean_ms[svc],
                }
            )
    return rows


def write_latency_csv(path: str, results: Iterable[ServerResult]) -> None:
    rows = latency_rows(results)
    if not rows:
        raise ValueError("no results to export")
    with atomic_open(path, newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def server_result_to_dict(result: ServerResult) -> Dict:
    """Lossless encoding of a :class:`ServerResult` into JSON-able types.

    Unlike :func:`result_to_json` (which converts breakdowns to ms floats
    for human consumption), this keeps every field at its native precision
    so ``server_result_from_dict(server_result_to_dict(r)) == r`` exactly.
    """
    return {
        "system": result.system,
        "batch_job": result.batch_job,
        "p99_ms": dict(result.p99_ms),
        "p50_ms": dict(result.p50_ms),
        "mean_ms": dict(result.mean_ms),
        "breakdown": {
            svc: {
                "reassign_ns": b.reassign_ns,
                "flush_ns": b.flush_ns,
                "execution_ns": b.execution_ns,
                "queueing_ns": b.queueing_ns,
            }
            for svc, b in result.breakdown.items()
        },
        "avg_busy_cores": result.avg_busy_cores,
        "batch_units_per_s": result.batch_units_per_s,
        "l2_hit_rate": result.l2_hit_rate,
        "counters": dict(result.counters),
        "simulated_seconds": result.simulated_seconds,
        "resilience": dict(result.resilience),
    }


def server_result_from_dict(data: Dict) -> ServerResult:
    """Inverse of :func:`server_result_to_dict`."""
    return ServerResult(
        system=data["system"],
        batch_job=data["batch_job"],
        p99_ms=dict(data["p99_ms"]),
        p50_ms=dict(data["p50_ms"]),
        mean_ms=dict(data["mean_ms"]),
        breakdown={
            svc: Breakdown(**fields) for svc, fields in data["breakdown"].items()
        },
        avg_busy_cores=data["avg_busy_cores"],
        batch_units_per_s=data["batch_units_per_s"],
        l2_hit_rate=data["l2_hit_rate"],
        counters=dict(data["counters"]),
        simulated_seconds=data["simulated_seconds"],
        # .get: results cached before the resilience field existed.
        resilience=dict(data.get("resilience", {})),
    )


def sweep_results_digest(results: Dict[str, ServerResult]) -> str:
    """sha256 over the canonical JSON of the lossless sweep encoding.

    This is *the* sweep determinism fingerprint: the CLI stamps it into
    ``--stats-json`` and the job service stamps it into every sweep
    result, so "service output == CLI output" reduces to string equality.
    Labels participate (they carry system name and seed), wall time and
    cache provenance do not.
    """
    import hashlib

    # Imported here, not at module top: repro.parallel imports this
    # module for the lossless codec.
    from repro.parallel.cache import canonical_json

    payload = {label: server_result_to_dict(r) for label, r in results.items()}
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def write_sweep_json(path: str, results: Dict[str, ServerResult]) -> None:
    """Write sweep results keyed by point label (lossless encoding)."""
    payload = {label: server_result_to_dict(r) for label, r in results.items()}
    with atomic_open(path) as fh:
        json.dump(payload, fh, indent=2)


def write_sweep_csv(path: str, results: Dict[str, ServerResult]) -> None:
    """One flat row per (point label, service) with the headline metrics."""
    if not results:
        raise ValueError("no results to export")
    with atomic_open(path, newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["label", "system", "batch_job", "service", "p50_ms", "p99_ms",
             "mean_ms", "avg_busy_cores", "batch_units_per_s"]
        )
        for label, result in results.items():
            for svc in result.p99_ms:
                writer.writerow(
                    [label, result.system, result.batch_job, svc,
                     result.p50_ms[svc], result.p99_ms[svc],
                     result.mean_ms[svc], result.avg_busy_cores,
                     result.batch_units_per_s]
                )


def write_cluster_scale_json(path: str, result) -> None:
    """Write a :class:`~repro.cluster_scale.result.ClusterScaleResult`
    losslessly (its ``to_dict`` keeps per-server results at native
    precision and excludes wall time, so the file's content is exactly
    what the run digest covers)."""
    with atomic_open(path) as fh:
        json.dump(result.to_dict(), fh, indent=2)


def write_cluster_scale_csv(path: str, result) -> None:
    """One flat row per (epoch, server) with the headline metrics."""
    with atomic_open(path, newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["epoch", "server", "system", "batch_job", "load_scale",
             "harvest_cores", "requests_measured", "avg_p99_ms",
             "avg_p50_ms", "avg_busy_cores", "batch_units_per_s"]
        )
        for epoch in result.epochs:
            for i, server in enumerate(epoch.cluster.servers):
                writer.writerow(
                    [epoch.epoch, i, server.system, server.batch_job,
                     epoch.load_scale[i], epoch.harvest_alloc[i],
                     server.counters.get("requests_measured", 0),
                     server.avg_p99_ms(), server.avg_p50_ms(),
                     server.avg_busy_cores, server.batch_units_per_s]
                )


def write_samples_csv(path: str, sim: ServerSimulation) -> int:
    """Dump raw per-request latency samples (ns) from a live simulation.

    Returns the number of samples written. Use :func:`run_server_raw` to
    keep the simulation object.
    """
    total = 0
    with atomic_open(path, newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["service", "latency_ns"])
        for name, recorder in sim.latency.items():
            for sample in recorder.samples():
                writer.writerow([name, int(sample)])
                total += 1
    return total
