"""Multi-seed replication: run an experiment across seeds and report
mean / spread / confidence intervals for any metric.

Single-seed P99s carry sampling noise; a credible comparison states its
spread. :func:`replicate` runs one system across N seeds (optionally in a
process pool — runs are independent); :func:`compare_metric` replicates
several systems on *paired* seeds and summarizes a metric with a paired
confidence interval on the ratio vs a baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import SimulationConfig, SystemConfig
from repro.core.experiment import run_server
from repro.core.metrics import ServerResult

#: t-distribution 97.5% quantiles for small samples (df = 1..30).
_T975 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def _t975(df: int) -> float:
    if df < 1:
        raise ValueError("need at least 2 samples for a CI")
    return _T975[min(df, len(_T975)) - 1]


@dataclass(frozen=True)
class MetricSummary:
    """Mean, spread, and a 95% CI for one metric across seeds."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    samples: tuple

    @property
    def n(self) -> int:
        return len(self.samples)


def summarize_samples(values: Sequence[float]) -> MetricSummary:
    values = list(values)
    n = len(values)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(values) / n
    if n == 1:
        return MetricSummary(mean, 0.0, mean, mean, tuple(values))
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(var)
    half = _t975(n - 1) * std / math.sqrt(n)
    return MetricSummary(mean, std, mean - half, mean + half, tuple(values))


def replicate(
    system: SystemConfig,
    simcfg: SimulationConfig,
    seeds: Sequence[int],
    parallel: bool = False,
    workers: Optional[int] = None,
    cache=None,
) -> List[ServerResult]:
    """Run one system once per seed.

    ``workers=N``/``cache=`` route the seeds through
    :func:`repro.parallel.run_sweep` (process-pool fan-out plus the
    content-addressed result cache); ``parallel=True`` is the legacy
    spelling of ``workers=8``.  Results are bit-identical either way.
    """
    if not seeds:
        raise ValueError("no seeds given")
    if parallel and workers is None:
        workers = min(8, len(seeds))
    if workers is not None or cache is not None:
        from repro.parallel import SweepSpec, run_sweep

        spec = SweepSpec(
            systems={system.name: system}, seeds=tuple(seeds), sim=simcfg
        )
        outcome = run_sweep(spec, workers=workers or 1, cache=cache)
        return list(outcome.results.values())
    return [run_server(system, replace(simcfg, seed=s)) for s in seeds]


def compare_metric(
    systems: Dict[str, SystemConfig],
    simcfg: SimulationConfig,
    seeds: Sequence[int],
    metric: Callable[[ServerResult], float],
    baseline: Optional[str] = None,
    parallel: bool = False,
) -> Dict[str, Dict[str, MetricSummary]]:
    """Replicate several systems on paired seeds.

    Returns, per system, the absolute metric summary and (when ``baseline``
    is given) the summary of the per-seed *ratios* vs the baseline — the
    paired comparison that cancels workload noise.
    """
    results = {
        name: replicate(system, simcfg, seeds, parallel)
        for name, system in systems.items()
    }
    out: Dict[str, Dict[str, MetricSummary]] = {}
    base_vals = (
        [metric(r) for r in results[baseline]] if baseline is not None else None
    )
    for name, runs in results.items():
        vals = [metric(r) for r in runs]
        entry = {"absolute": summarize_samples(vals)}
        if base_vals is not None:
            entry["ratio_vs_baseline"] = summarize_samples(
                [v / b for v, b in zip(vals, base_vals)]
            )
        out[name] = entry
    return out
