"""Cluster-scale resilience: fault plans, health feedback, checkpoints.

Three concerns of a fault-aware datacenter run live here, all built so the
sharding determinism contract survives failures end to end:

**Fault plans.** A :class:`ClusterFaultPlan` schedules faults across the
*cluster* dimension the per-server :class:`~repro.faults.spec.FaultSchedule`
cannot see: which epoch, which server subset, placed at fractions of the
epoch horizon.  The plan expands into ordinary per-server fault schedules
(riding each sweep point's :class:`~repro.config.SimulationConfig`), so
every fault parameter automatically reaches the result-cache key, and the
plan's own serialized form is embedded in the
:class:`~repro.cluster_scale.result.ClusterScaleResult` payload — hence the
run digest.

**Health feedback.** At each epoch barrier the coordinator observes which
servers crashed (``faults_crashes`` counter) and excludes them from the
next epochs' routing until a configurable cool-down expires.  The exclusion
is a pure function of (merged epoch results, plan), so it is bit-identical
at any worker count.

**Checkpoints.** After each barrier the runner persists a digest-stamped
checkpoint (the epoch's full result plus the exact barrier state: harvest
allocation, routing carryover, health cool-downs) under
``<cache>/checkpoints/<run key>/``.  A resumed run restores that state and
continues from the next epoch; because every epoch's randomness is a pure
function of ``(root seed, epoch)``, the resumed run's digest is
bit-identical to an uninterrupted one.  Truncated, corrupt, or
version-mismatched checkpoints are detected by the embedded sha256 stamp
and the loader falls back to the last good epoch (or a cold run) with a
warning — never a wrong-answer resume.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import repro
from repro.core.ioutil import atomic_open
from repro.faults.spec import ClientPolicy, FaultKind, FaultSchedule, FaultSpec
from repro.parallel.cache import canonical_json


# ---------------------------------------------------------------------------
# Cluster-dimension fault scheduling.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterFaultSpec:
    """One cluster-level fault event: which epoch, which servers, and the
    window *as fractions of the epoch horizon* (so the same plan stresses a
    20 ms smoke epoch and a 100 ms paper-scale epoch proportionally).

    ``kind``/``magnitude``/``target``/``target_name`` carry the
    :class:`~repro.faults.spec.FaultSpec` semantics unchanged.
    """

    kind: FaultKind
    epoch: int
    servers: Tuple[int, ...]
    start_frac: float = 0.25
    duration_frac: float = 0.25
    magnitude: float = 1.0
    target: int = -1
    target_name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise TypeError(f"kind must be a FaultKind, got {self.kind!r}")
        if self.epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {self.epoch}")
        servers = tuple(int(s) for s in self.servers)
        if not servers:
            raise ValueError("servers must name at least one server index")
        if any(s < 0 for s in servers):
            raise ValueError(f"server indices must be non-negative: {servers}")
        if len(set(servers)) != len(servers):
            raise ValueError(f"duplicate server indices: {servers}")
        object.__setattr__(self, "servers", servers)
        if not 0.0 <= self.start_frac < 1.0:
            raise ValueError(
                f"start_frac must be in [0,1), got {self.start_frac}"
            )
        if self.duration_frac <= 0.0:
            raise ValueError(
                f"duration_frac must be positive, got {self.duration_frac}"
            )
        if self.start_frac + self.duration_frac > 1.0:
            raise ValueError(
                "fault window must fit inside the epoch: start_frac + "
                f"duration_frac = {self.start_frac + self.duration_frac} > 1"
            )

    def expand(self, epoch_ms: float) -> FaultSpec:
        """The per-server fault event this becomes at a given epoch length.

        Validation (magnitude ranges per kind) happens in
        :class:`FaultSpec`, so a bad plan fails at construction of the
        epoch's points, not silently mid-run.
        """
        return FaultSpec(
            kind=self.kind,
            start_ms=epoch_ms * self.start_frac,
            duration_ms=max(epoch_ms * self.duration_frac, 1e-3),
            magnitude=self.magnitude,
            target=self.target,
            target_name=self.target_name,
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "epoch": self.epoch,
            "servers": list(self.servers),
            "start_frac": self.start_frac,
            "duration_frac": self.duration_frac,
            "magnitude": self.magnitude,
            "target": self.target,
            "target_name": self.target_name,
        }

    @staticmethod
    def from_dict(data: dict) -> "ClusterFaultSpec":
        return ClusterFaultSpec(
            kind=FaultKind(data["kind"]),
            epoch=data["epoch"],
            servers=tuple(data["servers"]),
            start_frac=data["start_frac"],
            duration_frac=data["duration_frac"],
            magnitude=data["magnitude"],
            target=data["target"],
            target_name=data["target_name"],
        )


@dataclass(frozen=True)
class ClusterFaultPlan:
    """A frozen per-epoch fault schedule over server subsets, plus the
    health-feedback knobs the routing layer consumes.

    ``client`` is applied to *every* server of a fault-plan run (not only
    the faulted ones) so retry/hedging/goodput accounting is uniform
    across the cluster.  ``cooldown_epochs`` is how many epochs a crashed
    server stays excluded from routing after the epoch in which it
    crashed (0 = crashes never steer routing).
    """

    events: Tuple[ClusterFaultSpec, ...] = ()
    client: Optional[ClientPolicy] = None
    cooldown_epochs: int = 1

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for ev in events:
            if not isinstance(ev, ClusterFaultSpec):
                raise TypeError(f"events must be ClusterFaultSpec, got {ev!r}")
        object.__setattr__(self, "events", events)
        if self.client is not None and not isinstance(self.client, ClientPolicy):
            raise TypeError(f"client must be a ClientPolicy, got {self.client!r}")
        if self.cooldown_epochs < 0:
            raise ValueError(
                f"cooldown_epochs must be >= 0, got {self.cooldown_epochs}"
            )

    def __len__(self) -> int:
        return len(self.events)

    def events_for(self, epoch: int, server: int) -> Tuple[ClusterFaultSpec, ...]:
        """The plan events hitting ``server`` during ``epoch``, in plan order."""
        return tuple(
            ev for ev in self.events
            if ev.epoch == epoch and server in ev.servers
        )

    def schedule_for(
        self, epoch: int, server: int, epoch_ms: float
    ) -> Optional[FaultSchedule]:
        """Expand this plan into one server-epoch's fault schedule
        (None when the plan leaves that server-epoch untouched)."""
        events = self.events_for(epoch, server)
        if not events:
            return None
        return FaultSchedule(
            events=tuple(ev.expand(epoch_ms) for ev in events)
        )

    def describe(self) -> str:
        """One line per event, for CLI banners and logs."""
        lines = []
        for i, ev in enumerate(self.events):
            servers = ",".join(str(s) for s in ev.servers)
            lines.append(
                f"  [{i}] epoch {ev.epoch}: {ev.kind.value:16s} "
                f"servers [{servers}] window "
                f"{ev.start_frac:.0%}+{ev.duration_frac:.0%} "
                f"magnitude={ev.magnitude:g}"
            )
        return "\n".join(lines) if lines else "  (no faults)"

    def to_dict(self) -> dict:
        return {
            "events": [ev.to_dict() for ev in self.events],
            "client": (
                dataclasses.asdict(self.client)
                if self.client is not None
                else None
            ),
            "cooldown_epochs": self.cooldown_epochs,
        }

    @staticmethod
    def from_dict(data: dict) -> "ClusterFaultPlan":
        return ClusterFaultPlan(
            events=tuple(
                ClusterFaultSpec.from_dict(ev) for ev in data["events"]
            ),
            client=(
                ClientPolicy(**data["client"])
                if data.get("client") is not None
                else None
            ),
            cooldown_epochs=data.get("cooldown_epochs", 1),
        )


# ---------------------------------------------------------------------------
# Canned cluster plans (``--fault-plan <name>``).
# ---------------------------------------------------------------------------
def _spread(servers: int, epoch: int, count: int) -> Tuple[int, ...]:
    """A deterministic, epoch-rotating subset of ``count`` servers."""
    count = max(1, min(count, servers))
    return tuple(sorted((epoch * count + i) % servers for i in range(count)))


def _plan_crash_storm(servers: int, epochs: int) -> ClusterFaultPlan:
    """Every epoch, a rotating quarter of the cluster suffers a transient
    full-server crash; clients retry and routing steers around the
    casualties for one cool-down epoch."""
    events = [
        ClusterFaultSpec(
            kind=FaultKind.SERVER_CRASH,
            epoch=epoch,
            servers=_spread(servers, epoch, max(1, servers // 4)),
            start_frac=0.3,
            duration_frac=0.15,
        )
        for epoch in range(epochs)
    ]
    return ClusterFaultPlan(
        events=tuple(events),
        client=ClientPolicy(
            timeout_ms=25.0, max_retries=4, backoff_base_ms=4.0,
            retry_budget=2.0,
        ),
        cooldown_epochs=1,
    )


def _plan_brownout_wave(servers: int, epochs: int) -> ClusterFaultPlan:
    """A backend brownout rolls across the cluster: each epoch a different
    half of the servers sees its database tier at 25% capacity."""
    events = [
        ClusterFaultSpec(
            kind=FaultKind.BACKEND_BROWNOUT,
            epoch=epoch,
            servers=_spread(servers, epoch, max(1, servers // 2)),
            start_frac=0.25,
            duration_frac=0.5,
            magnitude=0.25,
            target_name="mongodb",
        )
        for epoch in range(epochs)
    ]
    return ClusterFaultPlan(
        events=tuple(events),
        client=ClientPolicy(
            timeout_ms=30.0, max_retries=3, retry_budget=1.0,
            admission_queue_depth=48,
        ),
        cooldown_epochs=0,
    )


def _plan_slow_core_epidemic(servers: int, epochs: int) -> ClusterFaultPlan:
    """Thermal throttling spreads: the share of servers running their
    Primary cores 3x slower grows every epoch until the whole cluster is
    affected."""
    events = []
    for epoch in range(epochs):
        infected = max(1, (servers * (epoch + 1)) // max(1, epochs))
        events.append(
            ClusterFaultSpec(
                kind=FaultKind.CORE_SLOWDOWN,
                epoch=epoch,
                servers=tuple(range(infected)),
                start_frac=0.2,
                duration_frac=0.6,
                magnitude=3.0,
            )
        )
    return ClusterFaultPlan(
        events=tuple(events),
        client=ClientPolicy(timeout_ms=40.0, max_retries=2, retry_budget=0.5),
        cooldown_epochs=0,
    )


CLUSTER_PLANS: Dict[str, Callable[[int, int], ClusterFaultPlan]] = {
    "crash-storm": _plan_crash_storm,
    "brownout-wave": _plan_brownout_wave,
    "slow-core-epidemic": _plan_slow_core_epidemic,
}


def cluster_plan_names() -> List[str]:
    return sorted(CLUSTER_PLANS)


def get_cluster_plan(name: str, servers: int, epochs: int) -> ClusterFaultPlan:
    """Expand a canned cluster plan for a given cluster shape.

    Raises KeyError with the list of known names on an unknown plan.
    """
    builder = CLUSTER_PLANS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown cluster fault plan {name!r}; choose from "
            f"{cluster_plan_names()}"
        )
    if servers <= 0 or epochs <= 0:
        raise ValueError("servers and epochs must be positive")
    return builder(servers, epochs)


# ---------------------------------------------------------------------------
# Epoch-barrier health feedback.
# ---------------------------------------------------------------------------
class HealthTracker:
    """Per-server routing eligibility driven by observed crashes.

    A server that crashed during epoch ``e`` is excluded from routing for
    the next ``cooldown_epochs`` epochs, then re-admitted.  All state is
    derived from merged epoch results at barriers, so it is independent of
    worker count, and it round-trips through checkpoints exactly (the
    cool-down vector is integer state).
    """

    def __init__(self, servers: int, cooldown_epochs: int,
                 cooldown: Optional[Sequence[int]] = None):
        if cooldown is not None and len(cooldown) != servers:
            raise ValueError(
                f"cooldown vector has {len(cooldown)} entries for "
                f"{servers} servers"
            )
        self.servers = servers
        self.cooldown_epochs = cooldown_epochs
        self.cooldown: List[int] = (
            [int(c) for c in cooldown] if cooldown is not None
            else [0] * servers
        )

    def eligible(self) -> List[bool]:
        """Routing eligibility for the *next* epoch.  If every server is
        cooling down, all are re-admitted (routing somewhere beats
        routing nowhere)."""
        mask = [c == 0 for c in self.cooldown]
        if not any(mask):
            return [True] * self.servers
        return mask

    def excluded(self) -> List[int]:
        mask = self.eligible()
        return [i for i in range(self.servers) if not mask[i]]

    def barrier(self, crashed: Sequence[bool]) -> dict:
        """Fold one epoch's observed crashes into the cool-down state.

        Servers that sat out this epoch tick down first; servers observed
        crashing (re)start their cool-down.  Returns the epoch's health
        record for :class:`~repro.cluster_scale.result.EpochResult`.
        """
        if len(crashed) != self.servers:
            raise ValueError(
                f"crashed vector has {len(crashed)} entries for "
                f"{self.servers} servers"
            )
        excluded_now = [i for i, c in enumerate(self.cooldown) if c > 0]
        for i in range(self.servers):
            if self.cooldown[i] > 0:
                self.cooldown[i] -= 1
            if crashed[i]:
                self.cooldown[i] = self.cooldown_epochs
        return {
            "crashed": [i for i, flag in enumerate(crashed) if flag],
            "excluded": excluded_now,
            "cooldown": list(self.cooldown),
        }


# ---------------------------------------------------------------------------
# Degradation aggregation (the PR-3 metrics, reduced per epoch).
# ---------------------------------------------------------------------------
#: Per-server resilience counters that sum across a cluster.
_SUM_KEYS = (
    "offered", "completed", "completed_in_slo", "failed", "attempts",
    "retries", "hedges", "shed", "timeouts",
)


def aggregate_resilience(server_results: Sequence) -> Dict[str, float]:
    """Reduce per-server ``resilience`` dicts into one epoch-level record.

    Counters sum; rates are recomputed from the summed counters (never
    averaged); time-to-recovery takes the cluster-wide worst case.  Works
    for both the client-runtime summary and the injector-only summary
    (which lacks SLO accounting — there ``completed`` stands in for
    ``completed_in_slo``).  Empty when no server carries resilience data.
    """
    totals = {key: 0.0 for key in _SUM_KEYS}
    recovery_max = 0.0
    populated = False
    for server in server_results:
        res = getattr(server, "resilience", None) or {}
        if not res:
            continue
        populated = True
        for key in _SUM_KEYS:
            totals[key] += res.get(key, 0.0)
        if "completed_in_slo" not in res:
            totals["completed_in_slo"] += res.get("completed", 0.0)
        if "attempts" not in res:
            totals["attempts"] += res.get("completed", 0.0)
        recovery_max = max(recovery_max, res.get("recovery_ms_max", 0.0))
    if not populated:
        return {}
    offered = max(1.0, totals["offered"])
    out = dict(totals)
    out["goodput"] = totals["completed_in_slo"] / offered
    out["retry_amplification"] = totals["attempts"] / offered
    out["slo_violation_rate"] = 1.0 - out["goodput"]
    out["recovery_ms_max"] = recovery_max
    return out


# ---------------------------------------------------------------------------
# Epoch checkpoint/resume.
# ---------------------------------------------------------------------------
#: Bumped whenever the checkpoint payload shape changes; a mismatch makes
#: the loader fall back to a cold run instead of guessing.
CHECKPOINT_FORMAT = 1

#: Subdirectory of the result-cache root where checkpoints live.
CHECKPOINT_SUBDIR = "checkpoints"


def cluster_run_key(system, sim, cfg, batch_jobs) -> str:
    """Content address of one cluster-scale run configuration.

    Everything that determines the run's output participates — the full
    serialized system and simulation configs, the cluster-scale config
    (fault plan included), the batch-job roster, and the package version —
    so a checkpoint can never be resumed into a different experiment.
    """
    from repro.core.serialize import to_dict

    payload = {
        "system": to_dict(system),
        "simulation": to_dict(sim),
        "cluster_scale": cfg.to_dict(),
        "batch_jobs": [dataclasses.asdict(job) for job in batch_jobs],
        "version": repro.__version__,
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:16]


def _entry_stamp(entry: dict) -> str:
    """sha256 over the canonical JSON of everything except the stamp."""
    body = {key: value for key, value in entry.items() if key != "sha256"}
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


@dataclass
class CheckpointStore:
    """Digest-stamped per-epoch checkpoints for one cluster-scale run.

    One JSON file per completed epoch under ``<root>/<run_key>/``,
    written atomically (temp + rename) at the epoch barrier.  Each file
    carries the epoch's full serialized result, the exact post-barrier
    state (harvest allocation, routing carryover, health cool-downs), and
    a sha256 stamp over its own content.  :meth:`load` replays the longest
    valid consecutive prefix; the first missing/corrupt/mismatched file
    ends the replay with a warning — a damaged checkpoint can downgrade a
    resume to a (correct) colder start, never corrupt its results.
    """

    root: str
    run_key: str
    version: str = field(default_factory=lambda: repro.__version__)
    #: Warning sink (e.g. the runner's ``progress`` callable).
    warn: Optional[Callable[[str], None]] = None

    @property
    def run_dir(self) -> str:
        return os.path.join(self.root, self.run_key)

    def path(self, epoch: int) -> str:
        return os.path.join(self.run_dir, f"epoch_{epoch:04d}.json")

    def _warn(self, message: str) -> None:
        if self.warn is not None:
            self.warn(f"checkpoint: {message}")

    def save(self, epoch: int, epoch_result: dict, state: dict) -> str:
        """Persist one epoch's result + barrier state; returns the path."""
        entry = {
            "format": CHECKPOINT_FORMAT,
            "version": self.version,
            "run_key": self.run_key,
            "epoch": epoch,
            "epoch_result": epoch_result,
            "state": state,
        }
        entry["sha256"] = _entry_stamp(entry)
        path = self.path(epoch)
        with atomic_open(path) as fh:
            json.dump(entry, fh)
        return path

    def load_epoch(self, epoch: int) -> Optional[dict]:
        """One validated checkpoint entry, or None (with a warning on
        anything other than a clean miss)."""
        path = self.path(epoch)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except (ValueError, OSError) as exc:
            self._warn(f"{path} is unreadable ({exc}); ignoring it")
            return None
        if not isinstance(entry, dict) or "sha256" not in entry:
            self._warn(f"{path} is not a checkpoint entry; ignoring it")
            return None
        if entry.get("format") != CHECKPOINT_FORMAT:
            self._warn(
                f"{path} has checkpoint format {entry.get('format')!r}, "
                f"expected {CHECKPOINT_FORMAT}; ignoring it"
            )
            return None
        if entry.get("version") != self.version:
            self._warn(
                f"{path} was written by version {entry.get('version')!r}, "
                f"this is {self.version}; ignoring it"
            )
            return None
        if entry.get("run_key") != self.run_key:
            self._warn(f"{path} belongs to a different run; ignoring it")
            return None
        if entry.get("epoch") != epoch:
            self._warn(f"{path} records epoch {entry.get('epoch')!r}; "
                       f"expected {epoch}; ignoring it")
            return None
        if _entry_stamp(entry) != entry["sha256"]:
            self._warn(f"{path} failed its digest check (truncated or "
                       "corrupt); ignoring it")
            return None
        return entry

    def load(self, max_epochs: int) -> Tuple[List[dict], Optional[dict]]:
        """The longest valid consecutive prefix of checkpoints.

        Returns ``(entries, state)`` where ``entries`` are the validated
        checkpoint dicts for epochs ``0..len(entries)-1`` and ``state`` is
        the barrier state to resume from (None when nothing was restored).
        """
        entries: List[dict] = []
        for epoch in range(max_epochs):
            entry = self.load_epoch(epoch)
            if entry is None:
                break
            entries.append(entry)
        state = entries[-1]["state"] if entries else None
        return entries, state
