"""Cluster-scale result containers, deterministic merge, and digests.

A sharded run produces one :class:`~repro.core.metrics.ClusterResult` per
epoch (threading the existing per-server containers through unchanged)
plus the datacenter-layer record: routing statistics, rebalance decisions,
and the harvest allocation that produced each epoch.  The merge is a pure
reduction in (epoch, server) order, so its output — and therefore
:meth:`ClusterScaleResult.digest` — is bit-identical no matter how many
workers computed the shards.  The digest deliberately covers *only*
simulation content (never wall time or worker count); it is the value the
CI ``cluster-smoke`` job compares across ``--workers 1`` and
``--workers 4``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.export import server_result_from_dict, server_result_to_dict
from repro.core.metrics import ClusterResult
from repro.cluster_scale.resilience import aggregate_resilience
from repro.parallel.cache import canonical_json


@dataclass
class EpochResult:
    """One epoch of a cluster-scale run."""

    epoch: int
    #: Root seed this epoch's servers derived their streams from.
    seed: int
    #: Harvest-VM base cores each server ran with this epoch.
    harvest_alloc: List[int]
    #: Per-server load multiplier the routing layer assigned.
    load_scale: List[float]
    #: Routing statistics (None in nominal mode).
    routing: Optional[dict]
    #: Rebalance decision taken at this epoch's closing barrier
    #: (None when rebalancing is off or this is the last epoch).
    rebalance: Optional[dict]
    #: The per-server results, in server order.
    cluster: ClusterResult
    #: Health record from this epoch's barrier: ``{"crashed": [...],
    #: "excluded": [...], "cooldown": [...]}`` — present only on
    #: fault-plan runs (omitted from :meth:`to_dict` when None, which
    #: keeps nominal digests byte-identical to pre-resilience runs).
    health: Optional[dict] = None

    def requests_measured(self) -> int:
        return sum(
            s.counters.get("requests_measured", 0) for s in self.cluster.servers
        )

    def requests_arrived(self) -> int:
        return sum(
            s.counters.get("requests_arrived", 0) for s in self.cluster.servers
        )

    def resilience_summary(self) -> Dict[str, float]:
        """This epoch's cluster-wide degradation metrics (goodput, retry
        amplification, SLO violations, worst-case time-to-recovery),
        reduced from the per-server PR-3 counters.  Empty on nominal runs.

        Computed on demand from the per-server results and never
        serialized — it is a pure reduction, so serializing it would only
        duplicate digest surface.
        """
        return aggregate_resilience(self.cluster.servers)

    def to_dict(self) -> dict:
        data = {
            "epoch": self.epoch,
            "seed": self.seed,
            "harvest_alloc": [int(a) for a in self.harvest_alloc],
            "load_scale": [float(x) for x in self.load_scale],
            "routing": self.routing,
            "rebalance": self.rebalance,
            "system": self.cluster.system,
            "servers": [server_result_to_dict(s) for s in self.cluster.servers],
        }
        if self.health is not None:
            data["health"] = self.health
        return data

    @staticmethod
    def from_dict(data: dict) -> "EpochResult":
        return EpochResult(
            epoch=data["epoch"],
            seed=data["seed"],
            harvest_alloc=list(data["harvest_alloc"]),
            load_scale=list(data["load_scale"]),
            routing=data["routing"],
            rebalance=data["rebalance"],
            cluster=ClusterResult(
                system=data["system"],
                servers=[server_result_from_dict(s) for s in data["servers"]],
            ),
            health=data.get("health"),
        )


@dataclass
class ClusterScaleResult:
    """Everything a sharded cluster-scale run produced."""

    system: str
    servers: int
    epochs: List[EpochResult] = field(default_factory=list)
    #: Wall-clock of the whole run.  Excluded from :meth:`to_dict` and the
    #: digest — timing lives in benchmark records, not in results.
    elapsed_s: float = 0.0
    #: Serialized :class:`~repro.cluster_scale.resilience.ClusterFaultPlan`
    #: of a fault-plan run (None on nominal runs, and then omitted from
    #: :meth:`to_dict` so nominal digests are unchanged).  Embedding the
    #: plan puts every fault parameter inside the digest surface.
    fault_plan: Optional[dict] = None
    #: Epochs restored from checkpoints rather than recomputed.  A fact
    #: about *this process*, not the simulation — excluded from the
    #: digest, which is exactly what lets a resumed run prove itself
    #: bit-identical to an uninterrupted one.
    resumed_epochs: int = 0
    #: Checkpoint run key (set when checkpointing was active).  Excluded
    #: from the digest for the same reason.
    run_key: Optional[str] = None

    # ------------------------------------------------------------------
    # Deterministic reductions (epoch order, then server order).
    # ------------------------------------------------------------------
    def requests_measured(self) -> int:
        return sum(e.requests_measured() for e in self.epochs)

    def requests_arrived(self) -> int:
        return sum(e.requests_arrived() for e in self.epochs)

    def _server_results(self):
        for epoch in self.epochs:
            for server in epoch.cluster.servers:
                yield server

    def avg_p99_ms(self) -> float:
        """Request-weighted mean of per-server average P99s."""
        total = 0.0
        weight = 0
        for server in self._server_results():
            w = server.counters.get("requests_measured", 0)
            if w:
                total += server.avg_p99_ms() * w
                weight += w
        if not weight:
            raise ValueError("no measured requests to aggregate")
        return total / weight

    def avg_p50_ms(self) -> float:
        total = 0.0
        weight = 0
        for server in self._server_results():
            w = server.counters.get("requests_measured", 0)
            if w:
                total += server.avg_p50_ms() * w
                weight += w
        if not weight:
            raise ValueError("no measured requests to aggregate")
        return total / weight

    def avg_busy_cores(self) -> float:
        servers = list(self._server_results())
        if not servers:
            raise ValueError("no servers to aggregate")
        return sum(s.avg_busy_cores for s in servers) / len(servers)

    def batch_units_per_s(self) -> float:
        """Cluster-wide batch throughput: summed over servers, averaged
        over epochs."""
        if not self.epochs:
            raise ValueError("no epochs to aggregate")
        per_epoch = [
            sum(s.batch_units_per_s for s in e.cluster.servers)
            for e in self.epochs
        ]
        return sum(per_epoch) / len(per_epoch)

    def p99_by_service(self) -> Dict[str, float]:
        """Request-weighted per-service P99 across all server-epochs."""
        totals: Dict[str, float] = {}
        weights: Dict[str, int] = {}
        for server in self._server_results():
            w = server.counters.get("requests_measured", 0)
            if not w:
                continue
            for svc, p99 in server.p99_ms.items():
                totals[svc] = totals.get(svc, 0.0) + p99 * w
                weights[svc] = weights.get(svc, 0) + w
        return {svc: totals[svc] / weights[svc] for svc in totals}

    def total_rebalance_moves(self) -> int:
        return sum(
            len(e.rebalance["moves"])
            for e in self.epochs
            if e.rebalance is not None
        )

    def resilience_curve(self) -> List[Dict[str, float]]:
        """Per-epoch degradation metrics in epoch order — the
        goodput/time-to-recovery trajectory of a fault-plan run.  Each
        entry carries the epoch index plus
        :meth:`EpochResult.resilience_summary`; empty list on nominal
        runs (no server carries resilience counters)."""
        curve = []
        for epoch in self.epochs:
            summary = epoch.resilience_summary()
            if summary:
                curve.append({"epoch": epoch.epoch, **summary})
        return curve

    # ------------------------------------------------------------------
    # Serialization + digest.
    # ------------------------------------------------------------------
    def summary_dict(self) -> dict:
        """The headline numbers (digest-stable, human-consumable)."""
        return {
            "requests_measured": self.requests_measured(),
            "requests_arrived": self.requests_arrived(),
            "avg_p99_ms": self.avg_p99_ms(),
            "avg_p50_ms": self.avg_p50_ms(),
            "avg_busy_cores": self.avg_busy_cores(),
            "batch_units_per_s": self.batch_units_per_s(),
            "p99_by_service": self.p99_by_service(),
            "rebalance_moves": self.total_rebalance_moves(),
        }

    def to_dict(self) -> dict:
        """Lossless encoding; excludes wall time, resume provenance, and
        the checkpoint run key by design (see field docs)."""
        data = {
            "system": self.system,
            "servers": self.servers,
            "epochs": [e.to_dict() for e in self.epochs],
            "summary": self.summary_dict(),
        }
        if self.fault_plan is not None:
            data["fault_plan"] = self.fault_plan
        return data

    @staticmethod
    def from_dict(data: dict) -> "ClusterScaleResult":
        return ClusterScaleResult(
            system=data["system"],
            servers=data["servers"],
            epochs=[EpochResult.from_dict(e) for e in data["epochs"]],
            fault_plan=data.get("fault_plan"),
        )

    def digest(self) -> str:
        """sha256 over the canonical JSON of :meth:`to_dict`.

        Two runs of the same configuration must produce the same digest
        regardless of worker count — the sharding determinism contract.
        """
        payload = canonical_json(self.to_dict())
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
