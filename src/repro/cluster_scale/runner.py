"""The sharded cluster-scale run loop.

One run is a sequence of epochs; one epoch is an embarrassingly-parallel
fan-out of per-server simulations over the process pool (the same chunked
:func:`~repro.parallel.runner.execute_payload_chunk` executor the sweep
runner uses), closed by a cluster-wide barrier where the coordinator:

1. merges the epoch's per-server results *in server order*;
2. computes the utilization signal and lets the harvest rebalancer move
   batch capacity between servers (:mod:`repro.cluster_scale.rebalance`);
3. routes the next epoch's requests with the balancing policy's feedback
   (:mod:`repro.cluster_scale.routing`).

Because steps 1-3 are pure functions of (root seed, epoch, merged
results) and every per-server simulation is a pure function of its
serialized config, the whole run is bit-identical for any ``--workers``
value — the same contract the sweep cache enforces, extended across
barriers.

The epoch-0 degenerate case (one epoch, nominal load, no rebalancing)
reproduces the legacy :func:`repro.core.experiment.run_cluster` results
exactly: epoch seed 0 is the identity and the per-server points carry the
same payloads, so even the result cache keys coincide.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster_scale.rebalance import rebalance_harvest
from repro.cluster_scale.result import ClusterScaleResult, EpochResult
from repro.cluster_scale.routing import (
    EpochRouting,
    expected_server_rps,
    route_epoch,
    routing_rng,
    service_mix,
)
from repro.cluster_scale.spec import ClusterScaleConfig
from repro.config import SimulationConfig, SystemConfig
from repro.core.metrics import ClusterResult
from repro.sim.rng import derive_epoch_seed
from repro.workloads.batch import BATCH_JOBS, BatchJobProfile
from repro.workloads.suites import get_suite


def _validate(system: SystemConfig, cfg: ClusterScaleConfig) -> None:
    cluster = system.cluster
    primary = cluster.primary_vms_per_server * cluster.cores_per_primary_vm
    need = primary + cluster.harvest_vms_per_server * cfg.harvest_max_cores
    if need > cluster.cores_per_server:
        raise ValueError(
            f"harvest_max_cores={cfg.harvest_max_cores} needs {need} cores "
            f"but servers have {cluster.cores_per_server}"
        )


def _epoch_points(
    system: SystemConfig,
    sim: SimulationConfig,
    cfg: ClusterScaleConfig,
    epoch: int,
    alloc: Sequence[int],
    load_scale: Sequence[Optional[float]],
    jobs: Sequence[BatchJobProfile],
):
    """One fully-specified SweepPoint per server for this epoch.

    Mirrors :func:`repro.core.experiment._cluster_points` semantics
    (batch job ``i mod len(jobs)``, ``server_index=i``) so the degenerate
    configuration produces byte-identical payloads to the legacy path.
    """
    from repro.parallel.sweep import SweepPoint

    base_cores = system.cluster.harvest_vm_base_cores
    epoch_sim = replace(
        sim,
        horizon_ms=cfg.epoch_ms,
        warmup_ms=cfg.warmup_ms,
        seed=derive_epoch_seed(sim.seed, epoch),
        servers_to_simulate=cfg.servers,
    )
    points = []
    for i in range(cfg.servers):
        point_system = system
        if alloc[i] != base_cores:
            point_system = replace(
                system,
                cluster=replace(
                    system.cluster, harvest_vm_base_cores=int(alloc[i])
                ),
            )
        point_sim = epoch_sim
        if load_scale[i] is not None:
            point_sim = replace(epoch_sim, load_scale=float(load_scale[i]))
        points.append(
            SweepPoint(
                label=f"epoch={epoch}/server={i}",
                system=point_system,
                sim=point_sim,
                batch_job=jobs[i % len(jobs)],
                server_index=i,
            )
        )
    return points


def run_cluster_scale(
    system: SystemConfig,
    sim: Optional[SimulationConfig] = None,
    cfg: Optional[ClusterScaleConfig] = None,
    workers: int = 1,
    cache=None,
    task_timeout: Optional[float] = None,
    batch_jobs: Optional[Sequence[BatchJobProfile]] = None,
    progress=None,
) -> ClusterScaleResult:
    """Run a sharded, epoch-barriered cluster-scale simulation.

    ``workers`` shards each epoch's servers over a process pool via
    :func:`repro.parallel.runner.run_sweep`; results are collected keyed
    by server, so the outcome is bit-identical to ``workers=1``.
    ``cache`` serves previously-computed (server, epoch) points from the
    content-addressed result cache under the usual key contract.
    ``progress`` is an optional callable ``(message: str) -> None``.
    """
    from repro.parallel.runner import run_sweep

    sim = sim or SimulationConfig()
    cfg = cfg or ClusterScaleConfig()
    _validate(system, cfg)
    jobs = list(batch_jobs or BATCH_JOBS)
    cluster = system.cluster
    profiles = get_suite(sim.suite)[: cluster.primary_vms_per_server]
    mix = service_mix(profiles, cluster)
    nominal_rps = expected_server_rps(profiles, cluster) * sim.load_scale
    epoch_s = cfg.epoch_ms / 1e3

    alloc: List[int] = [cluster.harvest_vm_base_cores] * cfg.servers
    carryover = np.zeros(cfg.servers, dtype=float)
    epochs: List[EpochResult] = []
    started = time.monotonic()

    for epoch in range(cfg.epochs):
        requests = cfg.epoch_requests(epoch)
        routing: Optional[EpochRouting] = None
        load_scale: List[Optional[float]]
        if requests is None:
            load_scale = [None] * cfg.servers
        else:
            routing = route_epoch(
                cfg.routing,
                routing_rng(sim.seed, epoch),
                cfg.servers,
                requests,
                mix,
                carryover,
            )
            # Routed share -> per-server load multiplier.  The floor keeps
            # a starved server at a deterministic trickle instead of a
            # zero rate the arrival generator rejects.
            load_scale = [
                max(float(c) / (nominal_rps * epoch_s), 0.01) * sim.load_scale
                for c in routing.counts
            ]

        points = _epoch_points(system, sim, cfg, epoch, alloc, load_scale, jobs)
        if progress is not None:
            progress(
                f"epoch {epoch + 1}/{cfg.epochs}: {cfg.servers} server(s), "
                + (f"{requests} routed request(s)" if requests is not None
                   else "nominal load")
            )
        outcome = run_sweep(
            points, workers=workers, cache=cache, task_timeout=task_timeout
        )
        cluster_result = ClusterResult(
            system=system.name, servers=list(outcome.results.values())
        )

        # --- barrier: merge, rebalance, feed the router -----------------
        utilization = [
            s.avg_busy_cores / cluster.cores_per_server
            for s in cluster_result.servers
        ]
        decision = None
        if cfg.rebalance and epoch + 1 < cfg.epochs:
            decision = rebalance_harvest(
                alloc,
                utilization,
                cluster.cores_per_server,
                cfg.harvest_min_cores,
                cfg.harvest_max_cores,
                cfg.rebalance_threshold,
                cfg.rebalance_max_moves,
            )
        epochs.append(
            EpochResult(
                epoch=epoch,
                seed=derive_epoch_seed(sim.seed, epoch),
                harvest_alloc=list(alloc),
                load_scale=[
                    ls if ls is not None else sim.load_scale
                    for ls in load_scale
                ],
                routing=routing.to_dict() if routing is not None else None,
                rebalance=decision.to_dict() if decision is not None else None,
                cluster=cluster_result,
            )
        )
        if decision is not None:
            alloc = list(decision.alloc)
        # Observed busy core-time (µs) seeds the next epoch's estimated
        # outstanding work, in the same units as per-request cost sums.
        carryover = np.array(
            [u * cluster.cores_per_server * cfg.epoch_ms * 1e3
             for u in utilization],
            dtype=float,
        )

    result = ClusterScaleResult(
        system=system.name, servers=cfg.servers, epochs=epochs
    )
    result.elapsed_s = time.monotonic() - started
    return result
