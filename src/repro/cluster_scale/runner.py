"""The sharded cluster-scale run loop.

One run is a sequence of epochs; one epoch is an embarrassingly-parallel
fan-out of per-server simulations over the process pool (the same chunked
:func:`~repro.parallel.runner.execute_payload_chunk` executor the sweep
runner uses), closed by a cluster-wide barrier where the coordinator:

1. merges the epoch's per-server results *in server order*;
2. computes the utilization signal and lets the harvest rebalancer move
   batch capacity between servers (:mod:`repro.cluster_scale.rebalance`);
3. folds observed crashes into the health tracker so the next epoch's
   routing excludes cooling-down servers
   (:mod:`repro.cluster_scale.resilience`);
4. routes the next epoch's requests with the balancing policy's feedback
   (:mod:`repro.cluster_scale.routing`);
5. optionally persists a digest-stamped checkpoint of the barrier state,
   from which a killed run resumes bit-identically.

Because steps 1-5 are pure functions of (root seed, epoch, merged
results) and every per-server simulation is a pure function of its
serialized config, the whole run is bit-identical for any ``--workers``
value — the same contract the sweep cache enforces, extended across
barriers.  Fault plans keep the contract: a plan expands into per-server
fault schedules *inside* each point's SimulationConfig (so the result
cache keys change with the plan), and health feedback is derived from the
merged epoch results at the barrier, never from worker-local state.

The epoch-0 degenerate case (one epoch, nominal load, no rebalancing)
reproduces the legacy :func:`repro.core.experiment.run_cluster` results
exactly: epoch seed 0 is the identity and the per-server points carry the
same payloads, so even the result cache keys coincide.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster_scale.rebalance import rebalance_harvest
from repro.cluster_scale.resilience import CheckpointStore, HealthTracker
from repro.cluster_scale.result import ClusterScaleResult, EpochResult
from repro.cluster_scale.routing import (
    EpochRouting,
    expected_server_rps,
    route_epoch,
    routing_rng,
    service_mix,
)
from repro.cluster_scale.spec import ClusterScaleConfig
from repro.config import SimulationConfig, SystemConfig
from repro.core.metrics import ClusterResult
from repro.sim.rng import derive_epoch_seed
from repro.workloads.batch import BATCH_JOBS, BatchJobProfile
from repro.workloads.suites import get_suite


def _validate(system: SystemConfig, cfg: ClusterScaleConfig) -> None:
    cluster = system.cluster
    primary = cluster.primary_vms_per_server * cluster.cores_per_primary_vm
    need = primary + cluster.harvest_vms_per_server * cfg.harvest_max_cores
    if need > cluster.cores_per_server:
        raise ValueError(
            f"harvest_max_cores={cfg.harvest_max_cores} needs {need} cores "
            f"but servers have {cluster.cores_per_server}"
        )


def _epoch_points(
    system: SystemConfig,
    sim: SimulationConfig,
    cfg: ClusterScaleConfig,
    epoch: int,
    alloc: Sequence[int],
    load_scale: Sequence[Optional[float]],
    jobs: Sequence[BatchJobProfile],
):
    """One fully-specified SweepPoint per server for this epoch.

    Mirrors :func:`repro.core.experiment._cluster_points` semantics
    (batch job ``i mod len(jobs)``, ``server_index=i``) so the degenerate
    configuration produces byte-identical payloads to the legacy path.

    Fault plans materialize here: the plan's events for (epoch, server)
    become that point's ``SimulationConfig.faults`` and the plan's client
    policy rides on every point, which automatically folds every fault
    parameter into the point's result-cache key.
    """
    from repro.parallel.sweep import SweepPoint

    plan = cfg.fault_plan
    base_cores = system.cluster.harvest_vm_base_cores
    epoch_sim = replace(
        sim,
        horizon_ms=cfg.epoch_ms,
        warmup_ms=cfg.warmup_ms,
        seed=derive_epoch_seed(sim.seed, epoch),
        servers_to_simulate=cfg.servers,
    )
    if plan is not None and plan.client is not None:
        epoch_sim = replace(epoch_sim, client=plan.client)
    points = []
    for i in range(cfg.servers):
        point_system = system
        if alloc[i] != base_cores:
            point_system = replace(
                system,
                cluster=replace(
                    system.cluster, harvest_vm_base_cores=int(alloc[i])
                ),
            )
        point_sim = epoch_sim
        if load_scale[i] is not None:
            point_sim = replace(epoch_sim, load_scale=float(load_scale[i]))
        if plan is not None:
            schedule = plan.schedule_for(epoch, i, cfg.epoch_ms)
            if schedule is not None:
                point_sim = replace(point_sim, faults=schedule)
        points.append(
            SweepPoint(
                label=f"epoch={epoch}/server={i}",
                system=point_system,
                sim=point_sim,
                batch_job=jobs[i % len(jobs)],
                server_index=i,
            )
        )
    return points


def _server_crashed(server) -> bool:
    return server.counters.get("faults_crashes", 0) > 0


def run_cluster_scale(
    system: SystemConfig,
    sim: Optional[SimulationConfig] = None,
    cfg: Optional[ClusterScaleConfig] = None,
    workers: int = 1,
    cache=None,
    task_timeout: Optional[float] = None,
    batch_jobs: Optional[Sequence[BatchJobProfile]] = None,
    progress=None,
    checkpoint: Optional[CheckpointStore] = None,
    resume: bool = True,
) -> ClusterScaleResult:
    """Run a sharded, epoch-barriered cluster-scale simulation.

    ``workers`` shards each epoch's servers over a process pool via
    :func:`repro.parallel.runner.run_sweep`; results are collected keyed
    by server, so the outcome is bit-identical to ``workers=1``.
    ``cache`` serves previously-computed (server, epoch) points from the
    content-addressed result cache under the usual key contract.
    ``progress`` is an optional callable ``(message: str) -> None``.

    ``checkpoint`` persists every epoch barrier to disk; with ``resume``
    (the default) the run first replays the longest valid checkpoint
    prefix and only simulates the remaining epochs.  A resumed run's
    digest is bit-identical to an uninterrupted one because the barrier
    state (harvest allocation, routing carryover, health cool-downs)
    round-trips exactly and all per-epoch randomness derives from
    ``(root seed, epoch)``.
    """
    from repro.parallel.runner import run_sweep

    sim = sim or SimulationConfig()
    cfg = cfg or ClusterScaleConfig()
    _validate(system, cfg)
    jobs = list(batch_jobs or BATCH_JOBS)
    cluster = system.cluster
    profiles = get_suite(sim.suite)[: cluster.primary_vms_per_server]
    mix = service_mix(profiles, cluster)
    nominal_rps = expected_server_rps(profiles, cluster) * sim.load_scale
    epoch_s = cfg.epoch_ms / 1e3

    plan = cfg.fault_plan
    alloc: List[int] = [cluster.harvest_vm_base_cores] * cfg.servers
    carryover = np.zeros(cfg.servers, dtype=float)
    health = (
        HealthTracker(cfg.servers, plan.cooldown_epochs)
        if plan is not None
        else None
    )
    epochs: List[EpochResult] = []
    first_epoch = 0
    started = time.monotonic()

    if checkpoint is not None and checkpoint.warn is None:
        checkpoint.warn = progress
    if checkpoint is not None and resume:
        entries, state = checkpoint.load(cfg.epochs)
        if entries:
            epochs = [
                EpochResult.from_dict(e["epoch_result"]) for e in entries
            ]
            first_epoch = int(state["next_epoch"])
            alloc = [int(a) for a in state["alloc"]]
            carryover = np.array(state["carryover"], dtype=float)
            if health is not None:
                health = HealthTracker(
                    cfg.servers, plan.cooldown_epochs,
                    cooldown=state.get("cooldown"),
                )
            if progress is not None:
                progress(
                    f"resumed from checkpoint: {len(entries)} epoch(s) "
                    + ("restored, nothing left to simulate"
                       if first_epoch >= cfg.epochs
                       else f"restored, continuing at epoch "
                            f"{first_epoch + 1}/{cfg.epochs}")
                )

    for epoch in range(first_epoch, cfg.epochs):
        requests = cfg.epoch_requests(epoch)
        eligible = health.eligible() if health is not None else None
        routing: Optional[EpochRouting] = None
        load_scale: List[Optional[float]]
        if requests is None:
            load_scale = [None] * cfg.servers
        else:
            routing = route_epoch(
                cfg.routing,
                routing_rng(sim.seed, epoch),
                cfg.servers,
                requests,
                mix,
                carryover,
                eligible=eligible,
            )
            # Routed share -> per-server load multiplier.  The floor keeps
            # a starved server at a deterministic trickle instead of a
            # zero rate the arrival generator rejects (excluded servers
            # run at the floor, so their recovery is still simulated).
            load_scale = [
                max(float(c) / (nominal_rps * epoch_s), 0.01) * sim.load_scale
                for c in routing.counts
            ]

        points = _epoch_points(system, sim, cfg, epoch, alloc, load_scale, jobs)
        if progress is not None:
            faulted = (
                sum(1 for i in range(cfg.servers)
                    if plan.events_for(epoch, i))
                if plan is not None
                else 0
            )
            progress(
                f"epoch {epoch + 1}/{cfg.epochs}: {cfg.servers} server(s), "
                + (f"{requests} routed request(s)" if requests is not None
                   else "nominal load")
                + (f", {faulted} server(s) under fault" if faulted else "")
            )
        outcome = run_sweep(
            points, workers=workers, cache=cache, task_timeout=task_timeout
        )
        cluster_result = ClusterResult(
            system=system.name, servers=list(outcome.results.values())
        )

        # --- barrier: merge, rebalance, health, feed the router ---------
        utilization = [
            s.avg_busy_cores / cluster.cores_per_server
            for s in cluster_result.servers
        ]
        decision = None
        if cfg.rebalance and epoch + 1 < cfg.epochs:
            decision = rebalance_harvest(
                alloc,
                utilization,
                cluster.cores_per_server,
                cfg.harvest_min_cores,
                cfg.harvest_max_cores,
                cfg.rebalance_threshold,
                cfg.rebalance_max_moves,
            )
        health_record = None
        if health is not None:
            crashed = [_server_crashed(s) for s in cluster_result.servers]
            health_record = health.barrier(crashed)
        epochs.append(
            EpochResult(
                epoch=epoch,
                seed=derive_epoch_seed(sim.seed, epoch),
                harvest_alloc=list(alloc),
                load_scale=[
                    ls if ls is not None else sim.load_scale
                    for ls in load_scale
                ],
                routing=routing.to_dict() if routing is not None else None,
                rebalance=decision.to_dict() if decision is not None else None,
                cluster=cluster_result,
                health=health_record,
            )
        )
        if decision is not None:
            alloc = list(decision.alloc)
        # Observed busy core-time (µs) seeds the next epoch's estimated
        # outstanding work, in the same units as per-request cost sums.
        carryover = np.array(
            [u * cluster.cores_per_server * cfg.epoch_ms * 1e3
             for u in utilization],
            dtype=float,
        )

        if checkpoint is not None:
            checkpoint.save(
                epoch,
                epochs[-1].to_dict(),
                {
                    "next_epoch": epoch + 1,
                    "alloc": [int(a) for a in alloc],
                    "carryover": [float(c) for c in carryover],
                    "cooldown": (
                        list(health.cooldown) if health is not None else None
                    ),
                },
            )

    result = ClusterScaleResult(
        system=system.name,
        servers=cfg.servers,
        epochs=epochs,
        fault_plan=plan.to_dict() if plan is not None else None,
        resumed_epochs=first_epoch,
        run_key=checkpoint.run_key if checkpoint is not None else None,
    )
    result.elapsed_s = time.monotonic() - started
    return result
