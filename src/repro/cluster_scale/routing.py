"""Deterministic datacenter request routing.

The front-end routes one epoch's requests across the cluster's servers.
Each routed request carries a *service class* drawn from the workload mix
(probability proportional to each service's expected arrival rate) and an
estimated cost (mean CPU plus backend demand), so cost-aware policies
(least-loaded, power-of-two-choices) genuinely balance *work* while
round-robin only balances *counts* — the difference shows up as the
``imbalance`` statistic and, downstream, in per-server load.

Determinism: all randomness comes from a ``numpy`` generator seeded by
``(root seed, epoch)`` via :func:`routing_rng`; sequential policies break
ties by server index.  Worker count never enters: routing happens in the
coordinator before any shard is dispatched.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster_scale.spec import RoutingPolicy
from repro.config import ClusterConfig
from repro.workloads.loadgen import expected_rps
from repro.workloads.microservices import ServiceProfile


def routing_rng(root_seed: int, epoch: int) -> np.random.Generator:
    """The routing stream for one epoch: pure function of (seed, epoch)."""
    seq = np.random.SeedSequence(
        entropy=root_seed,
        spawn_key=(zlib.crc32(b"cluster_scale.routing"), epoch),
    )
    return np.random.default_rng(seq)


@dataclass(frozen=True)
class ServiceMix:
    """The request population the front-end sees: class probabilities and
    per-class mean cost (µs of CPU + backend demand)."""

    names: Tuple[str, ...]
    probabilities: np.ndarray  # sums to 1
    costs_us: np.ndarray

    @property
    def mean_cost_us(self) -> float:
        return float(np.dot(self.probabilities, self.costs_us))


def service_mix(
    profiles: Sequence[ServiceProfile], cluster: ClusterConfig
) -> ServiceMix:
    """Class mix implied by the per-service expected arrival rates."""
    rates = np.array(
        [expected_rps(p, cluster.cores_per_primary_vm) for p in profiles],
        dtype=float,
    )
    costs = np.array(
        [p.mean_exec_us + p.blocking_calls * p.io_us for p in profiles],
        dtype=float,
    )
    return ServiceMix(
        names=tuple(p.name for p in profiles),
        probabilities=rates / rates.sum(),
        costs_us=costs,
    )


def expected_server_rps(
    profiles: Sequence[ServiceProfile], cluster: ClusterConfig
) -> float:
    """Expected arrivals/s of one server at ``load_scale = 1``."""
    return sum(expected_rps(p, cluster.cores_per_primary_vm) for p in profiles)


@dataclass
class EpochRouting:
    """Where one epoch's requests went."""

    policy: RoutingPolicy
    #: Requests assigned to each server.
    counts: np.ndarray
    #: Estimated work (µs) assigned to each server.
    cost_us: np.ndarray
    #: max/mean of per-server assigned cost — 1.0 is a perfect balance.
    imbalance: float
    #: Servers health feedback excluded from this epoch's routing.
    #: Empty on nominal runs — and then omitted from :meth:`to_dict`, so
    #: pre-resilience digests are preserved byte for byte.
    excluded: List[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        data = {
            "policy": self.policy.value,
            "counts": [int(c) for c in self.counts],
            "cost_us": [round(float(c), 3) for c in self.cost_us],
            "imbalance": round(float(self.imbalance), 6),
        }
        if self.excluded:
            data["excluded"] = [int(i) for i in self.excluded]
        return data


def route_epoch(
    policy: RoutingPolicy,
    rng: np.random.Generator,
    num_servers: int,
    num_requests: int,
    mix: ServiceMix,
    carryover_us: np.ndarray,
    eligible: Optional[Sequence[bool]] = None,
) -> EpochRouting:
    """Assign one epoch's requests to servers under ``policy``.

    ``carryover_us`` seeds each server's estimated outstanding work with
    the previous epoch's measured pressure (zeros for epoch 0), so the
    balancing policies route *around* servers that ended the last epoch
    hot — the feedback loop exchanged at the shard barrier.

    ``eligible`` is the health mask from the same barrier: ``False``
    entries (servers cooling down after a crash) receive no requests.
    ``None`` — or a mask with no ``False`` entry, or one excluding
    *everything* — routes over all servers with draws identical to the
    pre-resilience code, so nominal runs are bit-for-bit unchanged.
    """
    if num_requests < 0:
        raise ValueError(f"num_requests must be non-negative, got {num_requests}")
    if eligible is None:
        mask = np.ones(num_servers, dtype=bool)
    else:
        mask = np.asarray(eligible, dtype=bool)
        if mask.shape != (num_servers,):
            raise ValueError(
                f"eligible mask has shape {mask.shape}, expected "
                f"({num_servers},)"
            )
        if not mask.any():
            mask = np.ones(num_servers, dtype=bool)
    # The routable sub-cluster.  When every server is eligible this is
    # arange(num_servers) and every draw below matches the unmasked code.
    idx_map = np.flatnonzero(mask)
    n_eligible = int(idx_map.size)
    excluded = [int(i) for i in np.flatnonzero(~mask)]

    classes = rng.integers(0, len(mix.names), size=0)  # placeholder dtype
    if num_requests:
        classes = rng.choice(
            len(mix.names), size=num_requests, p=mix.probabilities
        )
    costs = mix.costs_us[classes] if num_requests else np.zeros(0)

    counts = np.zeros(num_servers, dtype=np.int64)
    assigned = np.zeros(num_servers, dtype=float)

    if policy is RoutingPolicy.ROUND_ROBIN:
        if num_requests:
            idx = idx_map[np.arange(num_requests) % n_eligible]
            counts = np.bincount(idx, minlength=num_servers).astype(np.int64)
            assigned = np.bincount(idx, weights=costs, minlength=num_servers)
    elif policy is RoutingPolicy.LEAST_LOADED:
        heap: List[Tuple[float, int]] = [
            (float(carryover_us[i]), int(i)) for i in idx_map
        ]
        heapq.heapify(heap)
        for cost in costs:
            load, i = heapq.heappop(heap)
            counts[i] += 1
            assigned[i] += cost
            heapq.heappush(heap, (load + float(cost), i))
    elif policy is RoutingPolicy.POWER_OF_TWO:
        load = carryover_us.astype(float).copy()
        if num_requests:
            cand = rng.integers(0, n_eligible, size=(num_requests, 2))
            for k in range(num_requests):
                a = int(idx_map[cand[k, 0]])
                b = int(idx_map[cand[k, 1]])
                # Less-loaded candidate wins; ties to the lower index.
                if (load[b], b) < (load[a], a):
                    a = b
                counts[a] += 1
                cost = float(costs[k])
                assigned[a] += cost
                load[a] += cost
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown routing policy {policy!r}")

    total = float(assigned.sum())
    mean = total / n_eligible if n_eligible else 0.0
    imbalance = float(assigned.max() / mean) if mean > 0 else 1.0
    return EpochRouting(
        policy=policy, counts=counts, cost_us=assigned, imbalance=imbalance,
        excluded=excluded,
    )
