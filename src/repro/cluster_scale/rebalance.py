"""Epoch-barrier inter-server harvest rebalancing.

Reclaimer-style cluster allocation (arXiv 2304.07941) framed for this
simulator: the datacenter controls *where batch capacity lives* by moving
Harvest-VM base cores between servers at epoch boundaries.  A server that
ended the epoch hot (high core utilization) sheds a batch core — its
Primary VMs stop competing with batch work for DRAM bandwidth and LLC —
while a cold server picks it up, so cluster-wide batch throughput is
preserved instead of being throttled everywhere.

The algorithm is deliberately simple and *deterministic*: a greedy
hottest-to-coldest pairing over the epoch's merged utilization signal,
integer core moves, ties broken by server index, bounded per epoch.  It
runs in the coordinator on barrier-merged results, so worker count and
shard layout cannot perturb it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class RebalanceDecision:
    """One epoch barrier's outcome."""

    #: (source server, destination server) per moved core.
    moves: List[Tuple[int, int]]
    #: Post-move allocation of harvest base cores per server.
    alloc: List[int]

    def to_dict(self) -> dict:
        return {
            "moves": [[int(a), int(b)] for a, b in self.moves],
            "alloc": [int(a) for a in self.alloc],
        }


def rebalance_harvest(
    alloc: Sequence[int],
    utilization: Sequence[float],
    cores_per_server: int,
    min_cores: int,
    max_cores: int,
    threshold: float,
    max_moves: int,
) -> RebalanceDecision:
    """Move harvest base cores from hot servers to cold ones.

    ``utilization`` is the epoch's measured busy-core fraction per server.
    While the gap between the hottest donor (``alloc > min_cores``) and the
    coldest receiver (``alloc < max_cores``) exceeds ``threshold``, one
    core moves and the signal is adjusted by one core's worth
    (``1 / cores_per_server``) so repeated moves converge instead of
    ping-ponging.  Total allocated cores are conserved.
    """
    if len(alloc) != len(utilization):
        raise ValueError(
            f"alloc ({len(alloc)}) and utilization ({len(utilization)}) "
            "must have one entry per server"
        )
    new_alloc = [int(a) for a in alloc]
    signal = [float(u) for u in utilization]
    moves: List[Tuple[int, int]] = []
    step = 1.0 / cores_per_server
    for _ in range(max_moves):
        donor = -1
        receiver = -1
        for i in range(len(new_alloc)):
            if new_alloc[i] > min_cores and (
                donor < 0 or signal[i] > signal[donor]
            ):
                donor = i
            if new_alloc[i] < max_cores and (
                receiver < 0 or signal[i] < signal[receiver]
            ):
                receiver = i
        if donor < 0 or receiver < 0 or donor == receiver:
            break
        if signal[donor] - signal[receiver] <= threshold:
            break
        new_alloc[donor] -= 1
        new_alloc[receiver] += 1
        signal[donor] -= step
        signal[receiver] += step
        moves.append((donor, receiver))
    return RebalanceDecision(moves=moves, alloc=new_alloc)
