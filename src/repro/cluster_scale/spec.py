"""Cluster-scale run description: sharding, routing, and rebalancing knobs.

A :class:`ClusterScaleConfig` describes the *datacenter layer* of a run —
how many servers, how many requests the front-end routes, how time is cut
into epochs, which load-balancing policy assigns requests to servers, and
how the inter-server harvest rebalancer may move batch capacity around.
Everything below the datacenter layer (the per-server microarchitectural
simulation) keeps coming from the usual
:class:`~repro.config.SystemConfig` / :class:`~repro.config.SimulationConfig`
pair.

Determinism contract
--------------------

Every field here feeds a *pure* function of the root seed: routing draws
come from a dedicated ``SeedSequence`` keyed by ``(root seed, epoch)``,
rebalancing is a deterministic integer algorithm over the epoch's merged
results, and per-server workload randomness derives from
``(epoch seed, server_index)`` exactly as the legacy single-epoch path
does.  Worker count, shard layout, and completion order never enter any
of those functions — which is what makes a 256-server run bit-identical
at ``--workers 1`` and ``--workers 16``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.cluster_scale.resilience import ClusterFaultPlan


class RoutingPolicy(Enum):
    """Datacenter front-end request-routing policies.

    ``ROUND_ROBIN``  — requests to server ``(i + offset) mod N``; ignores
                       per-request cost, so heavy requests can clump.
    ``LEAST_LOADED`` — each request to the server with the smallest
                       estimated outstanding work (ties to the lowest
                       index); the omniscient baseline.
    ``POWER_OF_TWO`` — two candidate servers drawn per request; the less
                       loaded one wins (Mitzenmacher's power of two
                       choices) — near-least-loaded quality at O(1) state.
    """

    ROUND_ROBIN = "round-robin"
    LEAST_LOADED = "least-loaded"
    POWER_OF_TWO = "p2c"


ROUTING_POLICY_NAMES = tuple(p.value for p in RoutingPolicy)


@dataclass(frozen=True)
class ClusterScaleConfig:
    """Datacenter-layer knobs of a sharded cluster-scale run."""

    #: Servers in the simulated cluster (each runs the full per-server
    #: microarchitectural model).
    servers: int = 16
    #: Total requests the front-end routes across the run, split evenly
    #: over epochs (remainder to the earliest).  ``None`` = nominal mode:
    #: every server runs at the base ``SimulationConfig.load_scale``
    #: (routing statistics are still reported, but uniform).
    requests: Optional[int] = None
    #: Simulation rounds separated by cluster-wide barriers.  Routing
    #: feedback and harvest rebalancing are exchanged at epoch boundaries.
    epochs: int = 1
    #: Simulated horizon of one epoch (ms).
    epoch_ms: float = 100.0
    #: Warmup prefix of each epoch excluded from latency statistics (ms).
    warmup_ms: float = 10.0
    routing: RoutingPolicy = RoutingPolicy.ROUND_ROBIN
    #: Move harvest-VM base cores between servers at epoch barriers.
    rebalance: bool = True
    #: Minimum utilization gap (fraction of a server's cores) between the
    #: hottest and coldest server before a core moves.
    rebalance_threshold: float = 0.05
    #: Cap on cores moved per epoch barrier.
    rebalance_max_moves: int = 8
    #: Bounds on any server's harvest-VM base cores.  The upper bound must
    #: respect the server's core budget (validated when points are built).
    harvest_min_cores: int = 1
    harvest_max_cores: int = 4
    #: Cluster-dimension fault schedule (see
    #: :mod:`repro.cluster_scale.resilience`).  ``None`` = nominal run;
    #: nominal runs serialize exactly as they did before fault plans
    #: existed, so their digests and cache keys are unchanged.
    fault_plan: Optional[ClusterFaultPlan] = None

    def __post_init__(self) -> None:
        if self.servers <= 0:
            raise ValueError(f"servers must be positive, got {self.servers}")
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.requests is not None and self.requests <= 0:
            raise ValueError(f"requests must be positive, got {self.requests}")
        if self.epoch_ms <= 0:
            raise ValueError(f"epoch_ms must be positive, got {self.epoch_ms}")
        if not 0 <= self.warmup_ms < self.epoch_ms:
            raise ValueError(
                f"warmup_ms must be in [0, epoch_ms), got {self.warmup_ms}"
            )
        if self.rebalance_max_moves < 0:
            raise ValueError("rebalance_max_moves must be non-negative")
        if not 0 < self.harvest_min_cores <= self.harvest_max_cores:
            raise ValueError(
                "need 0 < harvest_min_cores <= harvest_max_cores, got "
                f"[{self.harvest_min_cores}, {self.harvest_max_cores}]"
            )
        if self.fault_plan is not None:
            if not isinstance(self.fault_plan, ClusterFaultPlan):
                raise TypeError(
                    f"fault_plan must be a ClusterFaultPlan, got "
                    f"{self.fault_plan!r}"
                )
            for ev in self.fault_plan.events:
                if ev.epoch >= self.epochs:
                    raise ValueError(
                        f"fault event targets epoch {ev.epoch} but the run "
                        f"has only {self.epochs} epoch(s)"
                    )
                bad = [s for s in ev.servers if s >= self.servers]
                if bad:
                    raise ValueError(
                        f"fault event targets server(s) {bad} but the "
                        f"cluster has only {self.servers} server(s)"
                    )

    def to_dict(self) -> dict:
        """Lossless encoding (used by the checkpoint run key)."""
        return {
            "servers": self.servers,
            "requests": self.requests,
            "epochs": self.epochs,
            "epoch_ms": self.epoch_ms,
            "warmup_ms": self.warmup_ms,
            "routing": self.routing.value,
            "rebalance": self.rebalance,
            "rebalance_threshold": self.rebalance_threshold,
            "rebalance_max_moves": self.rebalance_max_moves,
            "harvest_min_cores": self.harvest_min_cores,
            "harvest_max_cores": self.harvest_max_cores,
            "fault_plan": (
                self.fault_plan.to_dict()
                if self.fault_plan is not None
                else None
            ),
        }

    def epoch_requests(self, epoch: int) -> Optional[int]:
        """This epoch's share of :attr:`requests` (even split, remainder
        to the earliest epochs)."""
        if self.requests is None:
            return None
        base, rem = divmod(self.requests, self.epochs)
        return base + (1 if epoch < rem else 0)
