"""Sharded cluster-scale simulation: hundreds of servers, millions of
requests, bit-identical at any worker count.

The paper evaluates 8 servers x 36 cores; this layer goes far past it by
treating the datacenter as one coordinated system (Gan & Delimitrou;
Reclaimer): a deterministic front-end routes requests across servers
(round-robin / least-loaded / power-of-two-choices), servers are sharded
over worker processes through the chunked sweep executor, and harvest
capacity is rebalanced between servers at epoch barriers.

Quick start::

    from repro import SystemKind, SimulationConfig, build_system
    from repro.cluster_scale import ClusterScaleConfig, RoutingPolicy, run_cluster_scale

    result = run_cluster_scale(
        build_system(SystemKind.HARDHARVEST_BLOCK),
        SimulationConfig(accesses_per_segment=6),
        ClusterScaleConfig(servers=32, requests=200_000, epochs=2,
                           routing=RoutingPolicy.POWER_OF_TWO),
        workers=8,
    )
    print(result.summary_dict(), result.digest())

CLI: ``python -m repro cluster --servers 128 --requests 1000000
--workers 8 --routing p2c --epochs 3``.
"""

from repro.cluster_scale.rebalance import RebalanceDecision, rebalance_harvest
from repro.cluster_scale.resilience import (
    CheckpointStore,
    ClusterFaultPlan,
    ClusterFaultSpec,
    HealthTracker,
    aggregate_resilience,
    cluster_plan_names,
    cluster_run_key,
    get_cluster_plan,
)
from repro.cluster_scale.result import ClusterScaleResult, EpochResult
from repro.cluster_scale.routing import (
    EpochRouting,
    ServiceMix,
    expected_server_rps,
    route_epoch,
    routing_rng,
    service_mix,
)
from repro.cluster_scale.runner import run_cluster_scale
from repro.cluster_scale.spec import (
    ROUTING_POLICY_NAMES,
    ClusterScaleConfig,
    RoutingPolicy,
)

__all__ = [
    "CheckpointStore",
    "ClusterFaultPlan",
    "ClusterFaultSpec",
    "ClusterScaleConfig",
    "ClusterScaleResult",
    "EpochResult",
    "EpochRouting",
    "HealthTracker",
    "RebalanceDecision",
    "RoutingPolicy",
    "ROUTING_POLICY_NAMES",
    "ServiceMix",
    "aggregate_resilience",
    "cluster_plan_names",
    "cluster_run_key",
    "expected_server_rps",
    "get_cluster_plan",
    "rebalance_harvest",
    "route_epoch",
    "routing_rng",
    "run_cluster_scale",
    "service_mix",
]
