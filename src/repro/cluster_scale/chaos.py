"""Chaos soak: SIGKILL a fault-plan cluster run mid-flight, resume it,
and prove the recovered digest is bit-identical to an uninterrupted run.

The harness behind ``python -m repro chaos`` and
``benchmarks/chaos_soak.py``:

1. run the configured fault-plan cluster simulation **uninterrupted**,
   in-process, and record its digest and per-epoch goodput/TTR curve;
2. launch the identical run as a ``python -m repro cluster`` subprocess
   with checkpointing on, poll the checkpoint directory, and SIGKILL the
   orchestrator the moment enough epoch barriers have been persisted —
   the most brutal failure a run can suffer (no atexit, no flush);
3. resume from the surviving checkpoints in-process and compare digests.

The two digests being equal at any worker count is the resilience layer's
end-to-end acceptance criterion; CI's ``chaos-smoke`` job gates on the
record this module emits.
"""

from __future__ import annotations

import contextlib
import os
import signal
import subprocess
import sys
import time
from typing import Dict, Optional

import repro
from repro.cluster_scale.resilience import (
    CheckpointStore,
    cluster_run_key,
    get_cluster_plan,
)
from repro.cluster_scale.runner import run_cluster_scale
from repro.cluster_scale.spec import ClusterScaleConfig, RoutingPolicy
from repro.config import SimulationConfig, SystemKind
from repro.core.presets import build_system
from repro.workloads.batch import BATCH_JOBS


def _chaos_configs(
    system_name: str,
    servers: int,
    requests: int,
    epochs: int,
    epoch_ms: float,
    routing: str,
    plan_name: str,
    seed: int,
    accesses: int,
    cooldown: Optional[int] = None,
):
    """The (system, sim, cfg) triple for a chaos run.

    Built to coincide *exactly* with what ``python -m repro cluster``
    derives from the equivalent flags (same warmup rule, same plan
    expansion), so the in-process runs and the killed subprocess share
    one checkpoint run key.
    """
    import dataclasses

    kind = next((k for k in SystemKind if k.value == system_name), None)
    if kind is None:
        raise ValueError(f"unknown system {system_name!r}")
    system = build_system(kind)
    sim = SimulationConfig(
        horizon_ms=epoch_ms,
        warmup_ms=min(epoch_ms / 5, 100.0),
        seed=seed,
        accesses_per_segment=accesses,
        servers_to_simulate=servers,
    )
    plan = get_cluster_plan(plan_name, servers, epochs)
    if cooldown is not None:
        plan = dataclasses.replace(plan, cooldown_epochs=cooldown)
    cfg = ClusterScaleConfig(
        servers=servers,
        requests=requests,
        epochs=epochs,
        epoch_ms=epoch_ms,
        warmup_ms=sim.warmup_ms,
        routing=RoutingPolicy(routing),
        fault_plan=plan,
    )
    return system, sim, cfg


@contextlib.contextmanager
def _graceful_signals(say):
    """Convert SIGTERM/SIGINT into :class:`SystemExit` for the duration.

    The soak owns a victim subprocess and (usually) a temp checkpoint
    directory; a raised SystemExit unwinds through the ``try/finally``
    blocks that kill the victim and remove the directory, where a bare
    signal death would orphan both.  Original handlers are restored on
    exit so the surrounding process (pytest, a shell) is unaffected.
    """

    def _handler(signum, _frame):
        say(f"received {signal.Signals(signum).name}; cleaning up")
        raise SystemExit(128 + signum)

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except ValueError:  # not the main thread: run unguarded
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _count_checkpoints(store: CheckpointStore, epochs: int) -> int:
    """Epoch files present on disk (existence only — validation is the
    resuming loader's job)."""
    n = 0
    for epoch in range(epochs):
        if os.path.exists(store.path(epoch)):
            n += 1
        else:
            break
    return n


def run_chaos_soak(
    system_name: str = "HardHarvest-Block",
    servers: int = 3,
    requests: int = 2400,
    epochs: int = 4,
    epoch_ms: float = 25.0,
    routing: str = "p2c",
    plan_name: str = "crash-storm",
    seed: int = 7,
    accesses: int = 2,
    workers: int = 1,
    checkpoint_root: Optional[str] = None,
    kill_after_epochs: int = 1,
    poll_s: float = 0.05,
    kill_timeout_s: float = 900.0,
    progress=None,
) -> Dict:
    """One full SIGKILL-and-resume soak; returns the benchmark record.

    ``kill_after_epochs`` is how many epoch checkpoints must exist before
    the subprocess is killed.  On a fast machine the subprocess can
    finish before the poller catches it — the record then notes
    ``killed: false`` and the resume degenerates to a full checkpoint
    replay, which still must reproduce the digest.

    SIGTERM/SIGINT during the soak unwind as :class:`SystemExit` (see
    :func:`_graceful_signals`): the victim subprocess is killed and an
    owned temp checkpoint directory is removed on the way out.
    """
    import shutil
    import tempfile

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    owns_root = checkpoint_root is None
    if owns_root:
        checkpoint_root = tempfile.mkdtemp(prefix="repro_chaos_")
    try:
        with _graceful_signals(say):
            return _run_soak(
                system_name, servers, requests, epochs, epoch_ms, routing,
                plan_name, seed, accesses, workers, checkpoint_root,
                kill_after_epochs, poll_s, kill_timeout_s, say,
            )
    finally:
        # However the soak ends — normal return, a raised soak failure,
        # or a signal unwinding — a temp directory never outlives it.
        if owns_root:
            shutil.rmtree(checkpoint_root, ignore_errors=True)


def _run_soak(
    system_name: str,
    servers: int,
    requests: int,
    epochs: int,
    epoch_ms: float,
    routing: str,
    plan_name: str,
    seed: int,
    accesses: int,
    workers: int,
    checkpoint_root: str,
    kill_after_epochs: int,
    poll_s: float,
    kill_timeout_s: float,
    say,
) -> Dict:
    if not 1 <= kill_after_epochs < epochs:
        raise ValueError(
            f"kill_after_epochs must be in [1, {epochs - 1}], got "
            f"{kill_after_epochs}"
        )
    system, sim, cfg = _chaos_configs(
        system_name, servers, requests, epochs, epoch_ms, routing,
        plan_name, seed, accesses,
    )
    run_key = cluster_run_key(system, sim, cfg, list(BATCH_JOBS))

    say(f"uninterrupted reference run ({epochs} epochs, plan {plan_name})")
    t0 = time.monotonic()
    reference = run_cluster_scale(system, sim, cfg, workers=workers)
    reference_wall = time.monotonic() - t0
    reference_digest = reference.digest()

    store = CheckpointStore(root=checkpoint_root, run_key=run_key)

    # The victim: an identical run via the real CLI, checkpointing on.
    src_root = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable, "-m", "repro", "cluster",
        "--system", system_name,
        "--servers", str(servers),
        "--requests", str(requests),
        "--epochs", str(epochs),
        "--horizon-ms", str(epoch_ms),
        "--routing", routing,
        "--fault-plan", plan_name,
        "--seed", str(seed),
        "--accesses", str(accesses),
        "--workers", str(workers),
        "--checkpoint",
        "--checkpoint-dir", checkpoint_root,
        "--no-cache",
    ]
    say(f"launching victim subprocess (SIGKILL after "
        f"{kill_after_epochs} checkpointed epoch(s))")
    t0 = time.monotonic()
    proc = subprocess.Popen(
        cmd, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    killed = False
    try:
        while proc.poll() is None:
            if _count_checkpoints(store, epochs) >= kill_after_epochs:
                proc.kill()  # SIGKILL: no cleanup, no flush
                proc.wait()
                killed = True
                break
            if time.monotonic() - t0 > kill_timeout_s:
                proc.kill()
                proc.wait()
                raise RuntimeError(
                    f"chaos victim produced no checkpoint within "
                    f"{kill_timeout_s}s"
                )
            time.sleep(poll_s)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    victim_wall = time.monotonic() - t0
    checkpoints_on_disk = _count_checkpoints(store, epochs)
    say(f"victim {'killed' if killed else 'finished unkilled'} with "
        f"{checkpoints_on_disk} checkpoint(s) on disk")

    say("resuming from surviving checkpoints")
    t0 = time.monotonic()
    resumed = run_cluster_scale(
        system, sim, cfg, workers=workers,
        checkpoint=CheckpointStore(root=checkpoint_root, run_key=run_key),
        progress=say,
    )
    resume_wall = time.monotonic() - t0
    resumed_digest = resumed.digest()

    curve = [
        {
            "epoch": entry["epoch"],
            "goodput": round(entry["goodput"], 6),
            "retry_amplification": round(entry["retry_amplification"], 6),
            "slo_violation_rate": round(entry["slo_violation_rate"], 6),
            "recovery_ms_max": round(entry["recovery_ms_max"], 3),
            "offered": entry["offered"],
            "failed": entry["failed"],
        }
        for entry in resumed.resilience_curve()
    ]
    return {
        "bench": "chaos_soak",
        "version": repro.__version__,
        "python": sys.version.split()[0],
        "config": {
            "system": system_name,
            "servers": servers,
            "requests": requests,
            "epochs": epochs,
            "epoch_ms": epoch_ms,
            "routing": routing,
            "fault_plan": plan_name,
            "seed": seed,
            "accesses": accesses,
            "workers": workers,
            "kill_after_epochs": kill_after_epochs,
        },
        "run_key": run_key,
        "uninterrupted_digest": reference_digest,
        "resumed_digest": resumed_digest,
        "digests_equal": resumed_digest == reference_digest,
        "killed": killed,
        "resumed_from_epoch": resumed.resumed_epochs,
        "checkpoints_on_disk": checkpoints_on_disk,
        "resilience_curve": curve,
        "walls": {
            "uninterrupted_s": round(reference_wall, 3),
            "victim_s": round(victim_wall, 3),
            "resume_s": round(resume_wall, 3),
        },
    }
