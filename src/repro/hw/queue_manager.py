"""Queue Managers (Section 4.1.2-4.1.5).

A QM owns one VM's subqueue and its VM State Register Set, knows whether its
VM is Primary or Harvest, tracks which of its bound cores are on loan to a
Harvest VM, and holds the VM's HarvestMask register (the per-structure
harvest-region way masks, Section 4.2.1).

The QM is mechanism, not policy: deciding *when* to lend or reclaim cores is
the scheduler's job (:mod:`repro.harvest.hardware`); the QM provides the
queue operations and the bookkeeping those decisions need.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.hw.request_queue import Subqueue
from repro.hw.vm_state import VmStateRegisterSet


class HarvestMaskRegister:
    """The 5-byte HarvestMask: one bit per way for each of the five private
    structures (L1D, L1I, L2, L1 TLB, L2 TLB)."""

    STRUCTURES = ("l1d", "l1i", "l2", "l1_tlb", "l2_tlb")

    def __init__(self) -> None:
        self._masks: Dict[str, int] = {s: 0 for s in self.STRUCTURES}

    def set_mask(self, structure: str, mask: int) -> None:
        if structure not in self._masks:
            raise KeyError(f"unknown structure {structure!r}")
        if mask < 0 or mask >= (1 << 16):
            raise ValueError(f"mask {mask:#x} exceeds 16 ways")
        self._masks[structure] = mask

    def get_mask(self, structure: str) -> int:
        return self._masks[structure]

    @property
    def storage_bytes(self) -> int:
        # The paper budgets 5 bytes total (Section 6.8): one byte-ish of
        # way bits per structure.
        return 5


class QueueManager:
    """One VM's hardware scheduler endpoint."""

    def __init__(
        self,
        qm_id: int,
        vm_id: int,
        is_primary: bool,
        subqueue: Subqueue,
        state_registers: VmStateRegisterSet,
    ):
        self.qm_id = qm_id
        self.vm_id = vm_id
        self.is_primary = is_primary
        self.subqueue = subqueue
        self.state_registers = state_registers
        self.harvest_mask = HarvestMaskRegister()
        #: Core ids logically bound to this VM (MyManager register points here).
        self.bound_cores: Set[int] = set()
        #: Bound cores currently on loan, executing Harvest VM work.
        self.on_loan: Set[int] = set()

    # ------------------------------------------------------------------
    # Core binding
    # ------------------------------------------------------------------
    def bind_core(self, core_id: int) -> None:
        self.bound_cores.add(core_id)

    def unbind_core(self, core_id: int) -> None:
        self.bound_cores.discard(core_id)
        self.on_loan.discard(core_id)

    def lend_core(self, core_id: int) -> None:
        if core_id not in self.bound_cores:
            raise ValueError(f"core {core_id} is not bound to VM {self.vm_id}")
        if core_id in self.on_loan:
            raise ValueError(f"core {core_id} is already on loan")
        self.on_loan.add(core_id)

    def reclaim_core(self, core_id: int) -> None:
        if core_id not in self.on_loan:
            raise ValueError(f"core {core_id} is not on loan from VM {self.vm_id}")
        self.on_loan.discard(core_id)

    # ------------------------------------------------------------------
    # Queue operations (delegate to the subqueue)
    # ------------------------------------------------------------------
    def enqueue(self, request: object) -> bool:
        return self.subqueue.enqueue(request)

    def dequeue(self) -> Optional[object]:
        return self.subqueue.dequeue_ready()

    def has_ready(self) -> bool:
        return self.subqueue.has_ready()

    def mark_blocked(self, request: object) -> None:
        self.subqueue.mark_blocked(request)

    def mark_ready(self, request: object) -> None:
        self.subqueue.mark_ready(request)

    def requeue(self, request: object) -> None:
        self.subqueue.requeue_ready(request)

    def complete(self, request: object) -> None:
        self.subqueue.complete(request)

    def pending(self) -> int:
        return self.subqueue.total_pending()
