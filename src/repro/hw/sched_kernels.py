"""Batched scan kernels for the scheduler fast path.

The request-queue mirrors (``Subqueue._codes``: one status byte per entry,
READY = 0) let the hot dequeue/has-ready/occupancy scans run at C speed
instead of walking Python entry objects:

* shallow queues (the common case) use ``bytearray.find`` — a single
  ``memchr`` per candidate;
* deep queues (software per-core queues under overload) batch the whole
  scan through NumPy: one vectorized compare + ``flatnonzero`` yields
  every READY position at once, and the steering filter then touches only
  those entries.

NumPy is optional: when it is unavailable the helpers fall back to the
``find`` loop, which is still far faster than the object walk.  The
selection between this module and the kept pure-Python reference scans is
``REPRO_SCHED_SLOWPATH`` (see :mod:`repro.sim.engine`), decided at queue
construction time.
"""

from __future__ import annotations

from typing import List

try:  # pragma: no cover - exercised implicitly by every fast-path run
    import numpy as _np
except Exception:  # pragma: no cover - numpy is a hard dep elsewhere
    _np = None

#: Queue depth at which the vectorized scan beats the ``find`` loop.
#: Below this, NumPy's per-call overhead (buffer wrap + two temporaries)
#: costs more than it saves.
NUMPY_SCAN_MIN = 64

#: Status byte the kernels search for (mirror of
#: :data:`repro.hw.request_queue.CODE_READY`; duplicated to avoid a
#: circular import — pinned by a test).
READY_BYTE = 0


def ready_positions(codes: bytearray) -> List[int]:
    """Positions of every READY entry, oldest first.

    Vectorized for deep queues, ``memchr``-stepped otherwise.
    """
    if _np is not None and len(codes) >= NUMPY_SCAN_MIN:
        return _np.flatnonzero(
            _np.frombuffer(codes, dtype=_np.uint8) == READY_BYTE
        ).tolist()
    out: List[int] = []
    find = codes.find
    i = find(READY_BYTE)
    while i >= 0:
        out.append(i)
        i = find(READY_BYTE, i + 1)
    return out


def ready_count_batch(codes: bytearray) -> int:
    """Number of READY entries (vectorized for deep queues).

    The queues maintain this incrementally (``Subqueue._ready_count``);
    this kernel exists for cross-checks and for consumers holding only a
    code mirror.
    """
    if _np is not None and len(codes) >= NUMPY_SCAN_MIN:
        return int((_np.frombuffer(codes, dtype=_np.uint8) == READY_BYTE).sum())
    return codes.count(READY_BYTE)
