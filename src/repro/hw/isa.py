"""The user-level instruction surface of HardHarvest (Section 4.1.8).

Cores talk to the controller through a handful of *user-level
instructions* — no system calls: spin on the Request Subqueue for work,
dequeue a request, mark a request complete, mark it blocked on I/O. The
instructions are "embedded in libraries" and "transparent to application
developers": gRPC's ``CompletionQueue::Next`` and Thrift's
``TServerSocket::listen`` are augmented with the dequeue instruction.

:class:`CoreIsa` models one core's instruction endpoint: each instruction
resolves through the core's ``MyManager`` register to its Queue Manager,
costs one control-tree round trip, and updates the controller state
exactly as the engine's fast path does. :class:`GrpcCompletionQueue` and
:class:`ThriftServerSocket` are the library shims the paper describes,
expressed over the instruction surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.controller import HardHarvestController


@dataclass
class IsaStats:
    """Instruction issue counts and cycles spent at the controller."""

    spins: int = 0
    dequeues: int = 0
    completes: int = 0
    blocks: int = 0
    enqueues: int = 0
    control_ns: int = 0


class CoreIsa:
    """One core's HardHarvest instruction endpoint.

    ``my_manager`` is the core's MyManager register: the VM id whose Queue
    Manager serves this core's instructions (Section 4.1.2).
    """

    def __init__(self, controller: HardHarvestController, core_id: int, my_manager: int):
        self.controller = controller
        self.core_id = core_id
        self.my_manager = my_manager
        self.stats = IsaStats()
        controller.qm_for(my_manager).bind_core(core_id)

    def _charge(self) -> int:
        ns = self.controller.control_latency_ns()
        self.stats.control_ns += ns
        return ns

    # ------------------------------------------------------------------
    # The instructions
    # ------------------------------------------------------------------
    def spin(self) -> bool:
        """SPIN: is there ready work in my subqueue? (non-trapping poll)"""
        self._charge()
        self.stats.spins += 1
        return self.controller.qm_for(self.my_manager).has_ready()

    def dequeue(self) -> Optional[object]:
        """DEQUEUE: pop the oldest ready request of my VM, or None."""
        self._charge()
        self.stats.dequeues += 1
        return self.controller.qm_for(self.my_manager).dequeue()

    def complete(self, request: object) -> None:
        """COMPLETE: inform the QM that ``request`` finished."""
        self._charge()
        self.stats.completes += 1
        self.controller.qm_for(self.my_manager).complete(request)

    def block(self, request: object) -> None:
        """BLOCK: inform the QM that ``request`` stalled on I/O; its entry
        stays in the subqueue (Section 4.1.5)."""
        self._charge()
        self.stats.blocks += 1
        self.controller.qm_for(self.my_manager).mark_blocked(request)

    def enqueue(self, request: object) -> bool:
        """ENQUEUE: deposit a locally-generated request (e.g. a nested
        call) into my VM's subqueue."""
        self._charge()
        self.stats.enqueues += 1
        return self.controller.qm_for(self.my_manager).enqueue(request)

    def set_my_manager(self, vm_id: int) -> None:
        """Rebind the MyManager register (core re-assignment)."""
        self.controller.qm_for(self.my_manager).unbind_core(self.core_id)
        self.controller.qm_for(vm_id).bind_core(self.core_id)
        self.my_manager = vm_id


# ---------------------------------------------------------------------------
# Library shims (Section 4.1.8): the instructions are transparent to the
# application — the RPC library's wait-for-work entry points issue them.
# ---------------------------------------------------------------------------
class GrpcCompletionQueue:
    """``CompletionQueue::Next`` augmented with the dequeue instruction."""

    def __init__(self, isa: CoreIsa):
        self.isa = isa

    def next(self, max_spins: int = 64) -> Optional[object]:
        """Block (bounded here) until a request is available, dequeue it."""
        for _ in range(max_spins):
            if self.isa.spin():
                req = self.isa.dequeue()
                if req is not None:
                    return req
        return None


class ThriftServerSocket:
    """``TServerSocket::listen`` augmented with the dequeue instruction."""

    def __init__(self, isa: CoreIsa):
        self.isa = isa
        self.listening = False

    def listen(self) -> None:
        self.listening = True

    def accept(self) -> Optional[object]:
        if not self.listening:
            raise RuntimeError("socket is not listening")
        if self.isa.spin():
            return self.isa.dequeue()
        return None
