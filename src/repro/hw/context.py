"""Request Context Memory: in-hardware save/restore of process state.

Section 4.1.4/4.1.8: HardHarvest extends the µManycore [76] fast-context-
switch hardware to also swap VM context. The special memory hangs off the
regular NoC; save and restore happen without entering the kernel.

The functional model stores contexts keyed by an id; the cost model exposes
the two operating points the paper quotes: software context switching (µs)
and hardware (tens of ns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class SavedContext:
    """The register state of one in-flight request (opaque payload)."""

    request: object
    vm_id: int
    program_counter: int = 0
    payload: Dict[str, int] = field(default_factory=dict)


class RequestContextMemory:
    """Bounded store of saved request contexts."""

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._slots: Dict[int, SavedContext] = {}
        self._next_id = 0
        self.saves = 0
        self.restores = 0
        self.highwater = 0

    def save(self, context: SavedContext) -> int:
        """Store a context; returns its slot id."""
        if len(self._slots) >= self.capacity:
            raise RuntimeError("Request Context Memory full")
        slot = self._next_id
        self._next_id += 1
        self._slots[slot] = context
        self.saves += 1
        self.highwater = max(self.highwater, len(self._slots))
        return slot

    def restore(self, slot: int) -> SavedContext:
        """Remove and return the context in ``slot``."""
        ctx = self._slots.pop(slot, None)
        if ctx is None:
            raise KeyError(f"no context in slot {slot}")
        self.restores += 1
        return ctx

    def peek(self, slot: int) -> Optional[SavedContext]:
        return self._slots.get(slot)

    @property
    def occupancy(self) -> int:
        return len(self._slots)
