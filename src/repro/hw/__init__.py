"""HardHarvest hardware controller: request queues, QMs, VM state registers,
context memory, on-chip networks, and storage-cost accounting."""

from repro.hw.context import RequestContextMemory, SavedContext
from repro.hw.controller import HardHarvestController
from repro.hw.isa import CoreIsa, GrpcCompletionQueue, ThriftServerSocket
from repro.hw.noc import ControlTree, MeshNetwork
from repro.hw.queue_manager import HarvestMaskRegister, QueueManager
from repro.hw.request_queue import RequestQueue, RequestStatus, Subqueue
from repro.hw.storage_cost import (
    StorageReport,
    compute_storage_report,
    qm_storage_bytes,
    rq_storage_bytes,
    shared_bit_bytes_per_core,
)
from repro.hw.vm_state import NAMED_REGISTERS, VmStateRegisterSet

__all__ = [
    "HardHarvestController",
    "CoreIsa",
    "GrpcCompletionQueue",
    "ThriftServerSocket",
    "QueueManager",
    "HarvestMaskRegister",
    "RequestQueue",
    "Subqueue",
    "RequestStatus",
    "VmStateRegisterSet",
    "NAMED_REGISTERS",
    "RequestContextMemory",
    "SavedContext",
    "MeshNetwork",
    "ControlTree",
    "StorageReport",
    "compute_storage_report",
    "rq_storage_bytes",
    "qm_storage_bytes",
    "shared_bit_bytes_per_core",
]
