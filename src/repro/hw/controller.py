"""The HardHarvest hardware controller (Figure 9).

One per server. Owns the physical Request Queue, a pool of Queue Managers
paired with VM State Register Sets, the Request Context Memory, and the
dedicated control tree. VMs register on creation (getting a QM, a register
set, and RQ chunks proportional to their core count) and deregister on
departure (their chunks return to the remaining subqueues).
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import ControllerConfig
from repro.hw.context import RequestContextMemory
from repro.hw.noc import ControlTree
from repro.hw.queue_manager import QueueManager
from repro.hw.request_queue import RequestQueue
from repro.hw.vm_state import VmStateRegisterSet


class HardHarvestController:
    """Centralized controller module reached over the control tree."""

    def __init__(self, config: ControllerConfig, num_cores: int, freq_ghz: float = 3.0):
        self.config = config
        self.rq = RequestQueue(config.num_chunks, config.entries_per_chunk)
        self.qms: Dict[int, QueueManager] = {}  # vm_id -> QM
        self.context_memory = RequestContextMemory()
        self.control_tree = ControlTree(num_cores, freq_ghz)
        self._next_qm_id = 0
        self._total_bound_cores = 0

    # ------------------------------------------------------------------
    # VM lifecycle
    # ------------------------------------------------------------------
    def register_vm(self, vm_id: int, is_primary: bool, num_cores: int) -> QueueManager:
        """Allocate a QM, register set, and subqueue chunks for a new VM.

        The subqueue gets a share of RQ chunks proportional to the VM's core
        count relative to all bound cores (Section 4.1.2).
        """
        if vm_id in self.qms:
            raise ValueError(f"VM {vm_id} already registered")
        if len(self.qms) >= self.config.num_queue_managers:
            raise RuntimeError(
                f"all {self.config.num_queue_managers} Queue Managers in use"
            )
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        total_cores = self._total_bound_cores + num_cores
        target_chunks = max(
            1, round(self.config.num_chunks * num_cores / total_cores)
        )
        subqueue = self.rq.create_subqueue(vm_id, target_chunks)
        registers = VmStateRegisterSet(
            self.config.vm_state_registers, self.config.register_bytes
        )
        registers.load_for_vm(vm_id)
        qm = QueueManager(self._next_qm_id, vm_id, is_primary, subqueue, registers)
        self._next_qm_id += 1
        self.qms[vm_id] = qm
        self._total_bound_cores = total_cores
        return qm

    def deregister_vm(self, vm_id: int) -> None:
        qm = self.qms.get(vm_id)
        if qm is None:
            raise KeyError(f"VM {vm_id} not registered")
        self.rq.destroy_subqueue(vm_id)
        self._total_bound_cores -= len(qm.bound_cores) or 0
        del self.qms[vm_id]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def qm_for(self, vm_id: int) -> QueueManager:
        qm = self.qms.get(vm_id)
        if qm is None:
            raise KeyError(f"VM {vm_id} has no Queue Manager")
        return qm

    def primary_qms(self) -> List[QueueManager]:
        return [qm for qm in self.qms.values() if qm.is_primary]

    def harvest_qms(self) -> List[QueueManager]:
        return [qm for qm in self.qms.values() if not qm.is_primary]

    # ------------------------------------------------------------------
    # NIC-facing path (Section 4.1.3): deliver a request pointer.
    # ------------------------------------------------------------------
    def deliver(self, vm_id: int, request: object) -> bool:
        """Deposit a request pointer in the VM's subqueue (or overflow).

        Returns True if it landed in the hardware queue."""
        return self.qm_for(vm_id).enqueue(request)

    # ------------------------------------------------------------------
    def control_latency_ns(self) -> int:
        """One core<->controller message over the dedicated tree."""
        return self.control_tree.latency_ns()
