"""VM State Register Sets (Section 4.1.2, Figure 9).

Each Queue Manager is paired with a register set holding the VM state shared
by all threads of a VM: VMCS pointer, CR0/CR3/CR4, GDTR/LDTR/IDTR, plus
spare slots up to the configured 16 registers of 8 bytes each.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Architectural registers the paper names, in canonical order.
NAMED_REGISTERS: Tuple[str, ...] = (
    "VMCS",
    "CR0",
    "CR3",
    "CR4",
    "GDTR",
    "LDTR",
    "IDTR",
)


class VmStateRegisterSet:
    """A fixed-size bank of 8-byte registers for one VM's shared state."""

    def __init__(self, num_registers: int = 16, register_bytes: int = 8):
        if num_registers < len(NAMED_REGISTERS):
            raise ValueError(
                f"need at least {len(NAMED_REGISTERS)} registers, got {num_registers}"
            )
        self.num_registers = num_registers
        self.register_bytes = register_bytes
        self._values: Dict[str, int] = {name: 0 for name in NAMED_REGISTERS}
        self._spares = num_registers - len(NAMED_REGISTERS)

    def write(self, name: str, value: int) -> None:
        if name not in self._values:
            if len(self._values) - len(NAMED_REGISTERS) >= self._spares:
                raise KeyError(f"no spare register slots left for {name!r}")
            self._values[name] = 0
        max_value = (1 << (self.register_bytes * 8)) - 1
        if not 0 <= value <= max_value:
            raise ValueError(f"value {value:#x} exceeds {self.register_bytes}-byte register")
        self._values[name] = value

    def read(self, name: str) -> int:
        if name not in self._values:
            raise KeyError(f"register {name!r} not populated")
        return self._values[name]

    def load_for_vm(self, vm_id: int) -> None:
        """Populate with synthetic-but-distinct state for ``vm_id``.

        The simulator does not execute real ring-0 state, but keeping
        distinct values per VM lets tests verify the right set is restored
        on a context switch."""
        base = (vm_id + 1) << 12
        for i, name in enumerate(NAMED_REGISTERS):
            self.write(name, base + i)

    def snapshot(self) -> Dict[str, int]:
        return dict(self._values)

    @property
    def storage_bytes(self) -> int:
        return self.num_registers * self.register_bytes
