"""Storage, area, and power accounting for the HardHarvest hardware
(Section 6.8).

The paper feeds its bit-level inventory to McPAT and scales to 7 nm using
published scaling equations [74]. McPAT is not available here, so we
reproduce the accounting in two stages:

1. **Bit-exact storage inventory** — identical arithmetic to the paper:
   a 2K-entry RQ at 66 bits/entry plus, per QM/state-register pair,
   16×8 B registers + 24 B RQ-Map + 5 B HarvestMask (paper: 18.9 KB per
   controller), and one Shared bit per TLB/L1D/L2 entry per core.
2. **McPAT-lite area/power** — an analytic SRAM density model at 7 nm with
   a small-array density penalty (tiny register files pay far more area per
   bit than the LLC's dense arrays; McPAT models this via peripheral
   circuitry overheads). The penalty constant is calibrated so the model's
   output for the paper's inventory lands in the regime the paper reports
   (~0.2% area, ~0.2% power); the *inventory* numbers are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ControllerConfig, HierarchyConfig
from repro.sim.units import KB, MB


@dataclass(frozen=True)
class StorageReport:
    """Bit-level storage inventory of one server's HardHarvest additions."""

    rq_bytes: float
    qm_bytes: float
    controller_bytes: float  # rq + qm
    shared_bit_bytes_per_core: float
    shared_bit_bytes_total: float
    total_bytes: float
    area_overhead_fraction: float
    power_overhead_fraction: float


#: 7nm SRAM density for large, dense arrays (mm^2 per MB). High-density
#: 7nm SRAM cells are ~0.027 um^2/bit; with array overheads a large cache
#: macro lands near 0.35 mm^2/MB.
DENSE_SRAM_MM2_PER_MB = 0.35
#: Small arrays (RQ chunks, register sets, per-line metadata bits) pay a
#: large peripheral-circuit overhead per bit; McPAT typically reports 3-6x
#: the dense-array area for KB-scale structures.
SMALL_ARRAY_PENALTY = 4.0
#: Logic area of one Sunny-Cove-class core scaled to 7nm (mm^2), excluding
#: caches which we account separately.
CORE_LOGIC_MM2 = 1.9
#: Power density assumption: SRAM leakage+dynamic scales ~ area for the
#: always-on small structures; we report power ratio = area ratio * 0.85
#: (the controller is idle much of the time).
POWER_TO_AREA_RATIO = 0.85


def rq_storage_bytes(cfg: ControllerConfig) -> float:
    """RQ storage: entries x (status bits + pointer bits)."""
    bits = cfg.total_entries * (cfg.entry_status_bits + cfg.entry_pointer_bits)
    return bits / 8.0


def qm_storage_bytes(cfg: ControllerConfig) -> float:
    """Per-controller QM storage: register sets, RQ-Maps, HarvestMasks.

    RQ-Map: up to ``num_chunks`` entries of (5-bit chunk id + valid bit) =
    24 B for 32 chunks (Section 4.1.2).
    """
    rq_map_bytes = cfg.num_chunks * 6 / 8.0
    per_pair = cfg.vm_state_registers * cfg.register_bytes + rq_map_bytes + 5
    return cfg.num_queue_managers * per_pair


def shared_bit_bytes_per_core(hierarchy: HierarchyConfig) -> float:
    """One Shared bit per entry in the TLBs, L1 D-cache, and L2 cache."""
    entries = (
        hierarchy.l1_tlb.entries
        + hierarchy.l2_tlb.entries
        + hierarchy.l1d.num_lines
        + hierarchy.l2.num_lines
    )
    return entries / 8.0


def compute_storage_report(
    controller: ControllerConfig,
    hierarchy: HierarchyConfig,
    num_cores: int,
) -> StorageReport:
    """Full Section 6.8 accounting for one server."""
    rq = rq_storage_bytes(controller)
    qm = qm_storage_bytes(controller)
    ctrl = rq + qm
    per_core = shared_bit_bytes_per_core(hierarchy)
    shared_total = per_core * num_cores
    added = ctrl + shared_total

    # McPAT-lite chip area: core logic + all SRAM (L1s, L2, LLC) at dense
    # density; added structures at small-array density.
    sram_bytes_per_core = (
        hierarchy.l1d.size_bytes
        + hierarchy.l1i.size_bytes
        + hierarchy.l2.size_bytes
        + hierarchy.llc_per_core.size_bytes
        # TLBs: ~16 B/entry (VPN+PPN+flags).
        + 16 * (hierarchy.l1_tlb.entries + hierarchy.l2_tlb.entries)
    )
    chip_area = num_cores * (
        CORE_LOGIC_MM2 + (sram_bytes_per_core / MB) * DENSE_SRAM_MM2_PER_MB
    )
    added_area = (added / MB) * DENSE_SRAM_MM2_PER_MB * SMALL_ARRAY_PENALTY
    area_frac = added_area / (chip_area + added_area)
    power_frac = area_frac * POWER_TO_AREA_RATIO

    return StorageReport(
        rq_bytes=rq,
        qm_bytes=qm,
        controller_bytes=ctrl,
        shared_bit_bytes_per_core=per_core,
        shared_bit_bytes_total=shared_total,
        total_bytes=added,
        area_overhead_fraction=area_frac,
        power_overhead_fraction=power_frac,
    )
