"""The hardware Request Queue (RQ): chunks, subqueues, RQ-Maps, overflow.

Section 4.1.2: a single physical RQ of 32 chunks × 64 entries is divided
into per-VM logical subqueues. A subqueue owns one or more chunks; its
RQ-Map lists which physical chunks compose it, in logical order. Chunks are
donated from subqueue tails when new VMs arrive (displaced entries spill to
that VM's software In-memory Overflow Subqueue) and returned when VMs leave.

Entries hold a pointer to the request payload in the LLC plus a 2-bit status
(READY / RUNNING / BLOCKED). Blocked requests keep their entry (Section
4.1.5) so the response can mark them ready in place.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.sim.engine import sched_slowpath_enabled


class RequestStatus(Enum):
    """The 2-bit status of an RQ entry (Section 6.8's status bits)."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"


#: Byte encoding of :class:`RequestStatus` for the status-code mirror
#: (``Subqueue._codes``): the scan kernels search raw bytes instead of
#: walking entry objects.  READY must be 0 — ``bytearray.find(0)`` is the
#: oldest-READY search.
CODE_READY, CODE_RUNNING, CODE_BLOCKED = 0, 1, 2


class RqEntry:
    """One RQ entry: a payload pointer and its status bits."""

    __slots__ = ("request", "status")

    def __init__(self, request: object):
        self.request = request
        self.status = RequestStatus.READY


class Subqueue:
    """A VM's logical subqueue: occupies whole chunks, spills to memory.

    The in-hardware part holds at most ``capacity`` entries (chunks ×
    entries/chunk); beyond that, pointers go to the In-memory Overflow
    Subqueue, and are promoted into hardware as entries retire.

    Alongside ``entries`` the subqueue maintains two mirrors that every
    mutation keeps in sync (the structural counterpart of the cache
    model's tag index): ``_codes``, a bytearray of per-entry status codes
    positionally aligned with ``entries``, and ``_ready_count``, the
    number of READY entries.  The fast path (default) answers
    ``has_ready``/``ready_count`` from the counter and finds the oldest
    READY entry with a C-speed byte search; ``REPRO_SCHED_SLOWPATH=1``
    keeps the reference linear scans over the entry objects.  Both paths
    run over the same structures and return identical results.
    """

    def __init__(self, vm_id: int, entries_per_chunk: int):
        self.vm_id = vm_id
        self.entries_per_chunk = entries_per_chunk
        self.rq_map: List[int] = []  # physical chunk ids, logical order
        self.entries: List[RqEntry] = []
        self.overflow: Deque[object] = deque()
        self.overflow_highwater = 0
        self._codes = bytearray()
        self._ready_count = 0
        self._fast = not sched_slowpath_enabled()

    @property
    def capacity(self) -> int:
        return len(self.rq_map) * self.entries_per_chunk

    @property
    def hw_occupancy(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    def enqueue(self, request: object) -> bool:
        """Add a request; returns True if it landed in hardware, False if it
        spilled to the overflow subqueue."""
        if len(self.entries) < self.capacity:
            self.entries.append(RqEntry(request))
            self._codes.append(CODE_READY)
            self._ready_count += 1
            return True
        self.overflow.append(request)
        self.overflow_highwater = max(self.overflow_highwater, len(self.overflow))
        return False

    def _promote_overflow(self) -> None:
        while self.overflow and len(self.entries) < self.capacity:
            self.entries.append(RqEntry(self.overflow.popleft()))
            self._codes.append(CODE_READY)
            self._ready_count += 1

    def dequeue_ready(self) -> Optional[object]:
        """Oldest READY entry, marked RUNNING; None if there is none."""
        if self._fast:
            if not self._ready_count:
                return None
            i = self._codes.find(CODE_READY)
            entry = self.entries[i]
        else:
            # Reference: linear scan over the entry objects.
            i = -1
            for j, entry in enumerate(self.entries):
                if entry.status is RequestStatus.READY:
                    i = j
                    break
            if i < 0:
                return None
            entry = self.entries[i]
        entry.status = RequestStatus.RUNNING
        self._codes[i] = CODE_RUNNING
        self._ready_count -= 1
        return entry.request

    def has_ready(self) -> bool:
        if self._fast:
            return self._ready_count > 0
        return any(e.status is RequestStatus.READY for e in self.entries)

    def ready_count(self) -> int:
        """Number of READY entries in hardware."""
        if self._fast:
            return self._ready_count
        return sum(1 for e in self.entries if e.status is RequestStatus.READY)

    def _find(self, request: object) -> Tuple[int, RqEntry]:
        for i, entry in enumerate(self.entries):
            if entry.request is request:
                return i, entry
        raise KeyError(f"request {request!r} not present in subqueue of VM {self.vm_id}")

    def mark_blocked(self, request: object) -> None:
        """The core informed the QM that this request blocked on I/O.

        The entry stays in the subqueue (Section 4.1.5)."""
        i, entry = self._find(request)
        if entry.status is not RequestStatus.RUNNING:
            raise ValueError(f"cannot block a {entry.status.value} request")
        entry.status = RequestStatus.BLOCKED
        self._codes[i] = CODE_BLOCKED

    def mark_ready(self, request: object) -> None:
        """The NIC received the response for a blocked request."""
        i, entry = self._find(request)
        if entry.status is not RequestStatus.BLOCKED:
            raise ValueError(f"cannot ready a {entry.status.value} request")
        entry.status = RequestStatus.READY
        self._codes[i] = CODE_READY
        self._ready_count += 1

    def requeue_ready(self, request: object) -> None:
        """Return a preempted RUNNING request to READY state (Figure 10b)."""
        i, entry = self._find(request)
        if entry.status is not RequestStatus.RUNNING:
            raise ValueError(f"cannot requeue a {entry.status.value} request")
        entry.status = RequestStatus.READY
        self._codes[i] = CODE_READY
        self._ready_count += 1

    def complete(self, request: object) -> None:
        """Remove a finished request and promote overflow entries."""
        i, entry = self._find(request)
        if entry.status is not RequestStatus.RUNNING:
            raise ValueError(f"cannot complete a {entry.status.value} request")
        del self.entries[i]
        del self._codes[i]
        self._promote_overflow()

    def discard(self, request: object) -> bool:
        """Remove a request in any state (abandoned attempt: timeout, shed,
        hedge loser, crash kill). Returns False if it is not queued here."""
        for i, entry in enumerate(self.entries):
            if entry.request is request:
                if entry.status is RequestStatus.READY:
                    self._ready_count -= 1
                del self.entries[i]
                del self._codes[i]
                self._promote_overflow()
                return True
        try:
            self.overflow.remove(request)
            return True
        except ValueError:
            return False

    def drain(self) -> List[object]:
        """Remove and return every queued request (server crash). The
        hardware loses all RQ state; overflow pointers die with the kernel
        structures that tracked them."""
        drained = [entry.request for entry in self.entries]
        drained.extend(self.overflow)
        self.entries.clear()
        self.overflow.clear()
        self._codes.clear()
        self._ready_count = 0
        return drained

    # ------------------------------------------------------------------
    # Chunk management (RQ-Map operations)
    # ------------------------------------------------------------------
    def grant_chunk(self, chunk_id: int) -> None:
        """Insert a new chunk at the tail of the RQ-Map."""
        if chunk_id in self.rq_map:
            raise ValueError(f"chunk {chunk_id} already mapped to VM {self.vm_id}")
        self.rq_map.append(chunk_id)
        self._promote_overflow()

    def shed_chunk(self) -> int:
        """Donate the tail chunk; spill displaced entries to overflow.

        Entries that no longer fit in the shrunken hardware capacity move to
        the overflow subqueue (newest first stay closest to hardware)."""
        if not self.rq_map:
            raise ValueError(f"VM {self.vm_id} has no chunks to shed")
        chunk = self.rq_map.pop()
        while len(self.entries) > self.capacity:
            displaced = self.entries.pop()
            code = self._codes.pop()
            if displaced.status is not RequestStatus.READY:
                # Running/blocked entries must stay visible to the QM: put
                # the newest READY one to overflow instead.
                self.entries.append(displaced)
                self._codes.append(code)
                ready_idx = None
                for i in range(len(self.entries) - 1, -1, -1):
                    if self.entries[i].status is RequestStatus.READY:
                        ready_idx = i
                        break
                if ready_idx is None:
                    # Nothing evictable; tolerate transient over-capacity.
                    break
                moved = self.entries[ready_idx]
                del self.entries[ready_idx]
                del self._codes[ready_idx]
                self._ready_count -= 1
                self.overflow.appendleft(moved.request)
            else:
                self._ready_count -= 1
                self.overflow.appendleft(displaced.request)
            self.overflow_highwater = max(self.overflow_highwater, len(self.overflow))
        return chunk

    def total_pending(self) -> int:
        """Ready + blocked + running entries plus overflow length."""
        return len(self.entries) + len(self.overflow)

    def occupancy(self) -> Tuple[int, int]:
        """``(in-hardware entries, overflow entries)`` — the telemetry
        probes' gauge pair; splits :meth:`total_pending` so a trace shows
        whether pressure is in the RQ chunks or already spilling."""
        return len(self.entries), len(self.overflow)


class RequestQueue:
    """The physical RQ: a pool of chunks handed out to subqueues."""

    def __init__(self, num_chunks: int, entries_per_chunk: int):
        if num_chunks <= 0 or entries_per_chunk <= 0:
            raise ValueError("num_chunks and entries_per_chunk must be positive")
        self.num_chunks = num_chunks
        self.entries_per_chunk = entries_per_chunk
        self.free_chunks: List[int] = list(range(num_chunks))
        self.subqueues: Dict[int, Subqueue] = {}

    # ------------------------------------------------------------------
    def create_subqueue(self, vm_id: int, target_chunks: int) -> Subqueue:
        """Create a subqueue, taking chunks from the free pool first and
        then from the tails of the largest existing subqueues."""
        if vm_id in self.subqueues:
            raise ValueError(f"VM {vm_id} already has a subqueue")
        if target_chunks <= 0:
            raise ValueError(f"target_chunks must be positive, got {target_chunks}")
        sq = Subqueue(vm_id, self.entries_per_chunk)
        self.subqueues[vm_id] = sq
        granted = 0
        while granted < target_chunks and self.free_chunks:
            sq.grant_chunk(self.free_chunks.pop())
            granted += 1
        while granted < target_chunks:
            donor = max(
                self.subqueues.values(),
                key=lambda s: (len(s.rq_map), -s.vm_id),
            )
            if donor is sq or len(donor.rq_map) <= 1:
                break  # nothing reasonable left to take
            sq.grant_chunk(donor.shed_chunk())
            granted += 1
        if granted == 0:
            del self.subqueues[vm_id]
            raise RuntimeError("no chunks available for new subqueue")
        return sq

    def destroy_subqueue(self, vm_id: int) -> None:
        """VM departs: its chunks go to the tails of remaining subqueues."""
        sq = self.subqueues.pop(vm_id, None)
        if sq is None:
            raise KeyError(f"VM {vm_id} has no subqueue")
        if sq.total_pending():
            raise ValueError(
                f"cannot destroy subqueue of VM {vm_id} with pending requests"
            )
        released = list(sq.rq_map)
        sq.rq_map.clear()
        if not self.subqueues:
            self.free_chunks.extend(released)
            return
        receivers = sorted(self.subqueues.values(), key=lambda s: len(s.rq_map))
        i = 0
        for chunk in released:
            receivers[i % len(receivers)].grant_chunk(chunk)
            i += 1

    # ------------------------------------------------------------------
    def chunk_owner_invariant(self) -> bool:
        """Every chunk owned by exactly one subqueue or the free pool."""
        seen: Set[int] = set(self.free_chunks)
        if len(seen) != len(self.free_chunks):
            return False
        for sq in self.subqueues.values():
            for chunk in sq.rq_map:
                if chunk in seen:
                    return False
                seen.add(chunk)
        return seen == set(range(self.num_chunks))
