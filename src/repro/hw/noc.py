"""On-chip network models.

Two networks (Section 4.1.8): the regular 2D mesh carrying workload traffic
(5 cycles/hop, Table 1) and a thin, latency-optimized *tree* control network
dedicated to the HardHarvest controller so scheduler traffic never competes
with workload traffic.
"""

from __future__ import annotations

import math

from repro.sim.units import cycles_to_ns


class MeshNetwork:
    """A 2D mesh over the server's cores (6x6 for 36 cores)."""

    def __init__(self, num_cores: int, hop_cycles: int, freq_ghz: float):
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.num_cores = num_cores
        self.hop_cycles = hop_cycles
        self.freq_ghz = freq_ghz
        self.side = max(1, int(round(math.sqrt(num_cores))))

    def _coords(self, core: int):
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} outside mesh of {self.num_cores}")
        return divmod(core, self.side)

    def hops(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def latency_ns(self, src: int, dst: int) -> int:
        return cycles_to_ns(self.hops(src, dst) * self.hop_cycles, self.freq_ghz)

    def average_latency_ns(self) -> int:
        """Mean latency between two uniformly random endpoints: 2/3 of the
        side length per dimension."""
        avg_hops = 2 * (self.side - 1) * (self.side + 1) / (3 * self.side)
        return cycles_to_ns(avg_hops * self.hop_cycles, self.freq_ghz)


class ControlTree:
    """The dedicated tree network between cores and the controller.

    Thin links, latency-sensitive: a core-to-controller message crosses
    ``ceil(log2(cores))`` tree levels at one cycle per level.
    """

    def __init__(self, num_cores: int, freq_ghz: float, cycles_per_level: int = 1):
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.num_cores = num_cores
        self.freq_ghz = freq_ghz
        self.cycles_per_level = cycles_per_level
        self.levels = max(1, math.ceil(math.log2(num_cores)))

    def latency_ns(self) -> int:
        return cycles_to_ns(self.levels * self.cycles_per_level, self.freq_ghz)
