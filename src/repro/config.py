"""Configuration dataclasses for the HardHarvest reproduction.

Defaults mirror Table 1 of the paper plus the cost constants quoted in the
text (Sections 1, 3, 4): KVM core reassignment ~5 ms, SmartHarvest-optimized
reassignment in the hundreds of µs, ``wbinvd`` full flush 300–500 µs,
HardHarvest harvest-region flush 1000 cycles, hardware reassignment a few µs
(tens of ns with hardware context switching).

Everything an experiment can vary lives here; the presets in
:mod:`repro.core.presets` compose these into the five evaluated systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

# Re-exported here so the serializer's type registry (which walks this
# module) can round-trip fault/resilience configs embedded in
# SimulationConfig.  spec.py imports nothing from repro.config, so there
# is no cycle.
from repro.faults.spec import (  # noqa: F401 - registry re-export
    ClientPolicy,
    FaultKind,
    FaultSchedule,
    FaultSpec,
)
from repro.sim.units import KB, MB, MS, US
from repro.telemetry.spec import TelemetryConfig  # noqa: F401 - registry re-export


# ---------------------------------------------------------------------------
# Memory hierarchy (Table 1)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one set-associative cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int
    round_trip_cycles: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError(f"{self.name}: sizes and ways must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    def scaled_ways(self, fraction: float) -> "CacheConfig":
        """A copy with the way count scaled by ``fraction`` (sets constant).

        This is the paper's Figure 7 experiment: reduce ways to 75/50/25%
        while keeping the number of sets constant.
        """
        new_ways = max(1, int(round(self.ways * fraction)))
        new_size = new_ways * self.line_bytes * self.num_sets
        return replace(self, ways=new_ways, size_bytes=new_size)


@dataclass(frozen=True)
class TlbConfig:
    """Geometry and latency of one TLB level."""

    name: str
    entries: int
    ways: int
    round_trip_cycles: int
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ValueError(f"{self.name}: entries and ways must be positive")
        if self.entries % self.ways != 0:
            raise ValueError(
                f"{self.name}: entries {self.entries} not divisible by ways {self.ways}"
            )

    @property
    def num_sets(self) -> int:
        return self.entries // self.ways

    def scaled_ways(self, fraction: float) -> "TlbConfig":
        new_ways = max(1, int(round(self.ways * fraction)))
        return replace(self, ways=new_ways, entries=new_ways * self.num_sets)


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory model (replaces DRAMSim2 with a latency/bandwidth model)."""

    access_ns: int = 90
    page_walk_cycles: int = 120
    bandwidth_gbps: float = 102.4


@dataclass(frozen=True)
class HierarchyConfig:
    """Per-core private caches/TLBs plus the per-core LLC slice (Table 1)."""

    freq_ghz: float = 3.0
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 48 * KB, 12, 64, 5)
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 32 * KB, 8, 64, 5)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 512 * KB, 8, 64, 13)
    )
    llc_per_core: CacheConfig = field(
        default_factory=lambda: CacheConfig("LLC", 2 * MB, 16, 64, 36)
    )
    l1_tlb: TlbConfig = field(default_factory=lambda: TlbConfig("L1TLB", 128, 4, 2))
    l2_tlb: TlbConfig = field(default_factory=lambda: TlbConfig("L2TLB", 2048, 8, 12))
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: Model infinite caches/TLBs (everything L1-hits): Figure 7's "Inf" bar.
    infinite: bool = False

    def scaled(self, fraction: float) -> "HierarchyConfig":
        """Scale the ways of every cache and TLB (Figure 7 sweep)."""
        return replace(
            self,
            l1d=self.l1d.scaled_ways(fraction),
            l1i=self.l1i.scaled_ways(fraction),
            l2=self.l2.scaled_ways(fraction),
            llc_per_core=self.llc_per_core.scaled_ways(fraction),
            l1_tlb=self.l1_tlb.scaled_ways(fraction),
            l2_tlb=self.l2_tlb.scaled_ways(fraction),
        )

    def with_llc_mb_per_core(self, mb: float) -> "HierarchyConfig":
        """Set LLC capacity per core (Figure 18 sweep), keeping 16 ways."""
        size = int(mb * MB)
        ways = self.llc_per_core.ways
        line = self.llc_per_core.line_bytes
        # Round size down to a whole number of sets.
        sets = max(1, size // (ways * line))
        return replace(
            self,
            llc_per_core=replace(self.llc_per_core, size_bytes=sets * ways * line),
        )


# ---------------------------------------------------------------------------
# Replacement / partitioning
# ---------------------------------------------------------------------------
class ReplacementKind(Enum):
    """Cache/TLB replacement policies evaluated in Figure 14."""

    LRU = "lru"
    RRIP = "rrip"
    HARDHARVEST = "hardharvest"  # the paper's Algorithm 1


@dataclass(frozen=True)
class PartitionConfig:
    """Way-partitioning of private structures (Section 4.2)."""

    enabled: bool = False
    #: Fraction of ways in the Harvest region (paper default: 50%).
    harvest_fraction: float = 0.5
    #: Eviction-candidate window M as a fraction of ways (paper: 75%).
    eviction_candidates_fraction: float = 0.75
    replacement: ReplacementKind = ReplacementKind.LRU

    def __post_init__(self) -> None:
        if not 0.0 < self.harvest_fraction < 1.0 and self.enabled:
            raise ValueError(
                f"harvest_fraction must be in (0,1), got {self.harvest_fraction}"
            )
        if not 0.0 < self.eviction_candidates_fraction <= 1.0:
            raise ValueError(
                "eviction_candidates_fraction must be in (0,1], got "
                f"{self.eviction_candidates_fraction}"
            )


# ---------------------------------------------------------------------------
# Harvesting policy costs
# ---------------------------------------------------------------------------
class HarvestTrigger(Enum):
    """When may a Primary VM core be stolen?"""

    NEVER = "never"  # NoHarvest
    ON_TERMINATION = "term"  # only when a request completes
    ON_BLOCK = "block"  # also when a request blocks on I/O


class FlushScope(Enum):
    """What is flushed/invalidated on a cross-VM core transition?"""

    NONE = "none"  # insecure; used only for motivational experiments
    FULL = "full"  # wbinvd-style: all private caches and TLBs
    HARVEST_REGION = "region"  # only the harvest ways (HardHarvest)


@dataclass(frozen=True)
class SoftwareCosts:
    """Software core-reassignment costs (Section 3 measurements)."""

    #: Hypervisor detach+attach cost (KVM: ~2.5 ms; SmartHarvest: ~150 µs).
    detach_attach_ns: int = int(2.5 * MS)
    #: Loading the new VM's context (KVM: ~2.5 ms; optimized: ~100 µs).
    context_switch_ns: int = int(2.5 * MS)
    #: Scheduling/polling delay before an idle core notices new work (mean
    #: of an exponential): OS wakeup + polling discovery under load.
    dispatch_delay_ns: int = 60 * US
    #: Software (memory-mapped) queue enqueue+dequeue overhead per request.
    queue_access_ns: int = 2 * US
    #: Software request-to-request context switch on the same core.
    request_switch_ns: int = 5 * US
    #: Mean delay before the user-space agent *notices* that a Primary VM
    #: needs a loaned core back (queue sampling granularity). HardHarvest's
    #: QM interrupt eliminates this entirely (Section 4.1.6: a software
    #: scheduler requires cores to poll memory locations).
    reclaim_detect_ns: int = 4 * MS
    #: OS load-balancing latency for an idle core to steal a request that
    #: was steered to a different core's queue.
    rebalance_ns: int = 30 * US
    #: How long after a core is harvested the software stack re-steers new
    #: arrivals away from it (RSS indirection update / guest scheduler
    #: migration). Arrivals inside this window still land on the loaned
    #: core's queue and must wait for a buffer core or a reclaim.
    resteer_ns: int = 8 * MS

    @staticmethod
    def kvm() -> "SoftwareCosts":
        return SoftwareCosts()

    @staticmethod
    def optimized() -> "SoftwareCosts":
        """SmartHarvest-optimized costs: reassignment in the 100s of µs."""
        return SoftwareCosts(
            detach_attach_ns=150 * US,
            context_switch_ns=100 * US,
            dispatch_delay_ns=60 * US,
            queue_access_ns=2 * US,
            request_switch_ns=5 * US,
            reclaim_detect_ns=4 * MS,
            rebalance_ns=30 * US,
            resteer_ns=8 * MS,
        )


@dataclass(frozen=True)
class HardwareCosts:
    """HardHarvest hardware-path costs (Section 4.1)."""

    #: Core reassignment via QMs without hardware context switching: a few µs.
    reassign_ns: int = 3 * US
    #: Reassignment with the Request Context Memory: a few tens of ns.
    reassign_hw_ctx_ns: int = 50
    #: Dequeue instruction + controller round trip over the control tree.
    queue_access_ns: int = 100
    #: QM-to-core interrupt delivery on reclamation.
    notify_ns: int = 40


@dataclass(frozen=True)
class FlushCosts:
    """Cache/TLB flush+invalidate and cold-restart costs (Section 3)."""

    #: wbinvd-style full private flush; paper: 300-500 µs. We take the middle
    #: and include the fence the paper adds for safety in simulation.
    full_flush_ns: int = 400 * US
    #: Efficient harvest-region flush (Table 1): 1000 cycles at 3 GHz.
    region_flush_cycles: int = 1000
    #: Whether the region flush happens off the critical path (background)
    #: when a Primary VM reclaims a core (Section 4.2.1).
    background_region_flush: bool = True


@dataclass(frozen=True)
class SmartHarvestConfig:
    """Prediction and safety-buffer behaviour of the software baseline [88]."""

    #: EWMA smoothing for per-VM load prediction.
    ewma_alpha: float = 0.3
    #: Idle cores kept on stand-by per server (the "emergency buffer").
    emergency_buffer_cores: int = 2
    #: Attaching a pre-flushed buffer core to a needy Primary VM: the fast
    #: path SmartHarvest keeps the buffer for (100s of µs, no flush since
    #: buffer cores are scrubbed while idle).
    buffer_attach_ns: int = 100 * US
    #: Period of the user-space monitoring agent. Tens of milliseconds in
    #: SmartHarvest-class systems — far coarser than microservice idle gaps,
    #: which is exactly why software predictions go stale at burst onsets.
    monitor_period_ns: int = 15 * MS
    #: Minimum time a core must have been idle before the software agent
    #: will lend it. Zero reproduces SmartHarvest-style eager stealing on
    #: termination/blocking (the paper measures 11-36 reassignments/s even
    #: at modest loads); the lend-fast/reclaim-slow asymmetry is what
    #: amplifies software tails during bursts.
    min_idle_ns: int = 0


# ---------------------------------------------------------------------------
# Optimization flags (Figures 12/13/15 ablation axes)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OptimizationFlags:
    """Individual HardHarvest mechanisms that can be toggled for ablations.

    ``sched``    — in-hardware request scheduler (instant notification).
    ``queue``    — dedicated SRAM request queues (vs memory-mapped).
    ``ctxtsw``   — in-hardware context switching (Request Context Memory).
    ``part``     — cache/TLB way partitioning (harvest region flush only).
    ``flush``    — efficient hardware flush, off the critical path.
    ``repl``     — the shared/private-aware replacement policy (Algorithm 1).
    """

    sched: bool = False
    queue: bool = False
    ctxtsw: bool = False
    part: bool = False
    flush: bool = False
    repl: bool = False

    @staticmethod
    def none() -> "OptimizationFlags":
        return OptimizationFlags()

    @staticmethod
    def all() -> "OptimizationFlags":
        return OptimizationFlags(True, True, True, True, True, True)


# ---------------------------------------------------------------------------
# HardHarvest controller geometry (Table 1 / Section 6.8)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ControllerConfig:
    """Hardware controller sizing: RQ chunks, QMs, VM state registers."""

    num_chunks: int = 32
    entries_per_chunk: int = 64
    num_queue_managers: int = 16
    vm_state_registers: int = 16
    register_bytes: int = 8
    #: Request status bits + payload pointer per RQ entry (Section 6.8).
    entry_status_bits: int = 2
    entry_pointer_bits: int = 64

    @property
    def total_entries(self) -> int:
        return self.num_chunks * self.entries_per_chunk


# ---------------------------------------------------------------------------
# Cluster topology (Table 1)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterConfig:
    """Servers, VMs, and network parameters."""

    num_servers: int = 8
    cores_per_server: int = 36
    primary_vms_per_server: int = 8
    cores_per_primary_vm: int = 4
    harvest_vms_per_server: int = 1
    harvest_vm_base_cores: int = 4
    #: Inter-server round trip (backend RPC latency floor): 1 µs.
    inter_server_rt_ns: int = 1 * US
    #: Intra-server 2D-mesh hop latency: 5 cycles.
    mesh_hop_cycles: int = 5

    def __post_init__(self) -> None:
        need = (
            self.primary_vms_per_server * self.cores_per_primary_vm
            + self.harvest_vms_per_server * self.harvest_vm_base_cores
        )
        if need > self.cores_per_server:
            raise ValueError(
                f"VM core demand {need} exceeds server cores {self.cores_per_server}"
            )


# ---------------------------------------------------------------------------
# Top-level system description
# ---------------------------------------------------------------------------
class SystemKind(Enum):
    """The five evaluated architectures (Section 5)."""

    NOHARVEST = "NoHarvest"
    HARVEST_TERM = "Harvest-Term"
    HARVEST_BLOCK = "Harvest-Block"
    HARDHARVEST_TERM = "HardHarvest-Term"
    HARDHARVEST_BLOCK = "HardHarvest-Block"


@dataclass(frozen=True)
class SystemConfig:
    """Everything that defines one simulated architecture.

    Presets for the five named systems (and the ablation points between
    them) are built by :mod:`repro.core.presets`.
    """

    name: str = "NoHarvest"
    trigger: HarvestTrigger = HarvestTrigger.NEVER
    #: True when request scheduling and reassignment go through the
    #: HardHarvest controller rather than the hypervisor.
    hardware_scheduling: bool = False
    flags: OptimizationFlags = field(default_factory=OptimizationFlags.none)
    flush_scope: FlushScope = FlushScope.FULL
    software_costs: SoftwareCosts = field(default_factory=SoftwareCosts.optimized)
    hardware_costs: HardwareCosts = field(default_factory=HardwareCosts)
    flush_costs: FlushCosts = field(default_factory=FlushCosts)
    smartharvest: SmartHarvestConfig = field(default_factory=SmartHarvestConfig)
    partition: PartitionConfig = field(default_factory=PartitionConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    #: Whether the Harvest VM has batch work to run (the motivational
    #: Figure 4/5 experiments use an always-idle Harvest VM).
    batch_active: bool = True
    #: Use the adaptive harvesting trigger (Section 4.1.5 future work):
    #: lend block-idled cores only when the VM's typical blocking duration
    #: is long enough to be worth a lend/reclaim cycle. Requires
    #: hardware scheduling and the ON_BLOCK trigger.
    adaptive_trigger: bool = False


@dataclass(frozen=True)
class SimulationConfig:
    """Run-scale knobs: how long, how much detail, and the seed."""

    seed: int = 2025
    #: Simulated wall-clock horizon: every Primary VM receives its own rate
    #: of arrivals over this window (open-loop, identical across systems).
    horizon_ms: float = 600.0
    #: Arrivals before this time are executed but excluded from latency
    #: statistics (cache/queue warmup).
    warmup_ms: float = 100.0
    #: Safety cap on requests per Primary VM (None = uncapped).
    requests_per_service: Optional[int] = None
    #: Memory accesses simulated per compute segment (fidelity knob).
    accesses_per_segment: int = 40
    #: Load multiplier over each service's nominal rate (1.0 = paper rates).
    load_scale: float = 1.0
    #: How many of the cluster's servers to actually simulate.
    servers_to_simulate: int = 1
    #: Record per-core L2 access traces for offline Belady replay (Fig. 14).
    record_l2_trace: bool = False
    #: Cap on recorded trace length per core.
    trace_limit: int = 200_000
    #: Which workload suite runs in the Primary VMs ("socialnet" is the
    #: paper's evaluation; "hotel" is a generalization suite).
    suite: str = "socialnet"
    #: Drive per-VM load from synthetic Alibaba utilization time series
    #: (Section 5: services run at the rates of matched production
    #: services) instead of the MMPP burst model.
    trace_driven: bool = False
    #: Interval length of the synthetic utilization trace when trace-driven.
    trace_interval_ms: float = 25.0
    #: Deterministic fault schedule injected into the run (None = fault-free).
    #: Part of the serialized experiment, hence of the result-cache key.
    faults: Optional[FaultSchedule] = None
    #: Client-side resilience policy (deadlines, retries, backoff, hedging,
    #: admission control). None = legacy open-loop clients with no timeouts.
    client: Optional[ClientPolicy] = None
    #: Observability knobs (span tracer + time-series probes). None (or
    #: ``enabled=False``) allocates nothing. Serialized with the config,
    #: hence part of the result-cache key like ``faults``/``client`` —
    #: even though telemetry never changes simulation results, a cached
    #: result carries no trace artifacts.
    telemetry: Optional[TelemetryConfig] = None
