"""Isolation audits: verify HardHarvest's security invariants on a
completed (or paused) simulation.

The paper's security argument (Sections 2.3, 4.2.1) has three parts:

1. **Partition isolation** — a Harvest VM executing on a loaned core may
   only install state in the harvest region, so the non-harvest region can
   never carry Harvest VM residue into the Primary VM.
2. **Flush on transition** — when a core moves between VMs, the harvest
   region is invalidated, so no cross-VM lines are observable afterwards.
3. **Timing-side-channel gate** — the incoming VM may not start before the
   *worst-case* flush duration has elapsed, so the flush time leaks
   nothing about the evicted state.

These audits reconstruct the owning VM of every valid cache/TLB entry from
the modeled physical address (VM id lives in the high bits) and check the
invariants structurally. They are exercised by tests and available to
users as a debugging/verification tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cluster.server import ServerSimulation
from repro.mem.address import _VM_SHIFT
from repro.mem.cache import SetAssocArray


@dataclass
class Violation:
    """One isolation violation found by an audit."""

    core_id: int
    structure: str
    way: int
    set_index: int
    entry_vm: int
    detail: str


@dataclass
class AuditReport:
    violations: List[Violation] = field(default_factory=list)
    entries_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations


def _entry_vm(array: SetAssocArray, set_index: int, tag: int, line_bytes: int) -> int:
    """Reconstruct the VM id of a cached entry from its tag."""
    line = tag * array.num_sets + set_index
    addr = line * line_bytes
    return addr >> _VM_SHIFT


def _audit_array(
    report: AuditReport,
    core,
    name: str,
    array: SetAssocArray,
    harvest_mask: int,
    line_bytes: int,
    primary_vm_ids,
    harvest_vm_ids,
) -> None:
    array.settle()
    for set_index, cset in array.sets.items():
        for way in range(cset.ways):
            if not cset.valid[way]:
                continue
            report.entries_checked += 1
            vm = _entry_vm(array, set_index, cset.tags[way], line_bytes)
            in_harvest = bool((harvest_mask >> way) & 1)
            # Invariant 1: Harvest VM state only ever sits in harvest ways
            # of a Primary-owned core.
            if (
                vm in harvest_vm_ids
                and core.owner_vm_id in primary_vm_ids
                and not in_harvest
            ):
                report.violations.append(
                    Violation(core.core_id, name, way, set_index, vm,
                              "Harvest VM entry in non-harvest way")
                )
            # Invariant 2: entries of *other Primary VMs* never appear
            # (cores are never shared between Primary VMs except via the
            # scrubbed buffer path).
            if vm in primary_vm_ids and vm not in (
                core.owner_vm_id,
                core.guest_vm_id if core.guest_vm_id is not None else -1,
            ):
                report.violations.append(
                    Violation(core.core_id, name, way, set_index, vm,
                              "foreign Primary VM entry resident")
                )


def audit_partition_isolation(sim: ServerSimulation) -> AuditReport:
    """Check invariants 1-2 over every private structure of every core.

    Valid for hardware-partitioned systems; software systems guarantee
    isolation by full flushes instead (audit those with
    :func:`audit_flush_on_idle`).
    """
    report = AuditReport()
    primary_ids = {vm.vm_id for vm in sim.primary_vms}
    harvest_ids = {h.vm_id for h in sim.harvest_vms}
    for core in sim.cores:
        mem = core.memory
        structures = (
            ("L1D", mem.l1d.array, mem.part_l1d.harvest, mem.l1d.line_bytes),
            ("L1I", mem.l1i.array, mem.part_l1i.harvest, mem.l1i.line_bytes),
            ("L2", mem.l2.array, mem.part_l2.harvest, mem.l2.line_bytes),
            ("L1TLB", mem.l1_tlb.array, mem.part_l1tlb.harvest, mem.l1_tlb.page_bytes),
            ("L2TLB", mem.l2_tlb.array, mem.part_l2tlb.harvest, mem.l2_tlb.page_bytes),
        )
        for name, array, mask, granule in structures:
            _audit_array(
                report, core, name, array, mask, granule, primary_ids, harvest_ids
            )
    return report


def audit_flush_on_idle(sim: ServerSimulation) -> AuditReport:
    """For software (full-flush) systems: idle, unlent cores that just
    returned from a loan must hold no Harvest VM state at all."""
    report = AuditReport()
    harvest_ids = {h.vm_id for h in sim.harvest_vms}
    for core in sim.cores:
        if core.on_loan or core.state != "idle":
            continue
        if core.owner_vm_id in harvest_ids or core.owner_vm_id < 0:
            continue
        mem = core.memory
        for name, array, granule in (
            ("L1D", mem.l1d.array, mem.l1d.line_bytes),
            ("L2", mem.l2.array, mem.l2.line_bytes),
        ):
            array.settle()
            for set_index, cset in array.sets.items():
                for way in range(cset.ways):
                    if not cset.valid[way]:
                        continue
                    report.entries_checked += 1
                    vm = _entry_vm(array, set_index, cset.tags[way], granule)
                    if vm in harvest_ids:
                        report.violations.append(
                            Violation(core.core_id, name, way, set_index, vm,
                                      "Harvest VM residue on idle core")
                        )
    return report


def audit_timing_gate(cost_model) -> bool:
    """Invariant 3: the lend-side flush wait is a constant worst-case time,
    independent of how much state is actually resident (no timing channel).

    Returns True when two memories with very different occupancy are
    charged the identical critical-path flush time.
    """
    from repro.config import HierarchyConfig, MemoryConfig
    from repro.mem.dram import DramModel
    from repro.mem.hierarchy import CoreMemory, build_llc

    cold = CoreMemory(
        cost_model.system.hierarchy, cost_model.system.partition,
        DramModel(MemoryConfig()),
    )
    warm = CoreMemory(
        cost_model.system.hierarchy, cost_model.system.partition,
        DramModel(MemoryConfig()),
    )
    llc = build_llc("audit", HierarchyConfig(), 4)
    for i in range(512):
        warm.access(i * 64, False, False, llc, True, 0)
    return cost_model.lend_cost(cold).flush_ns == cost_model.lend_cost(warm).flush_ns
