"""Offline analysis: Belady replay, critical paths, report formatting."""

from repro.analysis.belady import belady_hit_rate, merge_traces, replay_policy
from repro.analysis.critical_path import (
    RequestPath,
    critical_path_report,
    segment_requests,
)
from repro.analysis.energy import EnergyReport, energy_per_batch_unit, estimate_energy
from repro.analysis.plots import bar_chart, grouped_bar_chart, sparkline
from repro.analysis.queueing import (
    erlang_c,
    mg1_mean_wait,
    mgc_mean_wait,
    mmc_mean_wait,
    utilization,
)
from repro.analysis.report import format_series, format_table, with_average
from repro.analysis.security import (
    AuditReport,
    audit_flush_on_idle,
    audit_partition_isolation,
    audit_timing_gate,
)

__all__ = [
    "belady_hit_rate",
    "replay_policy",
    "merge_traces",
    "RequestPath",
    "segment_requests",
    "critical_path_report",
    "format_table",
    "format_series",
    "with_average",
    "bar_chart",
    "grouped_bar_chart",
    "sparkline",
    "AuditReport",
    "audit_partition_isolation",
    "audit_flush_on_idle",
    "audit_timing_gate",
    "EnergyReport",
    "estimate_energy",
    "energy_per_batch_unit",
    "erlang_c",
    "mmc_mean_wait",
    "mgc_mean_wait",
    "mg1_mean_wait",
    "utilization",
]
