"""Critical-path breakdown: where did each request's latency go?

Consumes the span tracer's event stream and re-tiles every completed
request's lifetime into five mutually exclusive phases that **exactly**
partition ``[arrival, completion]`` — the phase durations of a request
sum to its measured latency to the nanosecond, by construction (each
event closes the previous phase at its own timestamp and opens the next):

``nic``
    arrival at the NIC until the payload lands in the request queue
    (DDIO delivery plus any injected network delay).
``queueing``
    enqueued (or re-readied after backend I/O) until a core starts the
    dispatch transition — pure head-of-line/queue-depth wait.
``dispatch``
    the dispatch transition itself: queue access, work discovery,
    request context switch, and any pending reassignment/flush charge
    the core carried home from a reclaim.
``execution``
    compute segments on a core.
``backend``
    blocked on a backend call (network round trip + backend queue +
    backend service).

Unlike :class:`~repro.sim.stats.Breakdown` — whose ``queueing_ns`` folds
reclaim wait and dispatch cost together for the paper's figures — this
tiling is additive, which is what makes it a *critical path*: shrinking
any component by X ns shrinks the request's latency by exactly X ns.

Failed/abandoned attempts and requests whose chains were truncated by
ring-buffer eviction are excluded (they have no complete tiling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.analysis.report import format_table
from repro.telemetry.tracer import (
    PHASE_AFTER,
    PHASES,
    Event,
    REQ_ARRIVAL,
    REQ_COMPLETE,
    REQ_FAIL,
    REQ_SHED,
)


@dataclass
class RequestPath:
    """One completed request's exact latency tiling."""

    req: int
    vm: int
    arrival_ns: int
    completion_ns: int
    phases: Dict[str, int] = field(default_factory=dict)

    @property
    def total_ns(self) -> int:
        return self.completion_ns - self.arrival_ns


class _Open:
    """Per-request accumulator while its chain is still open."""

    __slots__ = ("vm", "arrival_ns", "prev_ts", "phase", "phases")

    def __init__(self, vm: int, ts: int):
        self.vm = vm
        self.arrival_ns = ts
        self.prev_ts = ts
        self.phase: Optional[str] = "nic"
        self.phases = {name: 0 for name in PHASES}


def segment_requests(events: Iterable[Event]) -> List[RequestPath]:
    """Tile every completed request's events into :data:`PHASES`.

    A request qualifies only if its full chain is present: an
    ``REQ_ARRIVAL`` opens it, a ``REQ_COMPLETE`` closes it, and it was
    never failed or shed in between. Returns paths ordered by request id
    (deterministic regardless of interleaving).
    """
    open_reqs: Dict[int, _Open] = {}
    done: Dict[int, RequestPath] = {}
    for ts, kind, req, vm, _core, _extra in events:
        if kind == REQ_ARRIVAL:
            open_reqs[req] = _Open(vm, ts)
            continue
        state = open_reqs.get(req)
        if state is None:
            continue  # chain head lost to eviction, or not a request event
        if kind in (REQ_FAIL, REQ_SHED):
            del open_reqs[req]
            continue
        if state.phase is not None:
            state.phases[state.phase] += ts - state.prev_ts
        state.prev_ts = ts
        if kind == REQ_COMPLETE:
            del open_reqs[req]
            done[req] = RequestPath(
                req, state.vm, state.arrival_ns, ts, state.phases
            )
        else:
            state.phase = PHASE_AFTER.get(kind, state.phase)
    return [done[req] for req in sorted(done)]


def critical_path_report(
    events: Iterable[Event], vm_names: Dict[int, str]
) -> str:
    """Per-service mean phase breakdown (µs), plus request counts.

    One row per service (named via ``vm_names``), in vm-id order, with an
    ``all`` row last; columns are the mean per-phase microseconds, the
    mean total, and the completed-request count.
    """
    paths = segment_requests(events)
    by_vm: Dict[int, List[RequestPath]] = {}
    for p in paths:
        by_vm.setdefault(p.vm, []).append(p)

    def _row(group: List[RequestPath]) -> List[float]:
        n = len(group)
        means = [
            sum(p.phases[name] for p in group) / n / 1000.0 for name in PHASES
        ]
        return means + [sum(p.total_ns for p in group) / n / 1000.0, float(n)]

    rows: Dict[str, List[float]] = {}
    for vm_id in sorted(by_vm):
        rows[vm_names.get(vm_id, f"vm{vm_id}")] = _row(by_vm[vm_id])
    if paths:
        rows["all"] = _row(paths)
    else:
        rows["all"] = [0.0] * (len(PHASES) + 1) + [0.0]
    return format_table(
        "Critical path (mean per request)",
        list(PHASES) + ["total", "requests"],
        rows,
        unit="us",
    )
