"""Energy accounting: per-run dynamic + static energy estimates.

Extends the Section 6.8 McPAT-lite area/power model into runtime energy:
per-access dynamic energy for each structure (from published per-access
energy of similarly-sized SRAMs at 7 nm) plus leakage over the simulated
horizon. The absolute joules are rough; the *comparative* story is the
point: harvesting amortizes the server's static power over far more work,
so energy per unit of batch work drops even though total power rises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.server import ServerSimulation
from repro.sim.units import SEC

#: Per-access dynamic energy (picojoules), 7nm-class estimates.
ENERGY_PJ = {
    "l1": 6.0,
    "l2": 18.0,
    "llc": 45.0,
    "tlb": 2.5,
    "dram": 2600.0,
    "rq": 1.2,  # controller SRAM queue access
}
#: Static power (watts) per server component.
STATIC_W = {
    "core": 1.1,    # per core, active-idle average
    "llc": 4.5,     # whole LLC
    "controller": 0.05,
}
#: Dynamic power of a core actively executing (watts).
CORE_ACTIVE_W = 2.6


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one simulated server run."""

    horizon_s: float
    dynamic_j: float
    static_j: float
    core_active_j: float

    @property
    def total_j(self) -> float:
        return self.dynamic_j + self.static_j + self.core_active_j

    @property
    def average_power_w(self) -> float:
        return self.total_j / self.horizon_s if self.horizon_s else 0.0


def estimate_energy(sim: ServerSimulation) -> EnergyReport:
    """Energy estimate for a completed run."""
    horizon_s = sim.end_ns / SEC

    # Dynamic: sum structure accesses across cores and LLC partitions.
    dyn_pj = 0.0
    for core in sim.cores:
        mem = core.memory
        dyn_pj += (mem.l1d.array.accesses + mem.l1i.array.accesses) * ENERGY_PJ["l1"]
        dyn_pj += mem.l2.array.accesses * ENERGY_PJ["l2"]
        dyn_pj += (
            mem.l1_tlb.array.accesses + mem.l2_tlb.array.accesses
        ) * ENERGY_PJ["tlb"]
    for vm in sim.primary_vms:
        dyn_pj += vm.llc.array.accesses * ENERGY_PJ["llc"]
    for hvm in sim.harvest_vms:
        dyn_pj += hvm.llc.array.accesses * ENERGY_PJ["llc"]
    dyn_pj += sim.dram.accesses * ENERGY_PJ["dram"]
    if sim.controller is not None:
        rq_ops = sum(qm.subqueue.hw_occupancy for qm in sim.controller.qms.values())
        rq_ops += sim.counters.get("lends", 0) + sim.counters.get("reclaims", 0)
        dyn_pj += rq_ops * ENERGY_PJ["rq"]

    # Static: every core + LLC + (controller, if present) leaks for the
    # whole horizon.
    n_cores = len(sim.cores)
    static_w = n_cores * STATIC_W["core"] + STATIC_W["llc"]
    if sim.controller is not None:
        static_w += STATIC_W["controller"]
    static_j = static_w * horizon_s

    # Active-core energy: busy core-seconds at the active-power adder.
    busy_core_seconds = sim.util.average_busy(sim.end_ns) * horizon_s
    core_active_j = busy_core_seconds * CORE_ACTIVE_W

    return EnergyReport(
        horizon_s=horizon_s,
        dynamic_j=dyn_pj * 1e-12,
        static_j=static_j,
        core_active_j=core_active_j,
    )


def energy_per_batch_unit(sim: ServerSimulation) -> float:
    """Joules of server energy per completed batch unit — the
    energy-proportionality lens on harvesting."""
    units = sum(h.units_completed for h in sim.harvest_vms)
    if units <= 0:
        raise ValueError("no batch work completed")
    return estimate_energy(sim).total_j / units
