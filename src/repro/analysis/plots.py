"""Terminal plotting: ASCII bar charts for benchmark output.

The paper's figures are grouped bar charts (per-service bars, one group per
system). These helpers render the same structure in plain text so the
benchmark harnesses can show the figure, not just its numbers.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

_BAR = "█"
_HALF = "▌"


def bar_chart(
    title: str,
    values: Dict[str, float],
    width: int = 44,
    unit: str = "",
    baseline: Optional[str] = None,
) -> str:
    """One horizontal bar per entry, scaled to the maximum value.

    ``baseline`` names an entry whose value is marked with a ``|`` gridline
    on every other bar (e.g. NoHarvest in a comparison).
    """
    if not values:
        raise ValueError("no values to plot")
    vmax = max(values.values())
    if vmax <= 0:
        raise ValueError("all values non-positive")
    name_w = max(len(k) for k in values)
    base_col = None
    if baseline is not None and values.get(baseline, 0) > 0:
        base_col = int(round(values[baseline] / vmax * width))
    lines = [f"== {title}" + (f" [{unit}]" if unit else "")]
    for name, value in values.items():
        n = value / vmax * width
        full = int(n)
        bar = _BAR * full + (_HALF if n - full >= 0.5 else "")
        if base_col is not None and name != baseline and len(bar) < base_col:
            bar = bar + " " * (base_col - len(bar) - 1) + "|"
        lines.append(f"{name.ljust(name_w)}  {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Dict[str, Dict[str, float]],
    width: int = 36,
    unit: str = "",
) -> str:
    """Figure-style grouped bars: one block per group (e.g. service), one
    bar per series (e.g. system) within it."""
    if not groups:
        raise ValueError("no groups to plot")
    vmax = max(v for series in groups.values() for v in series.values())
    if vmax <= 0:
        raise ValueError("all values non-positive")
    series_w = max(len(k) for series in groups.values() for k in series)
    lines = [f"== {title}" + (f" [{unit}]" if unit else "")]
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            n = value / vmax * width
            full = int(n)
            bar = _BAR * full + (_HALF if n - full >= 0.5 else "")
            lines.append(f"  {name.ljust(series_w)}  {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line sparkline (for utilization time series)."""
    blocks = "▁▂▃▄▅▆▇█"
    if not len(values):
        raise ValueError("no values")
    vals = list(values)
    if width is not None and len(vals) > width:
        stride = len(vals) / width
        vals = [vals[int(i * stride)] for i in range(width)]
    vmin, vmax = min(vals), max(vals)
    span = (vmax - vmin) or 1.0
    return "".join(
        blocks[min(len(blocks) - 1, int((v - vmin) / span * (len(blocks) - 1)))]
        for v in vals
    )
