"""Analytic queueing models for validating the simulator.

The engine's baseline behaviour (NoHarvest at steady load) should agree
with classic queueing theory: a Primary VM is approximately an M/G/c queue
(Poisson arrivals, general service times, c = 4 cores). These formulas give
the analytic expectations the validation tests compare against:

* :func:`erlang_c` — probability of queueing in M/M/c.
* :func:`mmc_mean_wait` — mean queueing delay in M/M/c.
* :func:`mgc_mean_wait` — the standard M/G/c approximation
  (M/M/c wait scaled by (1 + CV^2)/2, exact for M/G/1).
* :func:`utilization` — offered load per server.

These are also useful on their own for back-of-envelope sizing of
harvesting headroom.
"""

from __future__ import annotations

import math


def utilization(arrival_rate: float, service_time: float, servers: int) -> float:
    """Offered load per server: rho = lambda * E[S] / c."""
    if arrival_rate < 0 or service_time <= 0 or servers <= 0:
        raise ValueError("invalid queueing parameters")
    return arrival_rate * service_time / servers


def erlang_c(arrival_rate: float, service_time: float, servers: int) -> float:
    """P(wait > 0) in an M/M/c queue (Erlang C formula)."""
    rho = utilization(arrival_rate, service_time, servers)
    if rho >= 1.0:
        return 1.0
    a = arrival_rate * service_time  # offered load in Erlangs
    # Sum_{k=0}^{c-1} a^k / k!
    acc = 0.0
    term = 1.0
    for k in range(servers):
        if k > 0:
            term *= a / k
        acc += term
    top = term * a / servers / (1.0 - rho)
    return top / (acc + top)


def mmc_mean_wait(arrival_rate: float, service_time: float, servers: int) -> float:
    """Mean queueing delay E[Wq] in M/M/c."""
    rho = utilization(arrival_rate, service_time, servers)
    if rho >= 1.0:
        return math.inf
    pw = erlang_c(arrival_rate, service_time, servers)
    return pw * service_time / (servers * (1.0 - rho))


def mgc_mean_wait(
    arrival_rate: float,
    service_time: float,
    servers: int,
    cv: float,
) -> float:
    """Mean queueing delay in M/G/c via the Lee-Longton approximation:
    E[Wq] = (1 + CV^2)/2 * E[Wq]_{M/M/c}. Exact for M/G/1 (Pollaczek-
    Khinchine) and accurate within a few percent for moderate CV."""
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv}")
    return (1.0 + cv * cv) / 2.0 * mmc_mean_wait(arrival_rate, service_time, servers)


def mg1_mean_wait(arrival_rate: float, service_time: float, cv: float) -> float:
    """Pollaczek-Khinchine mean wait for M/G/1."""
    return mgc_mean_wait(arrival_rate, service_time, 1, cv)
