"""Plain-text table formatting for benchmark harnesses.

Every benchmark prints the same rows/series the paper's figure shows; these
helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Dict[str, Sequence[float]],
    unit: str = "",
    precision: int = 2,
) -> str:
    """Render a labeled table: one row per system/config, one column per
    service/job, matching the bar groups of the paper's figures."""
    width = max([len(c) for c in columns] + [precision + 6])
    name_width = max(len(name) for name in rows) if rows else 8
    lines = [f"== {title}" + (f" [{unit}]" if unit else "")]
    header = " " * (name_width + 2) + "  ".join(c.rjust(width) for c in columns)
    lines.append(header)
    for name, values in rows.items():
        if len(values) != len(columns):
            raise ValueError(
                f"row {name!r} has {len(values)} values for {len(columns)} columns"
            )
        cells = "  ".join(f"{v:>{width}.{precision}f}" for v in values)
        lines.append(f"{name.ljust(name_width)}  {cells}")
    return "\n".join(lines)


def format_series(title: str, series: Dict[str, float], precision: int = 3) -> str:
    """Render a single name->value series (e.g. utilization per system)."""
    name_width = max(len(name) for name in series)
    lines = [f"== {title}"]
    for name, value in series.items():
        lines.append(f"{name.ljust(name_width)}  {value:.{precision}f}")
    return "\n".join(lines)


def with_average(values: Dict[str, float]) -> Dict[str, float]:
    """Append the arithmetic mean under the key 'Avg' (paper convention)."""
    out = dict(values)
    out["Avg"] = sum(values.values()) / len(values)
    return out


#: The degradation metrics every fault-scenario report shows, in column
#: order: how much of the offered load became goodput, how hard the
#: clients had to work for it, and how long the damage lingered.
RESILIENCE_COLUMNS = (
    "goodput",
    "retry_amp",
    "slo_viol",
    "failed",
    "shed",
    "recov_ms",
)


def format_resilience_table(results: Dict[str, object], precision: int = 3) -> str:
    """Render the degradation profile of fault-injected runs: one row per
    system/point, built from each result's ``resilience`` dict."""
    rows: Dict[str, List[float]] = {}
    for name, result in results.items():
        res = getattr(result, "resilience", None) or {}
        rows[name] = [
            res.get("goodput", 0.0),
            res.get("retry_amplification", 0.0),
            res.get("slo_violation_rate", 0.0),
            res.get("failed", 0.0),
            res.get("shed", 0.0),
            res.get("recovery_ms_max", 0.0),
        ]
    return format_table(
        "Degradation under faults", RESILIENCE_COLUMNS, rows,
        precision=precision,
    )


SWEEP_COLUMNS = ("mean", "std", "min", "max", "n")


def sweep_aggregate(samples: Dict[str, Sequence[float]]) -> Dict[str, List[float]]:
    """Collapse per-point samples (e.g. one value per seed) into
    mean/std/min/max/n rows, keyed by group (e.g. system name).

    This is the row shape of every multi-seed robustness table: the sweep
    runner produces one result per (system, seed) point and the report
    groups them back by system.
    """
    out: Dict[str, List[float]] = {}
    for name, values in samples.items():
        vals = list(values)
        if not vals:
            raise ValueError(f"no samples for {name!r}")
        mean = sum(vals) / len(vals)
        var = sum((v - mean) ** 2 for v in vals) / len(vals)
        out[name] = [mean, var ** 0.5, min(vals), max(vals), float(len(vals))]
    return out


def format_sweep_table(
    title: str,
    samples: Dict[str, Sequence[float]],
    unit: str = "",
    precision: int = 2,
) -> str:
    """Render a mean/std/min/max/n table from per-group sample lists."""
    return format_table(
        title, SWEEP_COLUMNS, sweep_aggregate(samples), unit=unit,
        precision=precision,
    )


CLUSTER_SCALE_COLUMNS = (
    "requests",
    "p99_ms",
    "p50_ms",
    "busy",
    "batch_u/s",
    "imbal",
    "moves",
)


def format_cluster_scale_report(result) -> str:
    """Epoch-by-epoch view of a sharded cluster-scale run.

    One row per epoch (measured requests, request-weighted latency,
    mean busy cores, cluster batch throughput, routing cost imbalance,
    rebalance moves) plus the merged cluster summary and the run digest —
    the value the determinism smoke compares across worker counts.

    Fault-plan runs grow a second per-epoch table — the PR-3 degradation
    metrics (goodput, retry amplification, SLO violations, worst
    time-to-recovery) reduced cluster-wide at each barrier, plus the
    health feedback (crashes observed, servers excluded from routing).
    Nominal runs carry no resilience counters and print exactly the
    pre-resilience report.
    """
    rows: Dict[str, List[float]] = {}
    for epoch in result.epochs:
        servers = epoch.cluster.servers
        measured = epoch.requests_measured()
        weighted_p99 = weighted_p50 = 0.0
        for server in servers:
            w = server.counters.get("requests_measured", 0)
            if w:
                weighted_p99 += server.avg_p99_ms() * w
                weighted_p50 += server.avg_p50_ms() * w
        rows[f"epoch {epoch.epoch}"] = [
            float(measured),
            weighted_p99 / measured if measured else 0.0,
            weighted_p50 / measured if measured else 0.0,
            epoch.cluster.avg_busy_cores(),
            sum(s.batch_units_per_s for s in servers),
            epoch.routing["imbalance"] if epoch.routing else 1.0,
            float(len(epoch.rebalance["moves"])) if epoch.rebalance else 0.0,
        ]
    summary = result.summary_dict()
    lines = [
        format_table(
            f"{result.system} across {result.servers} server(s), "
            f"{len(result.epochs)} epoch(s)",
            CLUSTER_SCALE_COLUMNS,
            rows,
        ),
    ]
    resilience_rows = {}
    for epoch in result.epochs:
        epoch_summary = epoch.resilience_summary()
        if epoch_summary:
            holder = type("Row", (), {})()
            holder.resilience = epoch_summary
            resilience_rows[f"epoch {epoch.epoch}"] = holder
    if resilience_rows:
        lines += ["", format_resilience_table(resilience_rows)]
        health_bits = []
        for epoch in result.epochs:
            if epoch.health and (epoch.health["crashed"]
                                 or epoch.health["excluded"]):
                health_bits.append(
                    f"epoch {epoch.epoch}: "
                    f"crashed {epoch.health['crashed'] or '-'}, "
                    f"routing excluded {epoch.health['excluded'] or '-'}"
                )
        if health_bits:
            lines.append("health: " + "; ".join(health_bits))
    lines += [
        "",
        f"cluster: {summary['requests_measured']} measured "
        f"({summary['requests_arrived']} simulated) requests | "
        f"P99 {summary['avg_p99_ms']:.2f} ms | "
        f"P50 {summary['avg_p50_ms']:.2f} ms | "
        f"busy {summary['avg_busy_cores']:.1f} cores | "
        f"batch {summary['batch_units_per_s']:.0f} u/s | "
        f"{summary['rebalance_moves']} harvest core move(s)",
        f"digest: {result.digest()}",
    ]
    return "\n".join(lines)
