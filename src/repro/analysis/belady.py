"""Offline Belady (MIN) replacement replay for Figure 14.

Belady's optimal policy needs the future, so it cannot run inside the
event-driven simulation. Instead the engine records per-set L2 access
traces (``SimulationConfig.record_l2_trace``) and this module replays them
under MIN: on a miss with a full set, evict the line whose next use is
farthest in the future (never-used-again first).

The same replay machinery can run any online policy over a recorded trace
(:func:`replay_policy`), which keeps policy comparisons apples-to-apples on
identical access streams.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.mem.replacement import CacheSet, ReplacementPolicy

Trace = Sequence[Tuple[int, int, bool]]  # (set_index, tag, shared)


def belady_hit_rate(trace: Trace, ways: int) -> float:
    """Hit rate of Belady's MIN over a recorded (set, tag, shared) trace."""
    if ways <= 0:
        raise ValueError(f"ways must be positive, got {ways}")
    if not trace:
        raise ValueError("empty trace")

    # Precompute, for each access, the index of the next access to the same
    # (set, tag); infinity when never reused.
    n = len(trace)
    next_use = [n + 1] * n
    last_seen: Dict[Tuple[int, int], int] = {}
    for i in range(n - 1, -1, -1):
        key = (trace[i][0], trace[i][1])
        next_use[i] = last_seen.get(key, n + 1)
        last_seen[key] = i

    # Per-set resident tags with their next-use index.
    resident: Dict[int, Dict[int, int]] = defaultdict(dict)
    hits = 0
    for i, (set_index, tag, _shared) in enumerate(trace):
        lines = resident[set_index]
        if tag in lines:
            hits += 1
            lines[tag] = next_use[i]
            continue
        if len(lines) >= ways:
            victim = max(lines, key=lines.get)
            del lines[victim]
        lines[tag] = next_use[i]
    return hits / n


def replay_policy(trace: Trace, ways: int, policy: ReplacementPolicy) -> float:
    """Hit rate of an online policy replayed over a recorded trace."""
    if not trace:
        raise ValueError("empty trace")
    sets: Dict[int, CacheSet] = {}
    allowed = (1 << ways) - 1
    hits = 0
    for set_index, tag, shared in trace:
        cset = sets.get(set_index)
        if cset is None:
            cset = CacheSet(ways)
            sets[set_index] = cset
        way = cset.find(tag, allowed)
        if way >= 0:
            hits += 1
            policy.on_hit(cset, way)
            continue
        victim = policy.choose_victim(cset, shared, allowed)
        cset.tags[victim] = tag
        cset.valid[victim] = True
        cset.shared[victim] = shared
        policy.on_insert(cset, victim, shared)
    return hits / len(trace)


def merge_traces(traces: Iterable[Trace]) -> List[Tuple[int, int, bool]]:
    """Concatenate per-core traces, renumbering sets to avoid collisions.

    Each core's L2 is independent, so replays must not mix their sets;
    core ``k``'s set ``s`` becomes ``(k << 20) | s``.
    """
    merged: List[Tuple[int, int, bool]] = []
    for k, trace in enumerate(traces):
        for set_index, tag, shared in trace:
            merged.append(((k << 20) | set_index, tag, shared))
    return merged
