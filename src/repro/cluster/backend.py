"""The backend tier: dedicated servers for caches, KV stores, and databases.

Section 5: "These backend services (Memcached, Redis, and MongoDB) run on
dedicated servers. We do not simulate the execution of the queries on the
backend services. Instead, we use the execution times obtained by profiling
them on a real server."

We go one step further than replaying profiled times: each backend is an
event-driven multi-worker queue, so a correlated burst of blocking calls
congests the backend and inflates I/O times — the feedback loop a fixed
delay cannot express. Per-call service demand is still pre-drawn from the
profiled distributions (so the demand stream is identical across systems);
only the queueing on top depends on load.

A blocking call's end-to-end I/O time is:

    inter-server RT + backend queueing + profiled backend service time
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Tuple

from repro.sim.engine import Simulator

#: Which backend a service's blocking calls hit, by service name. The
#: SocialNet services split across a Memcached tier, a Redis tier, and a
#: MongoDB tier (Figure 1's Cache/Database helpers).
SERVICE_BACKEND: Dict[str, str] = {
    "Text": "memcached",
    "SGraph": "redis",
    "User": "mongodb",
    "PstStr": "mongodb",
    "UsrMnt": "memcached",
    "HomeT": "redis",
    "CPost": "mongodb",
    "UrlShort": "memcached",
}

#: Worker counts per backend server (dedicated machines; sized so the
#: steady state is uncongested and only correlated bursts queue).
DEFAULT_WORKERS: Dict[str, int] = {
    "memcached": 16,
    "redis": 16,
    "mongodb": 24,
}


class BackendService:
    """One backend server: FIFO queue onto ``workers`` parallel workers."""

    def __init__(self, sim: Simulator, name: str, workers: int):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.sim = sim
        self.name = name
        self.workers = workers
        #: Configured worker count; ``workers`` may drop below this during
        #: an injected brownout and is restored from here afterwards.
        self.nominal_workers = workers
        self.busy = 0
        #: (service_demand_ns, callback, enqueue_time_ns)
        self.queue: Deque[Tuple[int, Callable[[], None], int]] = deque()
        self.calls = 0
        self.total_queue_ns = 0
        self.max_queue_depth = 0

    def submit(self, service_demand_ns: int, on_done: Callable[[], None]) -> None:
        """Issue a query with pre-drawn ``service_demand_ns`` of work."""
        self.calls += 1
        if self.busy < self.workers:
            self._start(service_demand_ns, on_done, queued_ns=0)
        else:
            self.queue.append((service_demand_ns, on_done, self.sim.now))
            self.max_queue_depth = max(self.max_queue_depth, len(self.queue))

    def _start(self, demand_ns: int, on_done: Callable[[], None], queued_ns: int) -> None:
        self.busy += 1
        self.total_queue_ns += queued_ns
        self.sim.schedule(max(1, demand_ns), self._finish, on_done)

    def _finish(self, on_done: Callable[[], None]) -> None:
        self.busy -= 1
        # busy can exceed workers right after a brownout cuts capacity;
        # in-flight queries run to completion but no new ones start until
        # occupancy drops below the (reduced) worker count.
        if self.queue and self.busy < self.workers:
            demand, cb, enqueued_at = self.queue.popleft()
            self._start(demand, cb, self.sim.now - enqueued_at)
        on_done()

    def set_capacity(self, workers: int) -> None:
        """Change the effective worker count (brownout fault window).

        Shrinking never aborts in-flight queries; growing immediately
        drains the queue into the newly freed workers."""
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        while self.queue and self.busy < self.workers:
            demand, cb, enqueued_at = self.queue.popleft()
            self._start(demand, cb, self.sim.now - enqueued_at)

    def mean_queue_us(self) -> float:
        if self.calls == 0:
            return 0.0
        return self.total_queue_ns / self.calls / 1000.0


class BackendTier:
    """The cluster's shared backend servers."""

    def __init__(self, sim: Simulator, workers: Dict[str, int] = None):
        sizes = dict(DEFAULT_WORKERS)
        if workers:
            sizes.update(workers)
        self.services: Dict[str, BackendService] = {
            name: BackendService(sim, name, n) for name, n in sizes.items()
        }

    def for_service(self, service_name: str) -> BackendService:
        backend = SERVICE_BACKEND.get(service_name)
        if backend is None:
            # Other suites register their routing separately.
            from repro.workloads.suites import HOTEL_BACKENDS

            backend = HOTEL_BACKENDS.get(service_name, "memcached")
        return self.services[backend]

    def stats(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {
                "calls": svc.calls,
                "mean_queue_us": svc.mean_queue_us(),
                "max_queue_depth": svc.max_queue_depth,
            }
            for name, svc in self.services.items()
        }
