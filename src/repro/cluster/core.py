"""A physical core: ownership, run state, and its private memory hierarchy.

States:

* ``idle``      — no work; ``idle_cause`` says whether the core went idle on
  request termination or on a blocking call (the Term/Block distinction).
* ``busy``      — executing a Primary request segment or a batch unit.
* ``switching`` — mid-transition (dispatch, lend, or reclaim critical path).

``on_loan`` marks a Primary-bound core currently assigned to the Harvest VM
(Section 4.1.4); ``running_vm_id`` is the VM whose context is loaded.
"""

from __future__ import annotations

from typing import Optional

from repro.mem.hierarchy import CoreMemory

IDLE = "idle"
BUSY = "busy"
SWITCHING = "switching"
#: Parked by an injected core-stall fault: the core holds no work and is
#: invisible to dispatch, stealing, and lending until the fault window ends.
STALLED = "stalled"


class Core:
    """One physical core of a server."""

    def __init__(self, core_id: int, owner_vm_id: int, memory: CoreMemory):
        self.core_id = core_id
        self.owner_vm_id = owner_vm_id
        self.memory = memory
        self.state = IDLE
        self.idle_cause: Optional[str] = None  # 'term' | 'block' | None
        self.idle_since = 0
        self.on_loan = False
        self.loan_start_ns = 0
        #: A reclaim has been initiated but its critical path has not
        #: completed yet (counters already reflect it).
        self.reclaim_in_flight = False
        self.running_vm_id = owner_vm_id
        #: Set while the core is temporarily attached to *another Primary
        #: VM* via the software emergency buffer (SmartHarvest fast path).
        self.guest_vm_id: Optional[int] = None
        #: In-flight work handles (set by the engine).
        self.current_request: Optional[object] = None
        self.batch_event: Optional[object] = None
        #: Handle of the in-flight dispatch/segment/lend/reclaim event, so
        #: a server-crash fault can cancel the core's pending transition.
        self.run_event: Optional[object] = None
        self.batch_unit_start_ns = 0
        self.batch_unit_duration_ns = 0
        self.batch_unit_remaining_tag: Optional[float] = None
        #: Reassignment/flush cost pending attribution to the next request.
        self.pending_reassign_ns = 0
        self.pending_flush_ns = 0
        #: CR3 of the VM State Register Set currently loaded (hardware
        #: systems); lets invariant checks verify the right VM context is
        #: live on the core.
        self.loaded_cr3: Optional[int] = None

    def take_pending_costs(self) -> tuple:
        """Consume pending (reassign, flush) costs for breakdown accounting."""
        costs = (self.pending_reassign_ns, self.pending_flush_ns)
        self.pending_reassign_ns = 0
        self.pending_flush_ns = 0
        return costs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        loan = " loaned" if self.on_loan else ""
        return f"Core({self.core_id}, owner=vm{self.owner_vm_id}, {self.state}{loan})"
