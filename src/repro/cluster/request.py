"""The unit of Primary VM work: one microservice request.

A request arrives as a network packet (payload deposited in the LLC via
DDIO, pointer queued at the VM's QM), executes as ``blocking_calls + 1``
compute segments separated by synchronous I/O waits, and completes when its
last segment finishes. Its demand (CPU time, blocking calls, backend times)
is drawn at generation time so every evaluated system sees the identical
workload.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mem.address import Region
from repro.sim.stats import Breakdown


class Request:
    """One microservice invocation with pre-drawn demand."""

    __slots__ = (
        "req_id",
        "vm_id",
        "service",
        "arrival_ns",
        "measured",
        "seg_cpu_ns",
        "segments_total",
        "segments_done",
        "io_durations_ns",
        "private_region",
        "breakdown",
        "ready_since_ns",
        "first_start_ns",
        "completion_ns",
        "steered_core_id",
        "context_slot",
        "failed",
        "logical_id",
        "attempt",
        "deadline_event",
    )

    def __init__(
        self,
        req_id: int,
        vm_id: int,
        service: str,
        arrival_ns: int,
        measured: bool,
        exec_ns: int,
        io_durations_ns: List[int],
        private_region: Optional[Region],
    ):
        self.req_id = req_id
        self.vm_id = vm_id
        self.service = service
        self.arrival_ns = arrival_ns
        self.measured = measured
        self.segments_total = len(io_durations_ns) + 1
        self.seg_cpu_ns = max(1, exec_ns // self.segments_total)
        self.segments_done = 0
        self.io_durations_ns = io_durations_ns
        self.private_region = private_region
        self.breakdown = Breakdown()
        self.ready_since_ns = arrival_ns
        self.first_start_ns: Optional[int] = None
        self.completion_ns: Optional[int] = None
        #: Core this request is steered to (software per-core queues);
        #: None under HardHarvest's shared per-VM subqueue.
        self.steered_core_id: Optional[int] = None
        #: Request Context Memory slot holding the register state while the
        #: request is blocked on I/O (hardware context switching).
        self.context_slot: Optional[int] = None
        #: Abandoned: killed by a fault, timed out, shed, or superseded by a
        #: winning hedge. In-flight events for a failed attempt clean up and
        #: drop their results instead of completing the request.
        self.failed = False
        #: The logical (client-visible) request this attempt serves; retries
        #: and hedges share a logical_id with the original attempt.
        self.logical_id = req_id
        #: 1 for the original attempt, 2+ for retries/hedges.
        self.attempt = 1
        #: Cancellable deadline timer armed by the client runtime.
        self.deadline_event: Optional[object] = None

    @property
    def blocks_remaining(self) -> int:
        return self.segments_total - 1 - self.segments_done

    def latency_ns(self) -> int:
        if self.completion_ns is None:
            raise ValueError(f"request {self.req_id} has not completed")
        return self.completion_ns - self.arrival_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request({self.req_id}, {self.service}, vm={self.vm_id}, "
            f"seg={self.segments_done}/{self.segments_total})"
        )
