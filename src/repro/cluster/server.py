"""The per-server discrete-event engine tying everything together.

One :class:`ServerSimulation` models one server of the paper's cluster:
36 cores, 8 Primary VMs (one DeathStarBench-like service each, 4 cores
each) and 1 Harvest VM (4 base cores plus whatever it harvests), under one
of the evaluated architectures (NoHarvest, Harvest-Term/Block,
HardHarvest-Term/Block, or any ablation point between them).

Event flow
----------

* **Arrival** — the NIC deposits the payload via DDIO and the request lands
  in the VM's queue (QM subqueue or software queue). If an idle bound core
  exists it dispatches; otherwise, if a bound core is on loan, the engine
  starts a *reclaim* (demand-driven in every system, with system-specific
  costs).
* **Dispatch** — queue access + work discovery + request context switch
  (costs from :class:`~repro.harvest.costs.CostModel`); then the request's
  next compute segment runs. Segment duration = drawn CPU time plus modeled
  memory time: sampled accesses walk the core's real cache/TLB model and the
  measured average latency is scaled by the service's reference density.
* **Blocking I/O** — the request parks in the queue (entry stays, marked
  BLOCKED), the core is released with cause ``block``; the response later
  marks it ready, which may trigger dispatch or reclaim.
* **Lend** — when a core idles and the harvesting agent approves, the core
  transitions to the Harvest VM (flush semantics per system) and chews
  batch units until preempted.
* **Reclaim** — a loaned core is interrupted: its batch unit's remaining
  work is preserved (hardware context switching) or lost (software); the
  transition cost and any critical-path flush are charged before the core
  returns to its Primary VM.

Utilization counts cores executing useful work (Primary segments or batch
units); switching/flush time is overhead and deliberately not counted.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import HarvestTrigger, SimulationConfig, SystemConfig
from repro.cluster.core import BUSY, IDLE, STALLED, SWITCHING, Core
from repro.cluster.backend import BackendTier
from repro.cluster.nic import Nic
from repro.cluster.request import Request
from repro.cluster.vm import HarvestVm, PrimaryVm, SharedQueueAdapter, SoftwareQueue
from repro.faults.client import ClientRuntime
from repro.faults.injector import FaultInjector
from repro.harvest.base import HarvestAgent, NoHarvestAgent
from repro.harvest.costs import CostModel
from repro.harvest.hardware import HardwareAgent
from repro.harvest.software import SmartHarvestAgent
from repro.hw.context import SavedContext
from repro.hw.controller import HardHarvestController
from repro.mem.address import AddressSpace
from repro.mem.cache import slowpath_enabled
from repro.mem.dram import DramModel
from repro.mem.hierarchy import CoreMemory, build_llc
from repro.sim.engine import Simulator, sched_slowpath_enabled
from repro.sim.rng import RngRegistry, derive_server_seed
from repro.sim.stats import (
    BreakdownRecorder,
    Counter,
    LatencyRecorder,
    UtilizationTracker,
)
from repro.sim.units import SEC
from repro.telemetry import tracer as trc
from repro.telemetry.probes import ProbeEngine
from repro.telemetry.tracer import Tracer
from repro.workloads.batch import BATCH_JOBS, BatchJobProfile
from repro.workloads.alibaba import sample_instances, utilization_timeseries
from repro.workloads.loadgen import (
    generate_arrivals_correlated,
    generate_arrivals_from_trace,
    generate_burst_schedule,
)
from repro.workloads.memory_profile import BatchMemory, ServiceMemory
from repro.workloads.microservices import (
    draw_blocking_calls,
    draw_exec_time_us,
    draw_io_time_us,
)
from repro.workloads.suites import get_suite


class ServerSimulation:
    """One simulated server under one system configuration."""

    def __init__(
        self,
        system: SystemConfig,
        simcfg: SimulationConfig,
        batch_job: Optional[BatchJobProfile] = None,
        server_index: int = 0,
    ):
        self.system = system
        self.simcfg = simcfg
        self.server_index = server_index
        self.sim = Simulator()
        self.rng = RngRegistry(derive_server_seed(simcfg.seed, server_index))
        self.costs = CostModel(system)
        self.dram = DramModel(system.hierarchy.memory)
        self.nic = Nic()
        #: Dedicated backend servers (Memcached/Redis/MongoDB tiers).
        self.backends = BackendTier(self.sim)

        cluster = system.cluster
        self.controller: Optional[HardHarvestController] = None
        if system.hardware_scheduling:
            self.controller = HardHarvestController(
                system.controller, cluster.cores_per_server, system.hierarchy.freq_ghz
            )

        # ------------------------------------------------------------------
        # Build VMs.
        # ------------------------------------------------------------------
        self.primary_vms: List[PrimaryVm] = []
        self.vms_by_id: Dict[int, object] = {}
        services = get_suite(simcfg.suite)[: cluster.primary_vms_per_server]
        vm_id = 0
        for profile in services:
            space = AddressSpace(vm_id)
            memory = ServiceMemory(space, profile)
            llc = build_llc(
                f"LLC/vm{vm_id}", system.hierarchy, cluster.cores_per_primary_vm
            )
            if self.controller is not None:
                queue = SharedQueueAdapter(
                    self.controller.register_vm(
                        vm_id, True, cluster.cores_per_primary_vm
                    )
                )
            else:
                queue = SoftwareQueue(vm_id)
            vm = PrimaryVm(vm_id, profile, memory, llc, queue)
            self.primary_vms.append(vm)
            self.vms_by_id[vm_id] = vm
            vm_id += 1

        #: Without a hardware scheduler, requests are steered to per-core
        #: queues (RSS onto vCPU runqueues) — Section 4.1.6's software world.
        self.per_core_steering = not system.flags.sched

        self.harvest_vms: List[HarvestVm] = []
        for h in range(cluster.harvest_vms_per_server):
            job = batch_job or BATCH_JOBS[(server_index + h) % len(BATCH_JOBS)]
            space = AddressSpace(vm_id)
            batch_memory = BatchMemory(
                space, job.code_pages, job.data_pages, job.skew
            )
            harvest_llc = build_llc(
                f"LLC/harvest{vm_id}", system.hierarchy, cluster.harvest_vm_base_cores
            )
            hvm = HarvestVm(
                vm_id, job, batch_memory, harvest_llc, active=system.batch_active
            )
            self.harvest_vms.append(hvm)
            self.vms_by_id[vm_id] = hvm
            if self.controller is not None:
                self.controller.register_vm(
                    vm_id, False, cluster.harvest_vm_base_cores
                )
            vm_id += 1
        #: The first Harvest VM (the paper's single-VM setup).
        self.harvest_vm = self.harvest_vms[0]
        self._lend_rr = 0  # round-robin lend target among Harvest VMs

        # ------------------------------------------------------------------
        # Build cores.
        # ------------------------------------------------------------------
        self.cores: List[Core] = []
        core_id = 0
        for vm in self.primary_vms:
            for _ in range(cluster.cores_per_primary_vm):
                core = self._make_core(core_id, vm.vm_id)
                vm.cores.append(core)
                core_id += 1
        for hvm in self.harvest_vms:
            for _ in range(cluster.harvest_vm_base_cores):
                core = self._make_core(core_id, hvm.vm_id)
                hvm.cores.append(core)
                core_id += 1
        # Unallocated cores (if any) are left idle and unbound.
        while core_id < cluster.cores_per_server:
            self._make_core(core_id, -1)
            core_id += 1

        if simcfg.record_l2_trace:
            for core in self.cores:
                core.memory.l2.array.enable_trace(simcfg.trace_limit)

        # ------------------------------------------------------------------
        # Harvesting agent.
        # ------------------------------------------------------------------
        self.agent = self._make_agent()
        self.agent.attach(self)

        # ------------------------------------------------------------------
        # Metrics.
        # ------------------------------------------------------------------
        self.latency: Dict[str, LatencyRecorder] = {
            vm.name: LatencyRecorder(vm.name) for vm in self.primary_vms
        }
        self.latency_all = LatencyRecorder("all")
        self.util = UtilizationTracker(cluster.cores_per_server)
        self._busy = 0
        self.counters = Counter()
        self.breakdowns = BreakdownRecorder()
        self.l2_primary_hits = 0
        self.l2_primary_accesses = 0
        self.l2_batch_hits = 0
        self.l2_batch_accesses = 0
        self.end_ns = 0
        self._target_completions = 0
        self._completions = 0
        self._finished = False

        # ------------------------------------------------------------------
        # Telemetry (off by default). When disabled, ``tracer`` stays None
        # and every hook is a single attribute test — no per-event heap
        # churn; when enabled, hooks only *read* state, so simulation
        # results are bit-identical either way.
        # ------------------------------------------------------------------
        self.tracer: Optional[Tracer] = None
        self.probes: Optional[ProbeEngine] = None
        tcfg = simcfg.telemetry
        if tcfg is not None and tcfg.enabled:
            self.tracer = Tracer(tcfg.max_events)
            self.probes = ProbeEngine(self, tcfg)

        # ------------------------------------------------------------------
        # Fault injection + client resilience (robustness experiments).
        # ------------------------------------------------------------------
        self.injector: Optional[FaultInjector] = None
        if simcfg.faults is not None and len(simcfg.faults):
            self.injector = FaultInjector(self, simcfg.faults)
        self.client: Optional[ClientRuntime] = None
        if simcfg.client is not None:
            self.client = ClientRuntime(self, simcfg.client)

        # ------------------------------------------------------------------
        # Hot-path hoists. Named streams are cached by the registry (same
        # generator object every call, seeded by name alone), so binding
        # them once removes a registry lookup per segment without touching
        # the draw sequence. The fast/slow memory path is chosen once here.
        # ------------------------------------------------------------------
        self._mem_rng = self.rng.stream("mem")
        self._batchmem_rng = self.rng.stream("batchmem")
        self._costs_rng = self.rng.stream("costs")
        self._mem_fastpath = not slowpath_enabled()
        self._sched_fastpath = not sched_slowpath_enabled()
        #: Flat counter store: hot handlers bump this dict directly instead
        #: of paying ``Counter.incr``'s method call + validation per event.
        #: Same underlying defaultdict, so cold-path ``incr`` calls and
        #: result extraction observe every update immediately.
        self._counts = self.counters._counts
        #: Cores currently executing a batch unit (state BUSY with a live
        #: ``batch_event``), maintained at the four transition sites so the
        #: sync-overhead model reads a counter instead of scanning all
        #: cores.  Equals the reference scan at every read — the slow path
        #: still scans, and the parity pins prove both agree.
        self._active_batch_cores = 0
        #: Per-VM scheduling descriptors: the queue methods the hot
        #: handlers call, bound once (queue objects never change after
        #: construction).  One dict hit replaces repeated
        #: ``vm.queue.<method>`` attribute chains per handler invocation.
        self._vm_desc = {
            vm.vm_id: (
                vm.queue,
                vm.queue.has_ready,
                vm.queue.dequeue,
                vm.queue.ready_count,
                vm.queue.ready_steered_cores,
                vm.cores,
            )
            for vm in self.primary_vms
        }
        #: Ready-work arbitration: descriptor-driven fast path or the kept
        #: reference (sublist-materializing) implementation, chosen once.
        self._work_available = (
            self._work_available_fast
            if self._sched_fastpath
            else self._work_available_ref
        )

        # ------------------------------------------------------------------
        # Pre-draw workload: identical across systems given the same seed.
        # ------------------------------------------------------------------
        self._generate_workload()

    # ------------------------------------------------------------------
    def _make_core(self, core_id: int, owner_vm_id: int) -> Core:
        memory = CoreMemory(self.system.hierarchy, self.system.partition, self.dram)
        core = Core(core_id, owner_vm_id, memory)
        self.cores.append(core)
        if self.controller is not None and owner_vm_id >= 0:
            self.controller.qm_for(owner_vm_id).bind_core(core_id)
        return core

    def _make_agent(self) -> HarvestAgent:
        trigger = self.system.trigger
        if trigger is HarvestTrigger.NEVER:
            return NoHarvestAgent()
        if self.system.flags.sched:
            if self.system.adaptive_trigger:
                from repro.harvest.adaptive import AdaptiveAgent

                return AdaptiveAgent()
            return HardwareAgent(trigger)
        return SmartHarvestAgent(trigger, self.system.smartharvest)

    def _generate_workload(self) -> None:
        simcfg = self.simcfg
        horizon_ns = int(simcfg.horizon_ms * 1e6)
        warmup_ns = int(simcfg.warmup_ms * 1e6)
        # One burst schedule per server: the services of an application
        # surge together (a user-traffic spike fans out through all of them).
        burst_windows = generate_burst_schedule(
            self.rng.stream("bursts"), horizon_ns
        )
        req_id = 0
        for vm in self.primary_vms:
            profile = vm.profile
            arr_rng = self.rng.stream(f"arrivals/{profile.name}")
            dem_rng = self.rng.stream(f"demand/{profile.name}")
            if simcfg.trace_driven:
                arrivals = self._trace_driven_arrivals(vm, arr_rng, horizon_ns)
            else:
                arrivals = generate_arrivals_correlated(
                    arr_rng,
                    profile,
                    self.system.cluster.cores_per_primary_vm,
                    horizon_ns,
                    burst_windows,
                    simcfg.load_scale,
                    simcfg.requests_per_service,
                )
            for t in arrivals:
                blocks = draw_blocking_calls(profile, dem_rng)
                exec_ns = int(draw_exec_time_us(profile, dem_rng) * 1000)
                # Pure backend service demand; network RT and backend
                # queueing are added by the backend tier at run time.
                ios = [
                    int(draw_io_time_us(profile, dem_rng) * 1000)
                    for _ in range(blocks)
                ]
                req = Request(
                    req_id=req_id,
                    vm_id=vm.vm_id,
                    service=profile.name,
                    arrival_ns=t,
                    measured=t >= warmup_ns,
                    exec_ns=exec_ns,
                    io_durations_ns=ios,
                    private_region=vm.memory.new_invocation(),
                )
                req_id += 1
                if self.client is not None:
                    self.client.register(req, exec_ns, ios)
                self.sim.schedule_at(t, self._arrival, vm, req)
                self._target_completions += 1
        #: Cluster-scale accounting: every pre-drawn arrival is simulated
        #: (warmup included), so this is the honest "requests simulated"
        #: figure a sharded run sums across servers and epochs.
        self.counters.incr("requests_arrived", req_id)
        #: Continuation of the pre-drawn id space for retry/hedge attempts.
        self._next_req_id = req_id

    def _trace_driven_arrivals(self, vm, arr_rng, horizon_ns: int):
        """Arrivals at the rates of a matched Alibaba instance (Section 5).

        Samples an instance utilization profile from the synthetic Alibaba
        population, expands it into a bursty time series at
        ``trace_interval_ms`` granularity, and converts utilization to a
        request rate via the service's mean busy time.
        """
        simcfg = self.simcfg
        trace_rng = self.rng.stream(f"alibaba/{vm.profile.name}")
        instance = sample_instances(trace_rng, 1)[0]
        interval_ns = int(simcfg.trace_interval_ms * 1e6)
        n_points = max(1, -(-horizon_ns // interval_ns))  # ceil division
        series = utilization_timeseries(
            trace_rng, instance, duration_s=n_points, granularity_s=1
        )
        return generate_arrivals_from_trace(
            arr_rng,
            vm.profile,
            self.system.cluster.cores_per_primary_vm,
            series,
            interval_ns,
            simcfg.load_scale,
            simcfg.requests_per_service,
        )

    # ==================================================================
    # Run loop
    # ==================================================================
    def run(self) -> None:
        """Run until all Primary requests complete (or the safety cap)."""
        if self.probes is not None:
            self.probes.start()
        self.agent.start()
        if self.injector is not None:
            self.injector.start()
        for hvm in self.harvest_vms:
            if hvm.active:
                for core in hvm.cores:
                    self._start_batch_unit(core)
        cap_ns = self._horizon_cap()
        # pending_live_events: a heap holding only cancelled deadline
        # timers (retry-heavy fault runs) is already drained.
        while not self._finished and self.sim.pending_live_events:
            self.sim.run(max_events=20_000)
            if self.sim.now > cap_ns:
                self.counters.incr("horizon_cap_hit")
                break
        self.end_ns = max(self.sim.now, 1)

    def _horizon_cap(self) -> int:
        last = self.sim.peek_next_time() or 0
        # Arrivals were scheduled up front, so the heap's max arrival bounds
        # the workload span; allow generous drain time after it.
        return max(
            int(5 * self._max_arrival_ns()) + 10 * SEC,
            last + 10 * SEC,
        )

    def _max_arrival_ns(self) -> int:
        return max(
            (r.time for _, _, r in self.sim._heap), default=0
        ) if self.sim._heap else 0

    # ==================================================================
    # Utilization bookkeeping
    # ==================================================================
    def _enter_busy(self) -> None:
        self._busy += 1
        self.util.set_busy(self.sim.now, self._busy)

    def _leave_busy(self) -> None:
        self._busy -= 1
        self.util.set_busy(self.sim.now, self._busy)

    # ==================================================================
    # Arrival and dispatch
    # ==================================================================
    def _arrival(self, vm: PrimaryVm, req: Request) -> None:
        tr = self.tracer
        if tr is not None:
            tr.emit(self.sim.now, trc.REQ_ARRIVAL, req.req_id, vm.vm_id)
        if self.client is not None:
            # Arm the attempt's deadline before the network can lose it:
            # the client only learns of a drop when the deadline expires.
            self.client.on_attempt_arrival(vm, req)
            if req.failed:
                return  # stale hedge/retry of an already-resolved logical
        extra_ns = 0
        if self.injector is not None:
            dropped, extra_ns = self.injector.arrival_fate()
            if dropped:
                self._drop_attempt(vm, req)
                return
        latency = self.nic.deliver(
            vm.llc, (vm.vm_id << 44) | (1 << 30), lambda: None
        )
        self.sim.schedule(latency + extra_ns, self._enqueue, vm, req)

    def _drop_attempt(self, vm: PrimaryVm, req: Request) -> None:
        """The network (or a dark server) swallowed this attempt."""
        if self.client is not None:
            # The deadline timer keeps running; its expiry drives the retry.
            req.failed = True
            tr = self.tracer
            if tr is not None:
                tr.emit(self.sim.now, trc.REQ_FAIL, req.req_id, vm.vm_id, -1, -1)
        else:
            self._fail_attempt(vm, req)

    def _enqueue(self, vm: PrimaryVm, req: Request) -> None:
        if req.failed:
            return
        if self.injector is not None and self.injector.server_down:
            # The server died between NIC delivery and enqueue.
            self.counters.incr("faults_arrivals_dropped")
            self._drop_attempt(vm, req)
            return
        if (
            self.client is not None
            and self.client.policy.admission_queue_depth > 0
            and vm.queue.pending() >= self.client.policy.admission_queue_depth
        ):
            # Admission control: fast-fail instead of growing the queue
            # without bound; the client backs off and retries.
            self.counters.incr("admission_shed")
            tr = self.tracer
            if tr is not None:
                tr.emit(self.sim.now, trc.REQ_SHED, req.req_id, vm.vm_id)
            self.client.on_shed(vm, req)
            return
        now = self.sim.now
        req.ready_since_ns = now
        if self.per_core_steering:
            # RSS steering with slow re-steer: the NIC hashes flows over the
            # VM's vCPUs; the stack re-steers away from a harvested core
            # only after ``resteer_ns`` — arrivals inside that window land
            # on the loaned core's queue and need a buffer core or reclaim.
            resteer = self.system.software_costs.resteer_ns
            cores = vm.cores
            if self._sched_fastpath:
                # The filtered list is only built when some core actually
                # sits past its re-steer window (loans are uncommon).
                eligible = cores
                for c in cores:
                    if c.on_loan and now - c.loan_start_ns > resteer:
                        eligible = [
                            c2
                            for c2 in cores
                            if not (c2.on_loan and now - c2.loan_start_ns > resteer)
                        ] or cores
                        break
            else:
                # Reference: always materialize the eligible list.
                eligible = [
                    c
                    for c in cores
                    if not (c.on_loan and now - c.loan_start_ns > resteer)
                ] or cores
            req.steered_core_id = eligible[vm.rr_cursor % len(eligible)].core_id
            vm.rr_cursor += 1
        in_hw = vm.queue.enqueue(req)
        if not in_hw:
            self._counts["queue_overflow_spills"] += 1
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.sim.now,
                trc.REQ_ENQUEUE if in_hw else trc.REQ_ENQUEUE_SPILL,
                req.req_id,
                vm.vm_id,
                -1,
                vm.queue.pending(),
            )
        self._work_available(vm)

    def _work_available_fast(self, vm: PrimaryVm) -> None:
        """Fast-path arbitration off the per-VM descriptor.

        Runs on every enqueue and every I/O completion, so it works off
        the per-VM descriptor (bound queue methods, core list) and scans
        the core list once per decision instead of materializing
        idle/loaned/available sublists.  Decision-identical to
        :meth:`_work_available_ref` (first idle in core order ==
        ``idle_cores()[0]``, etc.); the parity pins prove it.
        """
        _queue, has_ready, _deq, ready_count, ready_steered, cores = (
            self._vm_desc[vm.vm_id]
        )
        if not has_ready():
            return
        if not self.per_core_steering:
            # Shared per-VM subqueue: any idle bound core serves the head
            # (first idle in core order == old ``idle_cores()[0]``).
            for c in cores:
                if c.state == IDLE and not c.on_loan:
                    self._start_dispatch(c, vm)
                    return
            for c in cores:
                if c.on_loan and c.state != SWITCHING:
                    self._start_reclaim(vm, c)
                    return
            return

        # Per-core steering: each ready request waits for *its* core.
        stuck_on_loan = []
        all_cores = self.cores
        for core_id in ready_steered():
            core = all_cores[core_id]
            if core.state == IDLE and not core.on_loan and core.guest_vm_id is None:
                self._start_dispatch(core, vm)
            elif core.on_loan:
                stuck_on_loan.append(core)
        if stuck_on_loan:
            # A request is stranded on a harvested core. SmartHarvest's fast
            # path: attach an emergency-buffer core; only if the buffer is
            # exhausted does the slow reclaim start.
            if not self._borrow_buffer_core(vm):
                for core in stuck_on_loan:
                    if core.state != SWITCHING:
                        self._start_reclaim(vm, core)
                        break
        # Queue pressure: more ready work than attached cores while some
        # cores are on loan — expand capacity by reclaiming.
        available = 0
        for c in cores:
            if not c.on_loan and c.guest_vm_id is None:
                available += 1
        if ready_count() > available:
            for c in cores:
                if c.on_loan and c.state != SWITCHING:
                    self._start_reclaim(vm, c)
                    break

    def _work_available_ref(self, vm: PrimaryVm) -> None:
        """The kept reference arbitration (``REPRO_SCHED_SLOWPATH=1``):
        materializes the idle/loaned/available sublists per decision, as
        the pre-fast-path scheduler did."""
        if not vm.queue.has_ready():
            return
        if not self.per_core_steering:
            # Shared per-VM subqueue: any idle bound core serves the head.
            idle = vm.idle_cores()
            if idle:
                self._start_dispatch(idle[0], vm)
                return
            loaned = [c for c in vm.loaned_cores() if c.state != SWITCHING]
            if loaned:
                self._start_reclaim(vm, loaned[0])
            return

        # Per-core steering: each ready request waits for *its* core.
        stuck_on_loan = []
        for core_id in vm.queue.ready_steered_cores():
            core = self.cores[core_id]
            if core.state == IDLE and not core.on_loan and core.guest_vm_id is None:
                self._start_dispatch(core, vm)
            elif core.on_loan:
                stuck_on_loan.append(core)
        if stuck_on_loan:
            if not self._borrow_buffer_core(vm):
                for core in stuck_on_loan:
                    if core.state != SWITCHING:
                        self._start_reclaim(vm, core)
                        break
        # Queue pressure: more ready work than attached cores while some
        # cores are on loan — expand capacity by reclaiming.
        available = [
            c for c in vm.cores if not c.on_loan and c.guest_vm_id is None
        ]
        if vm.queue.ready_count() > len(available):
            loaned = [c for c in vm.loaned_cores() if c.state != SWITCHING]
            if loaned:
                self._start_reclaim(vm, loaned[0])

    def _borrow_buffer_core(self, vm: PrimaryVm) -> bool:
        """Attach an idle buffer core from another Primary VM to ``vm``.

        The buffer is small by construction: at most
        ``emergency_buffer_cores`` may be attached as guests at once —
        that is the whole point of it being an *emergency* buffer.
        """
        in_use = sum(1 for c in self.cores if c.guest_vm_id is not None)
        if in_use >= self.system.smartharvest.emergency_buffer_cores:
            return False
        for donor in self.primary_vms:
            if donor.vm_id == vm.vm_id or donor.queue.has_ready():
                continue
            for core in donor.cores:
                if (
                    core.state == IDLE
                    and not core.on_loan
                    and core.guest_vm_id is None
                ):
                    self._start_guest_dispatch(core, vm, attach=True)
                    return True
        return False

    def _start_guest_dispatch(self, core: Core, vm: PrimaryVm, attach: bool) -> None:
        """Dispatch one of ``vm``'s requests on a borrowed buffer core."""
        req = vm.queue.dequeue()
        if req is None:
            return
        core.state = SWITCHING
        core.idle_cause = None
        core.current_request = req
        if attach:
            core.guest_vm_id = vm.vm_id
            delay = self.system.smartharvest.buffer_attach_ns
            req.breakdown.reassign_ns += delay
            self._counts["buffer_borrows"] += 1
        else:
            delay = self.costs.dispatch_ns(self._costs_rng)
        req.breakdown.queueing_ns += self.sim.now - req.ready_since_ns + delay
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.sim.now, trc.REQ_DISPATCH, req.req_id, vm.vm_id,
                core.core_id, delay,
            )
        core.run_event = self.sim.schedule(delay, self._dispatch_done, core, vm, req)

    def _loaned_core_ids(self, vm: PrimaryVm) -> set:
        return {c.core_id for c in vm.cores if c.on_loan}

    def _start_dispatch(self, core: Core, vm: PrimaryVm, steal: bool = False) -> None:
        if steal:
            # Stealing may not touch work stranded on loaned cores: the OS
            # keeps those threads on their (descheduled) vCPU runqueues.
            req = vm.queue.dequeue(None, exclude_steered_to=self._loaned_core_ids(vm))
        else:
            req = vm.queue.dequeue(core.core_id if self.per_core_steering else None)
        if req is None:
            return
        core.state = SWITCHING
        core.idle_cause = None
        core.current_request = req
        delay = self.costs.dispatch_ns(self._costs_rng)
        if steal:
            # OS load balancing: pulling work steered to a sibling core.
            delay += self.system.software_costs.rebalance_ns
        queue_wait = self.sim.now - req.ready_since_ns
        req.breakdown.queueing_ns += queue_wait + delay
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.sim.now, trc.REQ_DISPATCH, req.req_id, vm.vm_id,
                core.core_id, delay,
            )
        core.run_event = self.sim.schedule(delay, self._dispatch_done, core, vm, req)

    def _dispatch_done(self, core: Core, vm: PrimaryVm, req: Request) -> None:
        core.run_event = None
        if req.failed:
            # Abandoned (timeout/crash) while the dispatch was in flight.
            core.current_request = None
            vm.queue.discard(req)
            self._core_released(core, "term")
            return
        if req.context_slot is not None and self.controller is not None:
            # Resume from I/O: restore the parked register state.
            self.controller.context_memory.restore(req.context_slot)
            req.context_slot = None
        reassign, flush = core.take_pending_costs()
        req.breakdown.reassign_ns += reassign
        req.breakdown.flush_ns += flush
        if req.first_start_ns is None:
            req.first_start_ns = self.sim.now
        core.state = BUSY
        self._enter_busy()
        tr = self.tracer
        if tr is not None:
            tr.emit(self.sim.now, trc.REQ_EXEC, req.req_id, vm.vm_id, core.core_id)
        self._run_segment(core, vm, req)

    # ==================================================================
    # Execution
    # ==================================================================
    def _segment_duration_ns(self, core: Core, vm: PrimaryVm, req: Request) -> int:
        n = self.simcfg.accesses_per_segment
        batch = vm.memory.sample(self._mem_rng, n, req.private_region)
        l2 = core.memory.l2.array
        h0, a0 = l2.hits, l2.accesses
        now = self.sim.now
        if self._mem_fastpath:
            total_ns = core.memory.access_batch(batch, vm.llc, True, now)
        else:
            total_ns = 0
            access = core.memory.access
            for addr, shared, instr, write in batch:
                total_ns += access(addr, shared, instr, vm.llc, True, now, write)
        self.l2_primary_hits += l2.hits - h0
        self.l2_primary_accesses += l2.accesses - a0
        l_avg = total_ns / max(1, n)
        seg_cpu_ns = req.seg_cpu_ns
        refs = vm.profile.mem_refs_per_us * (seg_cpu_ns / 1000.0)
        return seg_cpu_ns + int(l_avg * refs)

    def _run_segment(self, core: Core, vm: PrimaryVm, req: Request) -> None:
        duration = self._segment_duration_ns(core, vm, req)
        if self.injector is not None:
            duration = int(duration * self.injector.slowdown_factor(core.core_id))
        req.breakdown.execution_ns += duration
        core.run_event = self.sim.schedule(
            duration, self._segment_done, core, vm, req
        )

    def _segment_done(self, core: Core, vm: PrimaryVm, req: Request) -> None:
        core.run_event = None
        if req.failed:
            # The attempt was abandoned mid-segment; drop the result.
            core.current_request = None
            self._leave_busy()
            vm.queue.discard(req)
            self._core_released(core, "term")
            return
        req.segments_done += 1
        core.current_request = None
        self._leave_busy()
        if req.blocks_remaining >= 0 and req.segments_done < req.segments_total:
            # Block on I/O: the entry stays in the queue, marked blocked;
            # with hardware context switching, the request's register state
            # parks in the Request Context Memory until the response.
            vm.queue.mark_blocked(req)
            if self.controller is not None and self.system.flags.ctxtsw:
                req.context_slot = self.controller.context_memory.save(
                    SavedContext(
                        request=req.req_id,
                        vm_id=vm.vm_id,
                        program_counter=req.segments_done,
                    )
                )
            demand_ns = req.io_durations_ns[req.segments_done - 1]
            tr = self.tracer
            if tr is not None:
                tr.emit(
                    self.sim.now, trc.REQ_BLOCK, req.req_id, vm.vm_id,
                    core.core_id, demand_ns,
                )
            rt = self.system.cluster.inter_server_rt_ns
            observe = getattr(self.agent, "observe_block", None)
            if observe is not None:
                observe(vm.vm_id, demand_ns + rt)
            self._issue_backend_call(vm, req, demand_ns, rt)
            self._core_released(core, "block")
        else:
            vm.queue.complete(req)
            req.completion_ns = self.sim.now
            tr = self.tracer
            if tr is not None:
                tr.emit(
                    self.sim.now, trc.REQ_COMPLETE, req.req_id, vm.vm_id,
                    core.core_id, vm.queue.pending(),
                )
            if self.client is not None:
                # The client dedupes hedges/retries and supplies the
                # logical (first-arrival to now) latency.
                counted, lat = self.client.on_complete(vm, req)
                if counted:
                    self.latency[vm.name].record(lat)
                    self.latency_all.record(lat)
                    self.breakdowns.record(vm.name, req.breakdown)
                    self._counts["requests_measured"] += 1
            else:
                if req.measured:
                    lat = req.latency_ns()
                    self.latency[vm.name].record(lat)
                    self.latency_all.record(lat)
                    self.breakdowns.record(vm.name, req.breakdown)
                    self._counts["requests_measured"] += 1
                self._logical_resolved()
            self._core_released(core, "term")

    def _issue_backend_call(
        self, vm: PrimaryVm, req: Request, demand_ns: int, rt: int
    ) -> None:
        """Route a blocking call to its backend server (Figure 1's Cache /
        Database helpers): half the network RT out, queue + execute on the
        backend, half the RT back, then the response marks the request
        ready via the NIC path."""
        backend = self.backends.for_service(vm.profile.name)

        def respond() -> None:
            self.sim.schedule(rt - rt // 2, self._io_complete, vm, req)

        self.sim.schedule(
            rt // 2, backend.submit, max(1, demand_ns), respond
        )

    def _io_complete(self, vm: PrimaryVm, req: Request) -> None:
        if req.failed:
            return  # abandoned while blocked; its entry is already gone
        vm.queue.mark_ready(req)
        req.ready_since_ns = self.sim.now
        tr = self.tracer
        if tr is not None:
            tr.emit(self.sim.now, trc.REQ_READY, req.req_id, vm.vm_id)
        self._work_available(vm)

    def _core_released(self, core: Core, cause: str) -> None:
        if self.injector is not None and self.injector.is_stalled(core):
            # Core-stall fault: finish cleanup, then park until the window
            # ends (the injector resumes us via _resume_stalled).
            if core.guest_vm_id is not None:
                core.memory.flush_private_full()
                core.guest_vm_id = None
                self._counts["buffer_returns"] += 1
            core.state = STALLED
            core.idle_cause = cause
            core.idle_since = self.sim.now
            return
        if core.guest_vm_id is not None:
            guest = self.vms_by_id[core.guest_vm_id]
            owner_vm = self.vms_by_id.get(core.owner_vm_id)
            if guest.queue.has_ready() and not (
                isinstance(owner_vm, PrimaryVm)
                and owner_vm.queue.has_ready(
                    core.core_id if self.per_core_steering else None
                )
            ):
                # Keep serving the borrowing VM while it has work and the
                # owner does not need the core.
                self._start_guest_dispatch(core, guest, attach=False)
                return
            # Return to owner: scrub the private state (the buffer keeps
            # cores clean; the flush runs while the core is idle).
            core.memory.flush_private_full()
            core.guest_vm_id = None
            self._counts["buffer_returns"] += 1
        core.state = IDLE
        core.idle_cause = cause
        core.idle_since = self.sim.now
        owner = self.vms_by_id.get(core.owner_vm_id)
        if isinstance(owner, PrimaryVm):
            if owner.queue.has_ready(
                core.core_id if self.per_core_steering else None
            ):
                self._start_dispatch(core, owner)
                return
            if self.per_core_steering and owner.queue.has_ready(
                None, exclude_steered_to=self._loaned_core_ids(owner)
            ):
                # Idle with work queued at a sibling (attached) core: steal
                # it after the OS rebalance latency.
                self._start_dispatch(core, owner, steal=True)
                return
            if self.injector is not None and self.injector.server_down:
                return  # dark server: nothing to lend or serve
            if self.agent.on_core_idle(core, cause):
                self._start_lend(core)
        elif isinstance(owner, HarvestVm):
            if owner.active:
                self._start_batch_unit(core)

    def _resume_stalled(self, core: Core) -> None:
        """A core-stall window ended: put the core back to work."""
        if core.state != STALLED:
            return
        core.state = IDLE
        if core.on_loan:
            owner = self.vms_by_id.get(core.owner_vm_id)
            if isinstance(owner, PrimaryVm) and owner.queue.has_ready(
                core.core_id if self.per_core_steering else None
            ):
                self._start_reclaim(owner, core)
            else:
                self._start_batch_unit(core)
            return
        self._core_released(core, "term")

    # ==================================================================
    # Lending (Primary -> Harvest)
    # ==================================================================
    def start_lend(self, core: Core) -> None:
        """Public entry for agents (e.g. the SmartHarvest monitor)."""
        if core.state != IDLE or core.on_loan or core.guest_vm_id is not None:
            return
        if self.injector is not None and self.injector.server_down:
            return
        owner = self.vms_by_id.get(core.owner_vm_id)
        if not isinstance(owner, PrimaryVm) or owner.queue.has_ready(
            core.core_id if self.per_core_steering else None
        ):
            return
        self._start_lend(core)

    def _start_lend(self, core: Core) -> None:
        owner = self.vms_by_id[core.owner_vm_id]
        cost = self.costs.lend_cost(core.memory)
        core.state = SWITCHING
        core.on_loan = True
        core.loan_start_ns = self.sim.now
        self._counts["lends"] += 1
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.sim.now, trc.CORE_LEND, -1, core.owner_vm_id,
                core.core_id, cost.critical_ns,
            )
        if self.controller is not None:
            self.controller.qm_for(owner.vm_id).lend_core(core.core_id)
        core.run_event = self.sim.schedule(
            cost.critical_ns, self._lend_done, core, cost.flush
        )

    def _pick_harvest_vm(self) -> HarvestVm:
        """Round-robin lend target among the server's Harvest VMs."""
        vm = self.harvest_vms[self._lend_rr % len(self.harvest_vms)]
        self._lend_rr += 1
        return vm

    def _harvest_vm_of(self, core: Core) -> HarvestVm:
        """The Harvest VM whose work is (or will be) running on ``core``."""
        vm = self.vms_by_id.get(core.running_vm_id)
        if isinstance(vm, HarvestVm):
            return vm
        owner = self.vms_by_id.get(core.owner_vm_id)
        if isinstance(owner, HarvestVm):
            return owner
        return self.harvest_vm

    def _lend_done(self, core: Core, flush) -> None:
        core.run_event = None
        flushed = flush()
        self._counts["lend_flushed_entries"] += flushed
        target = self._pick_harvest_vm()
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.sim.now, trc.CORE_LEND_DONE, -1, target.vm_id,
                core.core_id, flushed,
            )
        core.running_vm_id = target.vm_id
        self._load_vm_state(core, target.vm_id)
        owner = self.vms_by_id[core.owner_vm_id]
        if owner.queue.has_ready(
            core.core_id if self.per_core_steering else None
        ):
            # Work arrived during the transition: bounce straight back.
            self._start_reclaim(owner, core)
            return
        if target.active:
            self._start_batch_unit(core)
        else:
            core.state = IDLE
            core.idle_cause = None

    # ==================================================================
    # Batch execution on the Harvest VM
    # ==================================================================
    def _batch_unit_duration_ns(self, core: Core, hvm: HarvestVm) -> int:
        job = hvm.job
        n = max(8, self.simcfg.accesses_per_segment // 2)
        batch = hvm.memory.sample(self._batchmem_rng, n)
        l2 = core.memory.l2.array
        h0, a0 = l2.hits, l2.accesses
        now = self.sim.now
        is_primary_view = not core.on_loan  # own cores see full structures
        if self._mem_fastpath:
            total_ns = core.memory.access_batch(batch, hvm.llc, is_primary_view, now)
        else:
            total_ns = 0
            access = core.memory.access
            for addr, shared, instr, write in batch:
                total_ns += access(
                    addr, shared, instr, hvm.llc, is_primary_view, now, write
                )
        self.l2_batch_hits += l2.hits - h0
        self.l2_batch_accesses += l2.accesses - a0
        l_avg = total_ns / n
        cpu_ns = int(job.unit_us * 1000)
        refs = job.mem_refs_per_us * job.unit_us
        base = cpu_ns + int(l_avg * refs)
        # Sublinear scaling: coordination costs grow with active batch cores.
        if self._sched_fastpath:
            active = self._active_batch_cores
        else:
            # Reference: scan every core (the counter above mirrors this).
            active = 0
            for c in self.cores:
                if c.state == BUSY and c.batch_event is not None:
                    active += 1
        return int(base * (1.0 + job.sync_overhead * active))

    def _start_batch_unit(self, core: Core) -> None:
        if self.injector is not None:
            if self.injector.server_down:
                core.state = IDLE
                return
            if self.injector.is_stalled(core):
                core.state = STALLED
                core.idle_since = self.sim.now
                return
        hvm = self._harvest_vm_of(core)
        if not hvm.active:
            core.state = IDLE
            return
        unit = hvm.next_unit()
        if unit.context_slot is not None and self.controller is not None:
            # Hardware context switch: restore the preempted vCPU state
            # from the Request Context Memory (Section 4.1.4).
            self.controller.context_memory.restore(unit.context_slot)
            unit.context_slot = None
        duration = int(
            self._batch_unit_duration_ns(core, hvm) * unit.remaining_frac
        )
        if self.injector is not None:
            duration = int(duration * self.injector.slowdown_factor(core.core_id))
        duration = max(1, duration)
        core.state = BUSY
        core.batch_unit_start_ns = self.sim.now
        core.batch_unit_duration_ns = duration
        core.batch_unit_remaining_tag = unit.remaining_frac
        self._enter_busy()
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.sim.now, trc.BATCH_START, -1, hvm.vm_id,
                core.core_id, duration,
            )
        core.batch_event = self.sim.schedule(
            duration, self._batch_unit_done, core, unit.remaining_frac
        )
        self._active_batch_cores += 1

    def _batch_unit_done(self, core: Core, frac: float) -> None:
        hvm = self._harvest_vm_of(core)
        hvm.units_completed += frac
        core.batch_event = None
        self._active_batch_cores -= 1
        self._leave_busy()
        tr = self.tracer
        if tr is not None:
            tr.emit(self.sim.now, trc.BATCH_DONE, -1, hvm.vm_id, core.core_id)
        if self.injector is not None and self.injector.is_stalled(core):
            core.state = STALLED
            core.idle_since = self.sim.now
            return
        owner = self.vms_by_id.get(core.owner_vm_id)
        if (
            core.on_loan
            and isinstance(owner, PrimaryVm)
            and owner.queue.has_ready(
                core.core_id if self.per_core_steering else None
            )
        ):
            self._start_reclaim(owner, core)
            return
        self._start_batch_unit(core)

    def _load_vm_state(self, core: Core, vm_id: int) -> None:
        """Load the VM State Register Set of ``vm_id`` onto the core
        (hardware systems: the QM ships the set with the reassignment)."""
        if self.controller is None:
            return
        core.loaded_cr3 = self.controller.qm_for(vm_id).state_registers.read("CR3")

    # ==================================================================
    # Reclamation (Harvest -> Primary)
    # ==================================================================
    def _start_reclaim(self, vm: PrimaryVm, core: Core) -> None:
        """Interrupt a loaned core and return it to its Primary VM."""
        if core.batch_event is not None:
            # Preempt the in-flight batch unit.
            core.batch_event.cancel()
            core.batch_event = None
            self._active_batch_cores -= 1
            elapsed = self.sim.now - core.batch_unit_start_ns
            duration = max(1, core.batch_unit_duration_ns)
            done_frac = min(1.0, elapsed / duration)
            started_frac = core.batch_unit_remaining_tag or 1.0
            remaining = max(0.0, started_frac * (1.0 - done_frac))
            preserved = self.system.flags.ctxtsw
            hvm = self._harvest_vm_of(core)
            if preserved:
                hvm.units_completed += started_frac - remaining
                slot = None
                if remaining > 0 and self.controller is not None:
                    # Save the preempted vCPU's state in hardware
                    # (Figure 8c step 4); restored when the unit resumes.
                    slot = self.controller.context_memory.save(
                        SavedContext(
                            request=f"batch@core{core.core_id}",
                            vm_id=hvm.vm_id,
                            program_counter=int(remaining * 1e6),
                        )
                    )
                hvm.return_partial(
                    0.0 if remaining <= 0 else remaining, True, 0, slot
                )
            else:
                hvm.return_partial(started_frac, False, int(elapsed))
            self._leave_busy()
            tr = self.tracer
            if tr is not None:
                tr.emit(
                    self.sim.now, trc.BATCH_PREEMPT, -1, hvm.vm_id,
                    core.core_id, int(elapsed),
                )
        core.state = SWITCHING
        core.reclaim_in_flight = True
        self._counts["reclaims"] += 1
        cost = self.costs.reclaim_cost(core.memory, self._costs_rng)
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.sim.now, trc.CORE_RECLAIM, -1, vm.vm_id,
                core.core_id, cost.critical_ns,
            )
        core.pending_reassign_ns = cost.reassign_ns
        core.pending_flush_ns = cost.flush_ns
        core.run_event = self.sim.schedule(
            cost.critical_ns, self._reclaim_done, core, cost.flush
        )

    def _reclaim_done(self, core: Core, flush) -> None:
        core.run_event = None
        flushed = flush()
        self._counts["reclaim_flushed_entries"] += flushed
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.sim.now, trc.CORE_RECLAIM_DONE, -1, core.owner_vm_id,
                core.core_id, flushed,
            )
        core.on_loan = False
        core.reclaim_in_flight = False
        core.running_vm_id = core.owner_vm_id
        self._load_vm_state(core, core.owner_vm_id)
        owner = self.vms_by_id[core.owner_vm_id]
        if self.controller is not None:
            qm = self.controller.qm_for(owner.vm_id)
            if core.core_id in qm.on_loan:
                qm.reclaim_core(core.core_id)
        # Back in the Primary VM: dispatch if work remains, else the core is
        # idle (and, per Section 4.1.4, immediately lendable again).
        self._core_released(core, "term")

    # ==================================================================
    # Fault handling (driven by the FaultInjector / ClientRuntime)
    # ==================================================================
    def _next_attempt_id(self) -> int:
        """Fresh request id for a client retry/hedge attempt."""
        rid = self._next_req_id
        self._next_req_id += 1
        return rid

    def _logical_resolved(self) -> None:
        """One logical request reached a terminal state (completed, lost,
        or permanently failed); the run ends when all of them have."""
        self._completions += 1
        if self._completions >= self._target_completions:
            self._finished = True
            self.sim.stop()

    def _fail_attempt(self, vm: PrimaryVm, req: Request) -> None:
        """Abandon an attempt: scrub its queue entry and context slot.

        Idempotent. With a client, resolution is the client's job (the
        deadline timer will fire and drive a retry or a permanent failure);
        without one, the request is simply lost and resolved here.
        """
        if req.failed or req.completion_ns is not None:
            return
        req.failed = True
        if req.context_slot is not None and self.controller is not None:
            try:
                self.controller.context_memory.restore(req.context_slot)
            except KeyError:
                pass
            req.context_slot = None
        discarded = vm.queue.discard(req)
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.sim.now, trc.REQ_FAIL, req.req_id, vm.vm_id, -1,
                vm.queue.pending() if discarded else -1,
            )
        if self.client is None:
            self.counters.incr("requests_lost")
            self._logical_resolved()

    def _crash_begin(self) -> None:
        """SERVER_CRASH window opens: every in-flight request, queued
        entry, and batch unit on this server dies; cores reset clean."""
        self.counters.incr("faults_crashes")
        now = self.sim.now
        tr = self.tracer
        if tr is not None:
            tr.emit(now, trc.SERVER_CRASH)
        for core in self.cores:
            if core.run_event is not None:
                core.run_event.cancel()
                core.run_event = None
            if core.batch_event is not None:
                core.batch_event.cancel()
                core.batch_event = None
                self._active_batch_cores -= 1
                self._harvest_vm_of(core).work_lost_ns += max(
                    0, now - core.batch_unit_start_ns
                )
            req = core.current_request
            if req is not None:
                core.current_request = None
                self._fail_attempt(self.vms_by_id[req.vm_id], req)
            core.state = IDLE
            core.idle_cause = "term"
            core.idle_since = now
            core.on_loan = False
            core.reclaim_in_flight = False
            core.guest_vm_id = None
            core.running_vm_id = core.owner_vm_id
            core.pending_reassign_ns = 0
            core.pending_flush_ns = 0
            core.batch_unit_remaining_tag = None
        self._busy = 0
        self.util.set_busy(now, 0)
        for vm in self.primary_vms:
            for req in vm.queue.drain():
                self._fail_attempt(vm, req)
        if self.controller is not None:
            for qm in self.controller.qms.values():
                for core_id in list(qm.on_loan):
                    qm.reclaim_core(core_id)
            for hvm in self.harvest_vms:
                for unit in hvm.partial_units:
                    if unit.context_slot is not None:
                        try:
                            self.controller.context_memory.restore(
                                unit.context_slot
                            )
                        except KeyError:
                            pass
        for hvm in self.harvest_vms:
            hvm.partial_units.clear()
        if self.injector is not None:
            # A concurrently active stall window keeps its cores parked
            # through the restart.
            for core in self.cores:
                if self.injector.is_stalled(core):
                    core.state = STALLED

    def _crash_end(self) -> None:
        """SERVER_CRASH window closes: the server restarts clean and
        resumes serving (new arrivals + client retries) and batching."""
        self.counters.incr("faults_restarts")
        tr = self.tracer
        if tr is not None:
            tr.emit(self.sim.now, trc.SERVER_RESTART)
        for hvm in self.harvest_vms:
            if hvm.active:
                for core in hvm.cores:
                    if core.state == IDLE:
                        self._start_batch_unit(core)
        for vm in self.primary_vms:
            self._work_available(vm)

    def resilience_summary(self) -> Dict[str, float]:
        """Degradation metrics (goodput, retry amplification, SLO violation
        rate, time-to-recovery) when faults and/or a client are configured;
        empty for plain runs."""
        if self.client is not None:
            return self.client.summary(self.end_ns)
        if self.injector is not None:
            offered = float(self._target_completions)
            lost = float(self.counters["requests_lost"])
            completed = offered - lost
            return {
                "offered": offered,
                "completed": completed,
                "failed": lost,
                "goodput": completed / max(1.0, offered),
            }
        return {}

    # ==================================================================
    # Results
    # ==================================================================
    def p99_ms(self, service: Optional[str] = None) -> float:
        rec = self.latency_all if service is None else self.latency[service]
        return rec.p99() / 1e6

    def p50_ms(self, service: Optional[str] = None) -> float:
        rec = self.latency_all if service is None else self.latency[service]
        return rec.p50() / 1e6

    def average_busy_cores(self) -> float:
        return self.util.average_busy(self.end_ns)

    def batch_throughput_per_s(self) -> float:
        total = sum(h.units_completed for h in self.harvest_vms)
        return total / (self.end_ns / SEC)

    def l2_primary_hit_rate(self) -> float:
        if self.l2_primary_accesses == 0:
            return 0.0
        return self.l2_primary_hits / self.l2_primary_accesses

    def l2_batch_hit_rate(self) -> float:
        if self.l2_batch_accesses == 0:
            return 0.0
        return self.l2_batch_hits / self.l2_batch_accesses
