"""NIC model: the request arrival path (Section 4.1.3, Figure 8a).

The NIC receives a packet, deposits the payload into the LLC via DDIO,
looks up which Queue Manager serves the destination VM, and notifies it.
For software systems the same path ends in a memory-mapped queue instead.

The model charges a small fixed latency for the NIC-to-queue path and warms
the destination VM's LLC partition with the payload lines (DDIO's effect),
then hands the request to the engine's arrival logic.
"""

from __future__ import annotations

from typing import Callable

from repro.mem.cache import Cache
from repro.mem.partition import full_mask

#: NIC processing + DDIO deposit + QM notification.
ARRIVAL_PATH_NS = 600
#: Payload cache lines deposited per request (DDIO).
PAYLOAD_LINES = 8


class Nic:
    """Per-server NIC with a DDIO payload-deposit model."""

    def __init__(self) -> None:
        self.packets_received = 0
        self.payload_bytes = 0

    def deliver(self, llc: Cache, payload_base_addr: int, enqueue: Callable[[], None]) -> int:
        """Deposit a request payload and enqueue its pointer.

        Returns the arrival-path latency the engine should charge before the
        request becomes visible in the queue.
        """
        self.packets_received += 1
        self.payload_bytes += PAYLOAD_LINES * llc.line_bytes
        allowed = full_mask(llc.array.ways)
        for i in range(PAYLOAD_LINES):
            llc.access(payload_base_addr + i * llc.line_bytes, False, allowed)
        enqueue()
        return ARRIVAL_PATH_NS
