"""Virtual machines: Primary (latency-critical services) and Harvest (batch).

Primary VMs are created with a fixed core allocation and a request queue —
either a HardHarvest Queue Manager (hardware systems) or a
:class:`SoftwareQueue` with the same interface (software systems, where the
queue lives in memory and is polled).

The Harvest VM starts with its base cores and grows by harvesting. Its
batch workload is an endless stream of work units; preempted units either
re-enter the partial-unit pool (hardware context switching preserves the
vCPU state — Section 4.1.5's "the process ... is returned to the queue of
the Harvest VM vCPUs") or restart from scratch (software preemption).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.cluster.core import Core
from repro.hw.request_queue import (
    CODE_READY,
    CODE_RUNNING,
    RequestStatus,
    Subqueue,
)
from repro.hw.sched_kernels import NUMPY_SCAN_MIN, ready_positions
from repro.sim.engine import sched_slowpath_enabled
from repro.workloads.batch import BatchJobProfile
from repro.workloads.memory_profile import BatchMemory, ServiceMemory
from repro.workloads.microservices import ServiceProfile


class SoftwareQueue:
    """Memory-mapped request queues with QueueManager-compatible methods.

    Unlike HardHarvest's shared per-VM subqueue, a software stack steers
    each request to a specific core (RSS hashing onto per-vCPU queues);
    requests wait for *their* core — the head-of-line blocking that
    in-hardware request scheduling removes (Section 4.1.6), and the reason
    a harvested core's reassignment latency lands directly on the requests
    steered to it.

    Steering is read from the request's ``steered_core_id`` attribute
    (``None`` = unsteered; matches any core). Built on the same
    :class:`~repro.hw.request_queue.Subqueue` semantics (FIFO with in-place
    blocked entries) but effectively unbounded, like a queue in DRAM.
    """

    def __init__(self, vm_id: int):
        self._sq = Subqueue(vm_id, entries_per_chunk=1 << 30)
        self._sq.grant_chunk(0)
        #: Fast/slow scan choice, made once like the subqueue's own
        #: (``REPRO_SCHED_SLOWPATH=1`` keeps the reference object walks).
        self._fast = not sched_slowpath_enabled()

    @staticmethod
    def _steering(request: object) -> Optional[int]:
        return getattr(request, "steered_core_id", None)

    def enqueue(self, request: object) -> bool:
        return self._sq.enqueue(request)

    def _ready_indices(self):
        """Iterator of READY entry positions, oldest first.

        ``memchr`` steps through the status-code mirror for shallow queues;
        deep queues (software per-core queues under overload) batch the
        whole scan through the NumPy kernel first.
        """
        codes = self._sq._codes
        if len(codes) >= NUMPY_SCAN_MIN:
            return iter(ready_positions(codes))

        def gen():
            find = codes.find
            i = find(CODE_READY)
            while i >= 0:
                yield i
                i = find(CODE_READY, i + 1)

        return gen()

    def dequeue(
        self,
        core_id: Optional[int] = None,
        exclude_steered_to: Optional[set] = None,
    ) -> Optional[object]:
        """Oldest READY request steered to ``core_id`` (or any, if None).

        ``exclude_steered_to`` skips requests stranded on those cores (used
        by the steal path: the OS will not migrate a thread pinned to a
        vCPU just because that vCPU is temporarily descheduled).
        """
        sq = self._sq
        if self._fast:
            if not sq._ready_count:
                return None
            entries = sq.entries
            for i in self._ready_indices():
                entry = entries[i]
                steer = getattr(entry.request, "steered_core_id", None)
                if exclude_steered_to and steer in exclude_steered_to:
                    continue
                if core_id is None or steer is None or steer == core_id:
                    entry.status = RequestStatus.RUNNING
                    sq._codes[i] = CODE_RUNNING
                    sq._ready_count -= 1
                    return entry.request
            return None
        # Reference: linear walk over the entry objects.
        for i, entry in enumerate(sq.entries):
            if entry.status is RequestStatus.READY:
                steer = self._steering(entry.request)
                if exclude_steered_to and steer in exclude_steered_to:
                    continue
                if core_id is None or steer is None or steer == core_id:
                    entry.status = RequestStatus.RUNNING
                    sq._codes[i] = CODE_RUNNING
                    sq._ready_count -= 1
                    return entry.request
        return None

    def has_ready(
        self,
        core_id: Optional[int] = None,
        exclude_steered_to: Optional[set] = None,
    ) -> bool:
        sq = self._sq
        if self._fast:
            if not sq._ready_count:
                return False
            if core_id is None and not exclude_steered_to:
                return True
            entries = sq.entries
            for i in self._ready_indices():
                steer = getattr(entries[i].request, "steered_core_id", None)
                if exclude_steered_to and steer in exclude_steered_to:
                    continue
                if core_id is None or steer is None or steer == core_id:
                    return True
            return False
        for entry in sq.entries:
            if entry.status is RequestStatus.READY:
                steer = self._steering(entry.request)
                if exclude_steered_to and steer in exclude_steered_to:
                    continue
                if core_id is None or steer is None or steer == core_id:
                    return True
        return False

    def ready_steered_cores(self) -> List[int]:
        """Distinct steering targets of READY requests, FIFO order."""
        sq = self._sq
        if self._fast:
            if not sq._ready_count:
                return []
            entries = sq.entries
            seen: List[int] = []
            for i in self._ready_indices():
                steer = getattr(entries[i].request, "steered_core_id", None)
                if steer is not None and steer not in seen:
                    seen.append(steer)
            return seen
        seen = []
        for entry in sq.entries:
            if entry.status is RequestStatus.READY:
                steer = self._steering(entry.request)
                if steer is not None and steer not in seen:
                    seen.append(steer)
        return seen

    def ready_count(self) -> int:
        return self._sq.ready_count()

    def mark_blocked(self, request: object) -> None:
        self._sq.mark_blocked(request)

    def mark_ready(self, request: object) -> None:
        self._sq.mark_ready(request)

    def requeue(self, request: object) -> None:
        self._sq.requeue_ready(request)

    def complete(self, request: object) -> None:
        self._sq.complete(request)

    def discard(self, request: object) -> bool:
        return self._sq.discard(request)

    def drain(self) -> List[object]:
        return self._sq.drain()

    def pending(self) -> int:
        return self._sq.total_pending()

    def occupancy(self):
        return self._sq.occupancy()


class SharedQueueAdapter:
    """Adapter giving a HardHarvest QueueManager the core-aware interface.

    The hardware subqueue is shared within the VM, so steering arguments
    are accepted and ignored (any bound core may dequeue any request).
    """

    def __init__(self, qm):
        self.qm = qm

    def enqueue(self, request: object) -> bool:
        return self.qm.enqueue(request)

    def dequeue(self, core_id=None, exclude_steered_to=None) -> Optional[object]:
        return self.qm.dequeue()

    def has_ready(self, core_id=None, exclude_steered_to=None) -> bool:
        return self.qm.has_ready()

    def ready_steered_cores(self) -> List[int]:
        return []

    def ready_count(self) -> int:
        return self.qm.subqueue.ready_count()

    def mark_blocked(self, request: object) -> None:
        self.qm.mark_blocked(request)

    def mark_ready(self, request: object) -> None:
        self.qm.mark_ready(request)

    def requeue(self, request: object) -> None:
        self.qm.requeue(request)

    def complete(self, request: object) -> None:
        self.qm.complete(request)

    def discard(self, request: object) -> bool:
        return self.qm.subqueue.discard(request)

    def drain(self) -> List[object]:
        return self.qm.subqueue.drain()

    def pending(self) -> int:
        return self.qm.pending()

    def occupancy(self):
        return self.qm.subqueue.occupancy()


class PrimaryVm:
    """A latency-critical VM running one microservice."""

    def __init__(
        self,
        vm_id: int,
        profile: ServiceProfile,
        memory: ServiceMemory,
        llc,
        queue,
    ):
        self.vm_id = vm_id
        self.profile = profile
        self.memory = memory
        self.llc = llc
        self.queue = queue
        self.cores: List[Core] = []
        #: Round-robin steering cursor (software per-core queues / RSS).
        self.rr_cursor = 0

    @property
    def name(self) -> str:
        return self.profile.name

    def idle_cores(self) -> List[Core]:
        return [c for c in self.cores if c.state == "idle" and not c.on_loan]

    def loaned_cores(self) -> List[Core]:
        return [c for c in self.cores if c.on_loan]


class BatchUnit:
    """One unit of batch work; ``remaining_frac`` < 1 for resumed units.

    ``context_slot`` points at the saved register state in the Request
    Context Memory when the unit was preempted mid-flight by a hardware
    context switch (Section 4.1.4); it is restored when a core resumes
    the unit.
    """

    __slots__ = ("remaining_frac", "context_slot")

    def __init__(self, remaining_frac: float = 1.0, context_slot: Optional[int] = None):
        if not 0.0 < remaining_frac <= 1.0:
            raise ValueError(f"remaining_frac must be in (0,1], got {remaining_frac}")
        self.remaining_frac = remaining_frac
        self.context_slot = context_slot


class HarvestVm:
    """The batch VM that grows by harvesting idle Primary cores."""

    def __init__(
        self,
        vm_id: int,
        job: BatchJobProfile,
        memory: BatchMemory,
        llc,
        active: bool = True,
    ):
        self.vm_id = vm_id
        self.job = job
        self.memory = memory
        self.llc = llc
        self.active = active
        self.cores: List[Core] = []  # base cores only
        #: Preempted units whose state was preserved (hardware ctx switch).
        self.partial_units: Deque[BatchUnit] = deque()
        self.units_completed = 0.0
        self.work_lost_ns = 0
        self.preemptions = 0

    @property
    def name(self) -> str:
        return self.job.name

    def next_unit(self) -> BatchUnit:
        """Partial units first, then fresh ones (infinite backlog)."""
        if self.partial_units:
            return self.partial_units.popleft()
        return BatchUnit()

    def return_partial(
        self,
        remaining_frac: float,
        preserved: bool,
        lost_ns: int,
        context_slot: Optional[int] = None,
    ) -> None:
        """A unit was preempted; preserve or discard its progress."""
        self.preemptions += 1
        if preserved:
            if remaining_frac > 0.0:
                self.partial_units.append(
                    BatchUnit(max(1e-6, remaining_frac), context_slot)
                )
        else:
            self.work_lost_ns += lost_ns
