"""Cluster substrate: cores, VMs, NIC, and the per-server event engine."""

from repro.cluster.core import BUSY, IDLE, SWITCHING, Core
from repro.cluster.nic import Nic
from repro.cluster.request import Request
from repro.cluster.server import ServerSimulation
from repro.cluster.vm import BatchUnit, HarvestVm, PrimaryVm, SoftwareQueue

__all__ = [
    "Core",
    "IDLE",
    "BUSY",
    "SWITCHING",
    "Request",
    "PrimaryVm",
    "HarvestVm",
    "BatchUnit",
    "SoftwareQueue",
    "Nic",
    "ServerSimulation",
]
