"""Deterministic fault injection and client resilience.

* :mod:`repro.faults.spec`      — serializable :class:`FaultSpec` /
  :class:`FaultSchedule` / :class:`ClientPolicy` (ride inside
  :class:`~repro.config.SimulationConfig`, hash into the result-cache key).
* :mod:`repro.faults.scenarios` — canned scenarios for the CLI.
* :mod:`repro.faults.injector`  — the runtime :class:`FaultInjector` that
  arms a schedule on a :class:`~repro.cluster.server.ServerSimulation`.
* :mod:`repro.faults.client`    — the runtime :class:`ClientRuntime`
  implementing deadlines, retries with backoff + jitter, a retry budget,
  hedging, and admission control.

Only the pure-config modules are imported eagerly; the runtime modules
import :mod:`repro.config` and are loaded lazily to avoid a cycle when
``repro.config`` imports :mod:`repro.faults.spec`.
"""

from repro.faults.spec import (
    ClientPolicy,
    FaultKind,
    FaultSchedule,
    FaultSpec,
)
from repro.faults.scenarios import (
    SCENARIOS,
    FaultScenario,
    get_scenario,
    scenario_names,
)

__all__ = [
    "ClientPolicy",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "FaultScenario",
    "SCENARIOS",
    "get_scenario",
    "scenario_names",
    "FaultInjector",
    "ClientRuntime",
]


def __getattr__(name):  # lazy runtime imports (avoid config import cycle)
    if name == "FaultInjector":
        from repro.faults.injector import FaultInjector

        return FaultInjector
    if name == "ClientRuntime":
        from repro.faults.client import ClientRuntime

        return ClientRuntime
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
