"""Canned fault scenarios for ``python -m repro faults --scenario <name>``.

Each scenario is a function of the run horizon: fault windows are placed at
fixed *fractions* of the horizon so the same scenario name stresses a 60 ms
smoke run and a 600 ms paper-scale run in the same proportional way.  The
expanded :class:`~repro.faults.spec.FaultSchedule` is explicit and fully
deterministic, so it serializes into the experiment config and the result
cache key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.faults.spec import ClientPolicy, FaultKind, FaultSchedule, FaultSpec


@dataclass(frozen=True)
class FaultScenario:
    """A named (schedule, client policy) pair plus a human description."""

    name: str
    description: str
    schedule: FaultSchedule
    client: ClientPolicy


def _crash_storm(horizon_ms: float) -> FaultScenario:
    """Three transient full-server crashes spread over the run.

    The crash windows are short (4% of the horizon each) but total loss:
    every in-flight and queued request dies and must be retried by the
    client after its deadline expires.
    """
    events = [
        FaultSpec(
            kind=FaultKind.SERVER_CRASH,
            start_ms=horizon_ms * frac,
            duration_ms=max(1.0, horizon_ms * 0.04),
        )
        for frac in (0.25, 0.5, 0.72)
    ]
    return FaultScenario(
        name="crash-storm",
        description="three transient server crashes; clients retry on timeout",
        schedule=FaultSchedule(events=tuple(events)),
        client=ClientPolicy(
            timeout_ms=25.0,
            max_retries=4,
            backoff_base_ms=4.0,
            retry_budget=2.0,
        ),
    )


def _brownout(horizon_ms: float) -> FaultScenario:
    """The database and cache tiers lose most of their workers mid-run.

    Blocking calls queue up at the browned-out backends, inflating I/O
    times; admission control sheds load when Primary queues back up.
    """
    events = [
        FaultSpec(
            kind=FaultKind.BACKEND_BROWNOUT,
            start_ms=horizon_ms * 0.35,
            duration_ms=max(1.0, horizon_ms * 0.3),
            magnitude=0.25,
            target_name="mongodb",
        ),
        FaultSpec(
            kind=FaultKind.BACKEND_BROWNOUT,
            start_ms=horizon_ms * 0.4,
            duration_ms=max(1.0, horizon_ms * 0.2),
            magnitude=0.25,
            target_name="redis",
        ),
    ]
    return FaultScenario(
        name="brownout",
        description="MongoDB + Redis tiers drop to 25% capacity mid-run",
        schedule=FaultSchedule(events=tuple(events)),
        client=ClientPolicy(
            timeout_ms=30.0,
            max_retries=3,
            retry_budget=1.0,
            admission_queue_depth=48,
        ),
    )


def _packet_loss(horizon_ms: float) -> FaultScenario:
    """Lossy, jittery network for the middle half of the run."""
    events = [
        FaultSpec(
            kind=FaultKind.PACKET_LOSS,
            start_ms=horizon_ms * 0.25,
            duration_ms=max(1.0, horizon_ms * 0.5),
            magnitude=0.08,
        ),
        FaultSpec(
            kind=FaultKind.PACKET_DELAY,
            start_ms=horizon_ms * 0.25,
            duration_ms=max(1.0, horizon_ms * 0.5),
            magnitude=200.0,  # mean extra delay, us
        ),
    ]
    return FaultScenario(
        name="packet-loss",
        description="8% packet loss + 200us mean extra delay, middle half",
        schedule=FaultSchedule(events=tuple(events)),
        client=ClientPolicy(
            timeout_ms=20.0,
            max_retries=4,
            backoff_base_ms=2.0,
            retry_budget=1.0,
            hedge_ms=15.0,
        ),
    )


def _slow_cores(horizon_ms: float) -> FaultScenario:
    """Thermal throttling: every Primary core runs 3x slower for the
    middle third, and two cores additionally stall outright."""
    third = max(1.0, horizon_ms / 3.0)
    events = [
        FaultSpec(
            kind=FaultKind.CORE_SLOWDOWN,
            start_ms=horizon_ms / 3.0,
            duration_ms=third,
            magnitude=3.0,
        ),
        FaultSpec(
            kind=FaultKind.CORE_STALL,
            start_ms=horizon_ms / 3.0,
            duration_ms=third,
            target=0,
        ),
        FaultSpec(
            kind=FaultKind.CORE_STALL,
            start_ms=horizon_ms / 3.0,
            duration_ms=third,
            target=5,
        ),
    ]
    return FaultScenario(
        name="slow-cores",
        description="3x core slowdown for the middle third + two stalled cores",
        schedule=FaultSchedule(events=tuple(events)),
        client=ClientPolicy(timeout_ms=40.0, max_retries=2, retry_budget=0.5),
    )


def _rq_degrade(horizon_ms: float) -> FaultScenario:
    """Harvest-controller degradation: 75% of each Primary subqueue's RQ
    chunks fail for the middle half, forcing arrivals through the
    In-memory Overflow Subqueue (hardware systems; software systems see
    only the accompanying packet delay)."""
    events = [
        FaultSpec(
            kind=FaultKind.RQ_CHUNK_FAIL,
            start_ms=horizon_ms * 0.25,
            duration_ms=max(1.0, horizon_ms * 0.5),
            magnitude=0.75,
        ),
        FaultSpec(
            kind=FaultKind.PACKET_DELAY,
            start_ms=horizon_ms * 0.25,
            duration_ms=max(1.0, horizon_ms * 0.5),
            magnitude=50.0,
        ),
    ]
    return FaultScenario(
        name="rq-degrade",
        description="75% of RQ chunks fail mid-run (in-memory overflow path)",
        schedule=FaultSchedule(events=tuple(events)),
        client=ClientPolicy(timeout_ms=30.0, max_retries=2, retry_budget=0.5),
    )


SCENARIOS: Dict[str, Callable[[float], FaultScenario]] = {
    "crash-storm": _crash_storm,
    "brownout": _brownout,
    "packet-loss": _packet_loss,
    "slow-cores": _slow_cores,
    "rq-degrade": _rq_degrade,
}


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str, horizon_ms: float) -> FaultScenario:
    """Expand a canned scenario for a given horizon.

    Raises KeyError with the list of known names on an unknown scenario.
    """
    builder = SCENARIOS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        )
    if horizon_ms <= 0:
        raise ValueError(f"horizon_ms must be positive, got {horizon_ms}")
    return builder(horizon_ms)
