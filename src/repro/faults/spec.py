"""Serializable fault-injection and client-resilience descriptions.

Everything here is *configuration*: frozen dataclasses and enums that ride
inside :class:`~repro.config.SimulationConfig` (fields ``faults`` and
``client``), flow through :mod:`repro.core.serialize` unchanged, and are
therefore hashed into the :mod:`repro.parallel` result-cache key — changing
any fault parameter is automatically a cache miss, while an unchanged
schedule hits.

Determinism contract
--------------------

A :class:`FaultSchedule` is fully explicit: every event's start, duration,
target, and magnitude are fixed numbers.  All *randomized* fault behaviour
(per-packet loss coin flips, per-packet delay jitter, client retry backoff
jitter) is drawn at injection time from dedicated
:class:`~repro.sim.rng.RngRegistry` streams (``faults/net``, ``client``),
so a fault-injected run is a pure function of (config, seed): parallel
sweeps stay bit-identical to serial runs, and two systems under comparison
see the identical fault timeline.

This module deliberately imports nothing from :mod:`repro.config` so the
config module can embed these types without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple


class FaultKind(Enum):
    """The injectable fault classes (one injector each)."""

    #: Target core(s) execute ``magnitude`` x slower (thermal throttle,
    #: co-located interference, firmware-induced frequency drop).
    CORE_SLOWDOWN = "core-slowdown"
    #: Target core(s) stop picking up new work for the window (SMI storm,
    #: RAS scrub); in-flight segments finish, then the core parks.
    CORE_STALL = "core-stall"
    #: The whole server goes dark: in-flight requests and queue contents
    #: are lost, arrivals are dropped, batch progress on the server dies.
    #: The server restarts clean when the window ends.
    SERVER_CRASH = "server-crash"
    #: Arriving request packets are dropped with probability ``magnitude``.
    PACKET_LOSS = "packet-loss"
    #: Arriving request packets see extra exponential delay with mean
    #: ``magnitude`` microseconds (NIC queue buildup, PFC storms).
    PACKET_DELAY = "packet-delay"
    #: A backend tier (``target_name``: memcached/redis/mongodb, or "" for
    #: all) loses workers: capacity scales to ``magnitude`` of nominal.
    BACKEND_BROWNOUT = "backend-brownout"
    #: Harvest-controller degradation: a ``magnitude`` fraction of each
    #: Primary subqueue's RQ chunks fail, forcing new arrivals through the
    #: In-memory Overflow Subqueue path (hardware systems only; a no-op on
    #: software-scheduled systems, which have no RQ).
    RQ_CHUNK_FAIL = "rq-chunk-fail"


@dataclass(frozen=True)
class FaultSpec:
    """One fault event: what breaks, when, for how long, and how badly.

    ``magnitude`` is kind-specific (see :class:`FaultKind`); ``target`` is a
    core id for core faults (-1 = every Primary-bound core) and unused
    otherwise; ``target_name`` names a backend tier for brownouts.
    """

    kind: FaultKind
    start_ms: float
    duration_ms: float
    magnitude: float = 1.0
    target: int = -1
    target_name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise TypeError(f"kind must be a FaultKind, got {self.kind!r}")
        if self.start_ms < 0:
            raise ValueError(f"start_ms must be >= 0, got {self.start_ms}")
        if self.duration_ms <= 0:
            raise ValueError(
                f"duration_ms must be positive, got {self.duration_ms}"
            )
        if self.kind is FaultKind.PACKET_LOSS and not 0.0 < self.magnitude <= 1.0:
            raise ValueError(
                f"packet-loss magnitude is a drop probability in (0,1], "
                f"got {self.magnitude}"
            )
        if self.kind is FaultKind.CORE_SLOWDOWN and self.magnitude < 1.0:
            raise ValueError(
                f"core-slowdown magnitude is a >=1 multiplier, got {self.magnitude}"
            )
        if self.kind in (FaultKind.BACKEND_BROWNOUT, FaultKind.RQ_CHUNK_FAIL):
            if not 0.0 < self.magnitude <= 1.0:
                raise ValueError(
                    f"{self.kind.value} magnitude is a fraction in (0,1], "
                    f"got {self.magnitude}"
                )
        if self.magnitude <= 0:
            raise ValueError(f"magnitude must be positive, got {self.magnitude}")

    @property
    def start_ns(self) -> int:
        return int(self.start_ms * 1e6)

    @property
    def end_ns(self) -> int:
        return int((self.start_ms + self.duration_ms) * 1e6)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, fully explicit list of fault events for one run.

    The schedule is part of the experiment config: it serializes with
    :mod:`repro.core.serialize` and participates in the result-cache key.
    """

    events: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for ev in events:
            if not isinstance(ev, FaultSpec):
                raise TypeError(f"events must be FaultSpec, got {ev!r}")
        object.__setattr__(self, "events", events)

    def __len__(self) -> int:
        return len(self.events)

    def describe(self) -> str:
        """One line per event, for CLI banners and logs."""
        lines = []
        for i, ev in enumerate(self.events):
            extra = ""
            if ev.target >= 0:
                extra += f" target=core{ev.target}"
            if ev.target_name:
                extra += f" target={ev.target_name}"
            lines.append(
                f"  [{i}] {ev.kind.value:16s} t={ev.start_ms:.1f}ms "
                f"+{ev.duration_ms:.1f}ms magnitude={ev.magnitude:g}{extra}"
            )
        return "\n".join(lines) if lines else "  (no faults)"


@dataclass(frozen=True)
class ClientPolicy:
    """Client-side resilience knobs: the machinery real microservice
    clients run with (deadlines, capped exponential backoff with jitter, a
    retry budget, optional hedging, and server-side admission control).

    ``timeout_ms``  — per-attempt deadline; an attempt that has not
                      completed by then is abandoned and may be retried.
    ``slo_ms``      — end-to-end target a *logical* request must meet to
                      count toward goodput (defaults to ``timeout_ms``).
    ``max_retries`` — retries per logical request (attempts = retries+1).
    ``backoff_*``   — capped exponential backoff between attempts;
                      ``backoff_jitter`` is the ± fraction of randomization
                      (drawn from the deterministic ``client`` RNG stream).
    ``retry_budget``— global cap: total retries may not exceed this
                      fraction of logical requests issued so far (prevents
                      retry storms from amplifying overload).
    ``hedge_ms``    — if set, a second attempt is issued this long after
                      the first (per logical request, once); first
                      completion wins and the loser is cancelled.
    ``admission_queue_depth`` — if > 0, a VM whose queue already holds this
                      many pending requests *sheds* new arrivals instead of
                      queueing them (fast-failing the client, which backs
                      off and retries) so overload degrades gracefully
                      instead of collapsing into unbounded queues.
    """

    timeout_ms: float = 25.0
    slo_ms: Optional[float] = None
    max_retries: int = 3
    backoff_base_ms: float = 2.0
    backoff_multiplier: float = 2.0
    backoff_cap_ms: float = 50.0
    backoff_jitter: float = 0.5
    retry_budget: float = 0.5
    hedge_ms: Optional[float] = None
    admission_queue_depth: int = 0

    def __post_init__(self) -> None:
        if self.timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be positive, got {self.timeout_ms}")
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {self.slo_ms}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_ms <= 0 or self.backoff_cap_ms <= 0:
            raise ValueError("backoff base and cap must be positive")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0,1), got {self.backoff_jitter}"
            )
        if self.retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {self.retry_budget}")
        if self.hedge_ms is not None and self.hedge_ms <= 0:
            raise ValueError(f"hedge_ms must be positive, got {self.hedge_ms}")
        if self.admission_queue_depth < 0:
            raise ValueError(
                f"admission_queue_depth must be >= 0, got "
                f"{self.admission_queue_depth}"
            )

    @property
    def effective_slo_ms(self) -> float:
        return self.slo_ms if self.slo_ms is not None else self.timeout_ms

    @property
    def timeout_ns(self) -> int:
        return int(self.timeout_ms * 1e6)
