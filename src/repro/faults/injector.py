"""The runtime fault injector: arms a :class:`FaultSchedule` on a server.

One injector per :class:`~repro.cluster.server.ServerSimulation`. At
``start()`` it schedules a begin/end event pair per
:class:`~repro.faults.spec.FaultSpec`; between them it maintains the active
fault state the server engine consults on its hot paths:

* :meth:`arrival_fate` — packet drop / extra delay for each arriving request
  (``SERVER_CRASH``, ``PACKET_LOSS``, ``PACKET_DELAY``);
* :meth:`slowdown_factor` — per-core execution multiplier
  (``CORE_SLOWDOWN``);
* :meth:`is_stalled` — whether a core must park instead of picking up work
  (``CORE_STALL``);
* :attr:`server_down` — whole-server dark window (``SERVER_CRASH``); the
  heavyweight kill/restart transitions are delegated to
  ``server._crash_begin()`` / ``server._crash_end()``.

``BACKEND_BROWNOUT`` rescales backend worker pools in place and
``RQ_CHUNK_FAIL`` sheds RQ chunks from every Primary subqueue (hardware
systems), forcing arrivals through the In-memory Overflow Subqueue.

Determinism: the only randomness (loss coin flips, delay jitter) comes from
the server's dedicated ``faults/net`` RNG stream, drawn in event order — a
fault-injected run is a pure function of (config, seed) and is bit-identical
between serial and parallel sweep execution.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.cluster.core import IDLE, STALLED, Core
from repro.cluster.vm import PrimaryVm
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec


class FaultInjector:
    """Drives one server's fault schedule and tracks active fault state."""

    def __init__(self, server, schedule: FaultSchedule):
        self.server = server
        self.schedule = schedule
        self.net_rng = server.rng.stream("faults/net")
        #: Overlapping crash windows nest; the server is down while > 0.
        self._down = 0
        #: idx -> per-packet drop probability (active PACKET_LOSS windows).
        self._loss: Dict[int, float] = {}
        #: idx -> mean extra delay ns (active PACKET_DELAY windows).
        self._delay: Dict[int, int] = {}
        #: idx -> spec (active CORE_SLOWDOWN windows).
        self._slow: Dict[int, FaultSpec] = {}
        #: idx -> spec (active CORE_STALL windows).
        self._stalls: Dict[int, FaultSpec] = {}
        #: idx -> vm_id -> shed chunk ids (active RQ_CHUNK_FAIL windows).
        self._shed: Dict[int, Dict[int, List[int]]] = {}
        #: backend name -> idx -> capacity fraction (active brownouts).
        self._brown: Dict[str, Dict[int, float]] = {}

    # ------------------------------------------------------------------
    @property
    def server_down(self) -> bool:
        return self._down > 0

    def start(self) -> None:
        """Arm the schedule (called from ``ServerSimulation.run``)."""
        self.server.counters.incr("faults_injected", len(self.schedule))
        for idx, spec in enumerate(self.schedule.events):
            self.server.sim.schedule_at(spec.start_ns, self._begin, idx, spec)
            self.server.sim.schedule_at(
                max(spec.start_ns + 1, spec.end_ns), self._end, idx, spec
            )

    def faults_overlapping(self, a_ns: int, b_ns: int) -> FrozenSet[int]:
        """Indices of schedule events whose window overlaps [a_ns, b_ns].

        Used to tag a failed attempt with the faults plausibly responsible,
        which feeds the per-fault time-to-recovery metric."""
        return frozenset(
            idx
            for idx, spec in enumerate(self.schedule.events)
            if spec.start_ns <= b_ns and spec.end_ns >= a_ns
        )

    # ------------------------------------------------------------------
    # Hot-path queries from the server engine
    # ------------------------------------------------------------------
    def arrival_fate(self) -> Tuple[bool, int]:
        """(dropped, extra_delay_ns) for a request arriving right now."""
        if self._down > 0:
            self.server.counters.incr("faults_arrivals_dropped")
            return True, 0
        if self._loss:
            survive = 1.0
            for p in self._loss.values():
                survive *= 1.0 - p
            if self.net_rng.random() < 1.0 - survive:
                self.server.counters.incr("faults_arrivals_dropped")
                return True, 0
        extra = 0
        if self._delay:
            mean_ns = sum(self._delay.values())
            extra = int(self.net_rng.exponential(mean_ns))
            if extra > 0:
                self.server.counters.incr("faults_net_delayed")
        return False, extra

    def slowdown_factor(self, core_id: int) -> float:
        factor = 1.0
        for spec in self._slow.values():
            if spec.target < 0 or spec.target == core_id:
                factor *= spec.magnitude
        return factor

    def is_stalled(self, core: Core) -> bool:
        for spec in self._stalls.values():
            if spec.target == core.core_id:
                return True
            if spec.target < 0 and isinstance(
                self.server.vms_by_id.get(core.owner_vm_id), PrimaryVm
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # Window transitions
    # ------------------------------------------------------------------
    def _begin(self, idx: int, spec: FaultSpec) -> None:
        kind = spec.kind
        if kind is FaultKind.SERVER_CRASH:
            self._down += 1
            if self._down == 1:
                self.server._crash_begin()
        elif kind is FaultKind.PACKET_LOSS:
            self._loss[idx] = spec.magnitude
        elif kind is FaultKind.PACKET_DELAY:
            self._delay[idx] = int(spec.magnitude * 1000)  # us -> ns
        elif kind is FaultKind.CORE_SLOWDOWN:
            self._slow[idx] = spec
        elif kind is FaultKind.CORE_STALL:
            self._stalls[idx] = spec
            for core in self.server.cores:
                if core.state == IDLE and self.is_stalled(core):
                    core.state = STALLED
                    core.idle_since = self.server.sim.now
        elif kind is FaultKind.BACKEND_BROWNOUT:
            for name in self._brownout_targets(spec):
                self._brown.setdefault(name, {})[idx] = spec.magnitude
                self._recompute_backend(name)
        elif kind is FaultKind.RQ_CHUNK_FAIL:
            self._begin_rq_fail(idx, spec)

    def _end(self, idx: int, spec: FaultSpec) -> None:
        kind = spec.kind
        if kind is FaultKind.SERVER_CRASH:
            self._down -= 1
            if self._down == 0:
                self.server._crash_end()
        elif kind is FaultKind.PACKET_LOSS:
            self._loss.pop(idx, None)
        elif kind is FaultKind.PACKET_DELAY:
            self._delay.pop(idx, None)
        elif kind is FaultKind.CORE_SLOWDOWN:
            self._slow.pop(idx, None)
        elif kind is FaultKind.CORE_STALL:
            self._stalls.pop(idx, None)
            for core in self.server.cores:
                if core.state == STALLED and not self.is_stalled(core):
                    self.server._resume_stalled(core)
        elif kind is FaultKind.BACKEND_BROWNOUT:
            for name in self._brownout_targets(spec):
                active = self._brown.get(name, {})
                active.pop(idx, None)
                self._recompute_backend(name)
        elif kind is FaultKind.RQ_CHUNK_FAIL:
            self._end_rq_fail(idx)

    # ------------------------------------------------------------------
    def _brownout_targets(self, spec: FaultSpec) -> List[str]:
        services = self.server.backends.services
        if spec.target_name:
            return [spec.target_name] if spec.target_name in services else []
        return sorted(services)

    def _recompute_backend(self, name: str) -> None:
        svc = self.server.backends.services[name]
        fraction = 1.0
        for mag in self._brown.get(name, {}).values():
            fraction *= mag
        svc.set_capacity(max(1, int(round(svc.nominal_workers * fraction))))

    def _begin_rq_fail(self, idx: int, spec: FaultSpec) -> None:
        controller = self.server.controller
        if controller is None:
            # Software-scheduled systems have no RQ to degrade.
            self.server.counters.incr("faults_rq_noop")
            return
        shed: Dict[int, List[int]] = {}
        for qm in controller.primary_qms():
            sq = qm.subqueue
            # Keep >= 1 chunk: overflow entries are only dequeuable after
            # promotion into hardware, so zero capacity would strand them.
            n = min(
                len(sq.rq_map) - 1,
                int(round(spec.magnitude * len(sq.rq_map))),
            )
            if n <= 0:
                continue
            shed[qm.vm_id] = [sq.shed_chunk() for _ in range(n)]
            self.server.counters.incr("faults_rq_chunks_shed", n)
        self._shed[idx] = shed

    def _end_rq_fail(self, idx: int) -> None:
        controller = self.server.controller
        for vm_id, chunks in self._shed.pop(idx, {}).items():
            sq = controller.qm_for(vm_id).subqueue
            for chunk in reversed(chunks):
                sq.grant_chunk(chunk)
