"""Client-side resilience: deadlines, retries, hedging, load shedding.

Real microservice clients do not wait forever: they attach a deadline to
every RPC, retry failed attempts with capped exponential backoff + jitter,
bound total retries with a retry budget (so retries cannot amplify an
overload into a storm), optionally hedge slow requests, and accept
fast-fail responses from server-side admission control.

:class:`ClientRuntime` implements all of that on top of a
:class:`~repro.cluster.server.ServerSimulation`. The unit of accounting is
the *logical* request (one pre-drawn workload item); each transmission is
an *attempt* (a fresh :class:`~repro.cluster.request.Request` sharing the
logical's demand draw). The first completed attempt resolves the logical;
late siblings are cancelled.

Failure detection is timeout-driven and unified: the client cannot observe
a dropped packet or a crashed server directly — it discovers both when the
attempt's deadline expires. Abandoned attempts are tagged with the fault
windows overlapping their lifetime, which feeds the per-fault
time-to-recovery metric.

All randomness (backoff jitter) comes from the server's deterministic
``client`` RNG stream, so resilience behaviour is bit-identical across
serial and parallel sweep execution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cluster.request import Request
from repro.faults.spec import ClientPolicy


class LogicalRequest:
    """Client-side state for one pre-drawn workload item."""

    __slots__ = (
        "logical_id",
        "vm_id",
        "service",
        "arrival_ns",
        "measured",
        "exec_ns",
        "io_ns",
        "retries_used",
        "attempts_issued",
        "inflight",
        "completed",
        "failed",
        "hedged",
        "hedge_event",
        "fault_ids",
    )

    def __init__(self, req: Request, exec_ns: int, io_ns: List[int]):
        self.logical_id = req.req_id
        self.vm_id = req.vm_id
        self.service = req.service
        self.arrival_ns = req.arrival_ns
        self.measured = req.measured
        self.exec_ns = exec_ns
        self.io_ns = list(io_ns)
        self.retries_used = 0
        self.attempts_issued = 1
        self.inflight: Set[Request] = set()
        self.completed = False
        self.failed = False
        self.hedged = False
        self.hedge_event: Optional[object] = None
        self.fault_ids: Set[int] = set()


class ClientRuntime:
    """The resilience layer for one server's clients."""

    def __init__(self, server, policy: ClientPolicy):
        self.server = server
        self.policy = policy
        self.rng = server.rng.stream("client")
        self.logicals: Dict[int, LogicalRequest] = {}
        # --- resilience accounting ------------------------------------
        self.arrived = 0  # logical requests whose first attempt arrived
        self.attempts = 0  # transmissions that reached the server NIC
        self.retries_issued = 0
        self.hedges = 0
        self.timeouts = 0
        self.shed = 0
        self.completed = 0
        self.completed_in_slo = 0
        self.failed_permanently = 0
        #: fault idx -> latest resolution time after the fault window ended
        #: (ns); the per-fault time-to-recovery.
        self.recovery_ns: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Registration (server workload generation)
    # ------------------------------------------------------------------
    def register(self, req: Request, exec_ns: int, io_ns: List[int]) -> None:
        """Record the demand draw of a pre-generated first attempt so
        retries can replay the identical work."""
        lg = LogicalRequest(req, exec_ns, io_ns)
        lg.inflight.add(req)
        self.logicals[req.req_id] = lg

    # ------------------------------------------------------------------
    # Server engine hooks
    # ------------------------------------------------------------------
    def on_attempt_arrival(self, vm, req: Request) -> None:
        """An attempt reached the server NIC: arm its deadline timer.

        Called for *every* attempt, including ones the injector is about to
        drop — the client cannot see a lost packet, only a missed deadline.
        """
        lg = self.logicals[req.logical_id]
        if lg.completed or lg.failed:
            req.failed = True
            return
        self.attempts += 1
        if req.attempt == 1:
            self.arrived += 1
            if self.policy.hedge_ms is not None:
                lg.hedge_event = self.server.sim.schedule(
                    int(self.policy.hedge_ms * 1e6), self._maybe_hedge, vm, lg
                )
        req.deadline_event = self.server.sim.schedule(
            self.policy.timeout_ns, self._on_timeout, vm, req
        )

    def on_complete(self, vm, req: Request):
        """An attempt finished. Returns ``(count_latency, latency_ns)``:
        whether the logical is measured and resolved by this attempt, and
        its end-to-end (first-arrival to now) latency."""
        now = self.server.sim.now
        if req.deadline_event is not None:
            req.deadline_event.cancel()
            req.deadline_event = None
        lg = self.logicals[req.logical_id]
        lg.inflight.discard(req)
        if lg.completed or lg.failed:
            return False, 0
        lg.completed = True
        if lg.hedge_event is not None:
            lg.hedge_event.cancel()
            lg.hedge_event = None
        # Cancel the losing siblings (hedges / zombie retries).
        for sibling in list(lg.inflight):
            self.server._fail_attempt(vm, sibling)
        lg.inflight.clear()
        self.completed += 1
        latency_ns = now - lg.arrival_ns
        if latency_ns <= int(self.policy.effective_slo_ms * 1e6):
            self.completed_in_slo += 1
        self._note_recovery(lg, now)
        self.server._logical_resolved()
        return lg.measured, latency_ns

    def on_shed(self, vm, req: Request) -> None:
        """Admission control fast-failed this attempt before queueing."""
        self.shed += 1
        if req.deadline_event is not None:
            req.deadline_event.cancel()
            req.deadline_event = None
        req.failed = True
        lg = self.logicals[req.logical_id]
        lg.inflight.discard(req)
        if lg.completed or lg.failed or lg.inflight:
            return
        lg.fault_ids |= self._overlapping(req.arrival_ns, self.server.sim.now)
        self._retry_or_fail(vm, lg)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _on_timeout(self, vm, req: Request) -> None:
        req.deadline_event = None
        lg = self.logicals[req.logical_id]
        if lg.completed or lg.failed or req.completion_ns is not None:
            return
        self.timeouts += 1
        if not req.failed:
            # Abandon the attempt wherever it is (queued, blocked, or
            # running); in-flight engine events observe ``failed`` and
            # clean up.
            self.server._fail_attempt(vm, req)
        lg.inflight.discard(req)
        lg.fault_ids |= self._overlapping(req.arrival_ns, self.server.sim.now)
        if lg.inflight:
            return  # a hedge sibling is still racing
        self._retry_or_fail(vm, lg)

    def _maybe_hedge(self, vm, lg: LogicalRequest) -> None:
        lg.hedge_event = None
        if lg.completed or lg.failed or lg.hedged or not lg.inflight:
            return
        lg.hedged = True
        self.hedges += 1
        self._issue_attempt(vm, lg)

    # ------------------------------------------------------------------
    # Retry machinery
    # ------------------------------------------------------------------
    def _retry_or_fail(self, vm, lg: LogicalRequest) -> None:
        budget = int(self.policy.retry_budget * max(1, self.arrived))
        if lg.retries_used >= self.policy.max_retries or self.retries_issued >= budget:
            lg.failed = True
            self.failed_permanently += 1
            if lg.hedge_event is not None:
                lg.hedge_event.cancel()
                lg.hedge_event = None
            self._note_recovery(lg, self.server.sim.now)
            self.server._logical_resolved()
            return
        lg.retries_used += 1
        self.retries_issued += 1
        self.server.sim.schedule(
            self._backoff_ns(lg.retries_used), self._issue_attempt, vm, lg
        )

    def _backoff_ns(self, nth_retry: int) -> int:
        delay_ms = min(
            self.policy.backoff_cap_ms,
            self.policy.backoff_base_ms
            * self.policy.backoff_multiplier ** (nth_retry - 1),
        )
        if self.policy.backoff_jitter > 0:
            spread = self.policy.backoff_jitter * (2.0 * self.rng.random() - 1.0)
            delay_ms *= 1.0 + spread
        return max(1, int(delay_ms * 1e6))

    def _issue_attempt(self, vm, lg: LogicalRequest) -> None:
        if lg.completed or lg.failed:
            return
        lg.attempts_issued += 1
        req = Request(
            req_id=self.server._next_attempt_id(),
            vm_id=lg.vm_id,
            service=lg.service,
            arrival_ns=self.server.sim.now,
            measured=False,  # the logical, not the attempt, is measured
            exec_ns=lg.exec_ns,
            io_durations_ns=list(lg.io_ns),
            private_region=vm.memory.new_invocation(),
        )
        req.logical_id = lg.logical_id
        req.attempt = lg.attempts_issued
        lg.inflight.add(req)
        self.attempts += 1
        self.server._arrival(vm, req)

    # ------------------------------------------------------------------
    # Degradation metrics
    # ------------------------------------------------------------------
    def _overlapping(self, a_ns: int, b_ns: int):
        injector = self.server.injector
        if injector is None:
            return frozenset()
        return injector.faults_overlapping(a_ns, b_ns)

    def _note_recovery(self, lg: LogicalRequest, now: int) -> None:
        """The last fault-affected logical to resolve defines that fault's
        time-to-recovery (how long after the window the damage lingered)."""
        injector = self.server.injector
        if injector is None or not lg.fault_ids:
            return
        for idx in lg.fault_ids:
            lag = now - injector.schedule.events[idx].end_ns
            if lag >= 0:
                self.recovery_ns[idx] = max(self.recovery_ns.get(idx, 0), lag)

    def summary(self, end_ns: int) -> Dict[str, float]:
        """Resilience counters for :class:`~repro.core.metrics.ServerResult`."""
        arrived = max(1, self.arrived)
        seconds = max(1e-9, end_ns / 1e9)
        recoveries = list(self.recovery_ns.values())
        return {
            "offered": float(self.arrived),
            "completed": float(self.completed),
            "completed_in_slo": float(self.completed_in_slo),
            "failed": float(self.failed_permanently),
            "attempts": float(self.attempts),
            "retries": float(self.retries_issued),
            "hedges": float(self.hedges),
            "shed": float(self.shed),
            "timeouts": float(self.timeouts),
            "goodput": self.completed_in_slo / arrived,
            "retry_amplification": self.attempts / arrived,
            "slo_violation_rate": 1.0 - self.completed_in_slo / arrived,
            "offered_rps": self.arrived / seconds,
            "goodput_rps": self.completed_in_slo / seconds,
            "recovery_ms_mean": (
                sum(recoveries) / len(recoveries) / 1e6 if recoveries else 0.0
            ),
            "recovery_ms_max": max(recoveries) / 1e6 if recoveries else 0.0,
        }
