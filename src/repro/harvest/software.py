"""SmartHarvest-style software lending agent [88].

A user-space agent wakes every ``monitor_period_ns``, maintains an EWMA
prediction of each Primary VM's busy-core count, and lends cores that have
been idle for at least a full monitoring period — keeping (i) per-VM
headroom for the predicted load and (ii) a server-wide *emergency buffer* of
idle cores that is never lent (Section 2.2: "SmartHarvest keeps a few idle
cores on stand-by in an emergency buffer").

The periodic, predictive structure is exactly why software harvesting leaves
so much on the table for microservices: sub-millisecond idle gaps between
requests come and go entirely within one monitoring period, so the agent
never sees them (Section 3). The hardware agent harvests those gaps.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict

from repro.config import HarvestTrigger, SmartHarvestConfig
from repro.harvest.base import HarvestAgent

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.core import Core
    from repro.cluster.vm import PrimaryVm


class SmartHarvestAgent(HarvestAgent):
    """Periodic monitor + EWMA predictor + emergency buffer."""

    name = "smartharvest"

    #: Minimum attached (unlent) cores a Primary VM keeps.
    MIN_ATTACHED = 2

    def __init__(self, trigger: HarvestTrigger, config: SmartHarvestConfig):
        if trigger is HarvestTrigger.NEVER:
            raise ValueError("SmartHarvestAgent requires a harvesting trigger")
        super().__init__(trigger)
        self.config = config
        self._ewma: Dict[int, float] = {}
        self.ticks = 0
        self.lends_initiated = 0

    # ------------------------------------------------------------------
    def on_core_idle(self, core: "Core", cause: str) -> bool:
        """Reactive lending, gated by prediction and the emergency buffer.

        Like SmartHarvest, the agent reassigns a core when it goes idle
        (on termination, or additionally on a blocking call in Block mode),
        but only if the prediction says the VM will not need it imminently
        and the server keeps its emergency buffer of idle cores.
        """
        # A user-space agent cannot react to individual idle events — its
        # decisions are rate-limited to its monitoring loop (the tick
        # sweep below). This is the core of the software/hardware gap: the
        # agent makes tens of reassignment decisions per second (the paper
        # measures 11-36 core moves/s), while HardHarvest's QMs react to
        # every idle event in hardware.
        return False

    def _gate(self, vm: "PrimaryVm") -> bool:
        """Prediction + emergency-buffer gate for lending one core of ``vm``."""
        engine = self.engine

        # Per-VM floor: the VM must keep enough *attached* cores (busy or
        # idle) for its predicted demand, and never fewer than
        # ``MIN_ATTACHED`` — the steady trickle of requests has to run
        # somewhere without paying a reclaim. Everything beyond that is
        # lendable: SmartHarvest lends deep.
        idle_unlent = sum(
            1 for c in vm.cores if c.state == "idle" and not c.on_loan
        )
        busy = sum(1 for c in vm.cores if c.state == "busy" and not c.on_loan)
        predicted = self._ewma.get(vm.vm_id, 0.0)
        attached_floor = max(self.MIN_ATTACHED, math.ceil(predicted))
        if busy + idle_unlent - 1 < attached_floor:
            return False

        # Server-wide emergency buffer.
        server_idle = sum(
            1
            for pvm in engine.primary_vms
            for c in pvm.cores
            if c.state == "idle" and not c.on_loan
        )
        return server_idle - 1 >= self.config.emergency_buffer_cores

    def start(self) -> None:
        self.engine.sim.schedule(self.config.monitor_period_ns, self._tick)

    # ------------------------------------------------------------------
    def predicted_busy(self, vm_id: int) -> float:
        return self._ewma.get(vm_id, 0.0)

    def _tick(self) -> None:
        """Periodic monitor: refresh predictions, sweep lendable cores."""
        engine = self.engine
        self.ticks += 1
        now = engine.sim.now
        tr = getattr(engine, "tracer", None)
        if tr is not None:
            from repro.telemetry.tracer import AGENT_TICK

            tr.emit(now, AGENT_TICK, extra=self.lends_initiated)
        alpha = self.config.ewma_alpha
        for vm in engine.primary_vms:
            # Demand right now: running requests plus queued ready ones.
            busy = sum(
                1 for c in vm.cores if c.state == "busy" and not c.on_loan
            )
            demand = busy + min(len(vm.cores), vm.queue.ready_count())
            prev = self._ewma.get(vm.vm_id, float(demand))
            self._ewma[vm.vm_id] = alpha * demand + (1 - alpha) * prev

        # Sweep: lend cores that have sat idle since before this period
        # (their idle event may have been gated by a stale prediction).
        for vm in engine.primary_vms:
            for core in vm.cores:
                if (
                    core.state == "idle"
                    and not core.on_loan
                    and core.guest_vm_id is None
                    and core.idle_cause is not None
                    and self.cause_allowed(core.idle_cause)
                    and now - core.idle_since >= self.config.min_idle_ns
                    and not vm.queue.has_ready(core.core_id)
                    and self._gate(vm)
                ):
                    self.lends_initiated += 1
                    engine.start_lend(core)
        engine.sim.schedule(self.config.monitor_period_ns, self._tick)
