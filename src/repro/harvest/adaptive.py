"""Adaptive harvesting trigger (the paper's Section 4.1.5 future work).

    "the system could monitor events such as when requests spend a very
    short time blocked on I/O. In this case, the system could dynamically
    switch from harvesting on blocking call to harvesting only on request
    completion."

:class:`AdaptiveAgent` implements exactly that policy on top of the
hardware agent: it tracks an EWMA of observed blocking durations per
Primary VM and lends block-idled cores only when the typical block is long
enough to amortize a lend/reclaim round trip. Termination-idled cores are
always lendable (reassignment is nearly free in hardware).

The paper also sketches burst-aware throttling ("keeping a buffer of idle
cores ready for Primary VM bursts"); ``reserve_during_bursts`` implements
it: when a VM's recent demand exceeds its EWMA by a factor, lending for
that VM pauses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.config import HarvestTrigger
from repro.harvest.hardware import HardwareAgent
from repro.sim.units import US

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.core import Core


class AdaptiveAgent(HardwareAgent):
    """HardHarvest agent that adapts its trigger to observed I/O behaviour."""

    name = "hardharvest-adaptive"

    def __init__(
        self,
        min_worthwhile_block_ns: int = 50 * US,
        ewma_alpha: float = 0.2,
        reserve_during_bursts: bool = False,
        burst_factor: float = 3.0,
    ):
        super().__init__(HarvestTrigger.ON_BLOCK)
        if min_worthwhile_block_ns < 0:
            raise ValueError("min_worthwhile_block_ns must be non-negative")
        self.min_worthwhile_block_ns = min_worthwhile_block_ns
        self.ewma_alpha = ewma_alpha
        self.reserve_during_bursts = reserve_during_bursts
        self.burst_factor = burst_factor
        #: Per-VM EWMA of observed blocking durations (ns).
        self._block_ewma: Dict[int, float] = {}
        #: Per-VM EWMA of instantaneous demand (busy cores) for burst sense.
        self._demand_ewma: Dict[int, float] = {}
        self.block_lends_suppressed = 0

    # ------------------------------------------------------------------
    def observe_block(self, vm_id: int, duration_ns: int) -> None:
        """Feed an observed blocking duration (called by the engine)."""
        prev = self._block_ewma.get(vm_id, float(duration_ns))
        self._block_ewma[vm_id] = (
            self.ewma_alpha * duration_ns + (1 - self.ewma_alpha) * prev
        )

    def observe_demand(self, vm_id: int, busy_cores: int) -> None:
        prev = self._demand_ewma.get(vm_id, float(busy_cores))
        self._demand_ewma[vm_id] = (
            self.ewma_alpha * busy_cores + (1 - self.ewma_alpha) * prev
        )

    def typical_block_ns(self, vm_id: int) -> float:
        return self._block_ewma.get(vm_id, float("inf"))

    # ------------------------------------------------------------------
    def on_core_idle(self, core: "Core", cause: str) -> bool:
        vm_id = core.owner_vm_id
        if self.reserve_during_bursts:
            vm = self.engine.vms_by_id[vm_id]
            busy = sum(
                1 for c in vm.cores if c.state == "busy" and not c.on_loan
            )
            self.observe_demand(vm_id, busy)
            ewma = self._demand_ewma.get(vm_id, 0.0)
            if ewma > 0 and busy > self.burst_factor * ewma:
                return False
        if cause == "term":
            return True
        # Block-idled: lend only when the VM's blocks are typically long
        # enough that the harvest window is worth a lend/reclaim cycle.
        if self.typical_block_ns(vm_id) < self.min_worthwhile_block_ns:
            self.block_lends_suppressed += 1
            return False
        return True
