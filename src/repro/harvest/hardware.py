"""The HardHarvest lending agent: QM-driven, instant, bufferless.

Section 4.1.4: when a core bound to a Primary VM spins on its QM's subqueue
and finds no request, the QM forwards the core to a Harvest VM's QM, which
hands it a process immediately. There is no hypervisor call, no global lock,
no emergency buffer, and no prediction — reassignment is cheap enough that
mistakes cost almost nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import HarvestTrigger
from repro.harvest.base import HarvestAgent

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.core import Core


class HardwareAgent(HarvestAgent):
    """Lend instantly whenever the trigger condition holds."""

    name = "hardharvest"

    def __init__(self, trigger: HarvestTrigger):
        if trigger is HarvestTrigger.NEVER:
            raise ValueError("HardwareAgent requires a harvesting trigger")
        super().__init__(trigger)

    def on_core_idle(self, core: "Core", cause: str) -> bool:
        return self.cause_allowed(cause)
