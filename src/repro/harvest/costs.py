"""Transition cost model: what each scheduling/reassignment step costs under
a given :class:`~repro.config.SystemConfig`.

This is where the paper's cost structure lives, decomposed along the same
axes as its ablation (Figures 12/13/15):

* ``sched``  — hypervisor detach/attach + polling discovery vs QM hardware
  notification (Section 4.1.1: the hardware bypasses the hypervisor call and
  the global lock, and alerts cores instantly).
* ``queue``  — memory-mapped queue accesses vs dedicated SRAM queues.
* ``ctxtsw`` — software VM/request context switching vs the Request Context
  Memory (µs vs tens of ns, Section 4.1.1).
* ``part`` + ``flush`` — what must be flushed on a cross-VM transition and
  whether it sits on the critical path (Section 4.2.1).

All "latency" methods return integer ns for the *critical path* of the
transition; the flush methods also return a callable that applies the
invalidation to the core's cache model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.config import FlushScope, SystemConfig
from repro.mem.hierarchy import CoreMemory
from repro.sim.units import cycles_to_ns


@dataclass(frozen=True)
class TransitionCost:
    """Critical-path costs (split for Figure-6 breakdowns) plus the flush
    to apply at transition time."""

    reassign_ns: int
    flush_ns: int
    flush: Callable[[], int]  # applies invalidation; returns entries flushed

    @property
    def critical_ns(self) -> int:
        return self.reassign_ns + self.flush_ns


def _no_flush() -> int:
    return 0


class CostModel:
    """Computes per-event costs for one system configuration."""

    def __init__(self, system: SystemConfig):
        self.system = system
        self.flags = system.flags
        self.sw = system.software_costs
        self.hw = system.hardware_costs
        self.fl = system.flush_costs
        self.freq_ghz = system.hierarchy.freq_ghz
        # Share of private-cache state in the harvest region: sets the cost
        # of flushing the region without efficient flush hardware.
        self.region_fraction = (
            system.partition.harvest_fraction if system.partition.enabled else 1.0
        )

    # ------------------------------------------------------------------
    # Dispatch: an idle core picks up a request of its own VM.
    # ------------------------------------------------------------------
    def dispatch_ns(self, rng: np.random.Generator) -> int:
        """Queue access + work discovery + request context load."""
        queue = self.hw.queue_access_ns if self.flags.queue else self.sw.queue_access_ns
        if self.flags.sched:
            sched = self.hw.notify_ns
        else:
            # Polling/OS-wakeup discovery delay: exponential around the
            # configured mean (a core notices ready work only when it polls).
            sched = int(rng.exponential(self.sw.dispatch_delay_ns))
        ctx = self.hw.reassign_hw_ctx_ns if self.flags.ctxtsw else self.sw.request_switch_ns
        return queue + sched + ctx

    # ------------------------------------------------------------------
    # Cross-VM reassignment cost (shared by lend and reclaim).
    # ------------------------------------------------------------------
    def _reassign_ns(self) -> int:
        if self.flags.sched and self.flags.ctxtsw:
            return self.hw.reassign_hw_ctx_ns  # tens of ns
        if self.flags.sched:
            # Hardware scheduling but software context save/restore: a few µs
            # (Section 4.1.1's first estimate).
            return self.hw.reassign_ns
        detach = self.sw.detach_attach_ns
        ctx = self.hw.reassign_hw_ctx_ns if self.flags.ctxtsw else self.sw.context_switch_ns
        return detach + ctx

    def _region_flush_ns(self) -> int:
        """Critical-path cost of invalidating the harvest region."""
        if self.flags.flush:
            return cycles_to_ns(self.fl.region_flush_cycles, self.freq_ghz)
        # Without efficient flush hardware, flushing the region costs a
        # proportional share of the wbinvd-style full flush.
        return int(self.fl.full_flush_ns * self.region_fraction)

    # ------------------------------------------------------------------
    def lend_cost(self, memory: CoreMemory) -> TransitionCost:
        """Primary -> Harvest transition.

        The Harvest VM may not start until the worst-case flush time has
        elapsed (timing side-channel defense, Section 4.2.1), so the flush
        is always on the *harvest* VM's critical path. This does not affect
        Primary tail latency.
        """
        scope = self.system.flush_scope
        if scope is FlushScope.NONE:
            flush_ns, flush_fn = 0, _no_flush
        elif scope is FlushScope.FULL:
            flush_ns, flush_fn = self.fl.full_flush_ns, memory.flush_private_full
        else:
            flush_ns, flush_fn = self._region_flush_ns(), memory.flush_harvest_region
        return TransitionCost(self._reassign_ns(), flush_ns, flush_fn)

    def reclaim_cost(
        self, memory: CoreMemory, rng: Optional[np.random.Generator] = None
    ) -> TransitionCost:
        """Harvest -> Primary transition (the tail-latency critical one).

        Without hardware scheduling, the user-space agent must first *detect*
        that the Primary VM needs its core back — queue sampling at software
        granularity adds an exponential detection delay. With HardHarvest,
        the QM interrupts the loaned core directly (Section 4.1.5) and the
        background harvest-region flush is off the critical path (4.2.1).
        """
        scope = self.system.flush_scope
        if scope is FlushScope.NONE:
            flush_ns, flush_fn = 0, _no_flush
        elif scope is FlushScope.FULL:
            flush_ns, flush_fn = self.fl.full_flush_ns, memory.flush_private_full
        else:
            flush_fn = memory.flush_harvest_region
            if self.flags.flush and self.fl.background_region_flush:
                flush_ns = 0  # hidden behind Primary execution
            else:
                flush_ns = self._region_flush_ns()
        if self.flags.sched:
            notify = self.hw.notify_ns
        elif rng is not None and self.sw.reclaim_detect_ns > 0:
            notify = int(rng.exponential(self.sw.reclaim_detect_ns))
        else:
            notify = 0
        return TransitionCost(notify + self._reassign_ns(), flush_ns, flush_fn)
