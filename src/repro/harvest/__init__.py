"""Harvesting policies: cost model and lending agents."""

from repro.harvest.adaptive import AdaptiveAgent
from repro.harvest.base import HarvestAgent, NoHarvestAgent
from repro.harvest.costs import CostModel, TransitionCost
from repro.harvest.hardware import HardwareAgent
from repro.harvest.software import SmartHarvestAgent

__all__ = [
    "HarvestAgent",
    "NoHarvestAgent",
    "HardwareAgent",
    "AdaptiveAgent",
    "SmartHarvestAgent",
    "CostModel",
    "TransitionCost",
]
