"""Harvesting agents: who decides when a Primary VM core is lent.

Three agents mirror the paper's three worlds:

* :class:`NoHarvestAgent` — cores are never lent (the NoHarvest baseline).
* :class:`~repro.harvest.software.SmartHarvestAgent` — a user-space
  monitoring agent that wakes periodically, predicts near-future load, and
  lends only sustained-idle cores while keeping an emergency buffer
  (SmartHarvest [88], Section 2.2).
* :class:`~repro.harvest.hardware.HardwareAgent` — the HardHarvest QMs:
  a core that finds its own subqueue empty is lent *immediately*
  (Section 4.1.4); there is no buffer and no prediction because reclamation
  is cheap enough not to need them.

Reclamation is demand-driven in every system (the engine reclaims when a
Primary VM has ready work and no idle core); agents only control lending.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import HarvestTrigger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.core import Core
    from repro.cluster.server import ServerSimulation


class HarvestAgent:
    """Interface: lending decisions for one server."""

    name = "base"

    def __init__(self, trigger: HarvestTrigger):
        self.trigger = trigger
        self.engine: "ServerSimulation" = None  # set by attach()

    def attach(self, engine: "ServerSimulation") -> None:
        self.engine = engine

    def start(self) -> None:
        """Called once when the simulation starts (e.g. to begin ticking)."""

    def cause_allowed(self, cause: str) -> bool:
        """Is a core that went idle for ``cause`` ('term'/'block') lendable?"""
        if self.trigger is HarvestTrigger.NEVER:
            return False
        if cause == "term":
            return True
        return self.trigger is HarvestTrigger.ON_BLOCK

    def on_core_idle(self, core: "Core", cause: str) -> bool:
        """Return True to lend ``core`` to the Harvest VM right now."""
        raise NotImplementedError


class NoHarvestAgent(HarvestAgent):
    """Never lends: the conventional system."""

    name = "noharvest"

    def __init__(self) -> None:
        super().__init__(HarvestTrigger.NEVER)

    def on_core_idle(self, core: "Core", cause: str) -> bool:
        return False
