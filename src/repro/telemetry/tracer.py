"""The span tracer: a bounded ring buffer of lifecycle events.

Every event is one flat 6-tuple ``(ts, kind, req, vm, core, extra)`` —
integer nanosecond timestamp, a kind constant from this module, then
three id fields and one kind-specific integer (-1 / 0 when unused).
Flat tuples keep the per-event cost to a single allocation and make the
buffer trivially deterministic: identical runs append identical tuples
in identical order.

Request lifecycle kinds (the ``req``/``vm`` fields are always set):

========================  ====================================================
``REQ_ARRIVAL``           the NIC saw the packet (attempt arrival)
``REQ_ENQUEUE``           landed in the hardware subqueue; ``extra`` = depth
``REQ_ENQUEUE_SPILL``     landed in the overflow subqueue; ``extra`` = depth
``REQ_SHED``              admission control fast-failed it; never queued
``REQ_DISPATCH``          a core started the dispatch transition (``core``)
``REQ_EXEC``              the compute segment began on ``core``
``REQ_BLOCK``             blocked on backend I/O; ``extra`` = demand ns
``REQ_READY``             the backend response marked it ready again
``REQ_COMPLETE``          last segment finished; ``extra`` = depth after
``REQ_FAIL``              abandoned (fault/timeout/crash); ``extra`` = depth
                          after its queue entry was discarded, or -1
========================  ====================================================

Core harvest lifecycle kinds (``core`` always set):

========================  ====================================================
``CORE_LEND``             lend transition began (``vm`` = owner Primary VM)
``CORE_LEND_DONE``        worst-case flush gate elapsed (``vm`` = target
                          Harvest VM, ``extra`` = flushed entries)
``CORE_RECLAIM``          reclaim began (``vm`` = reclaiming Primary VM)
``CORE_RECLAIM_DONE``     core back home (``extra`` = flushed entries)
``BATCH_START``           batch unit started (``vm`` = Harvest VM,
                          ``extra`` = scheduled duration ns)
``BATCH_DONE``            batch unit ran to completion
``BATCH_PREEMPT``         batch unit preempted by a reclaim
========================  ====================================================

Server-scope kinds: ``AGENT_TICK`` (software monitoring agent sweep,
``extra`` = lends initiated so far), ``SERVER_CRASH`` / ``SERVER_RESTART``
(fault windows).
"""

from __future__ import annotations

from typing import List, Tuple

Event = Tuple[int, str, int, int, int, int]

REQ_ARRIVAL = "req_arrival"
REQ_ENQUEUE = "req_enqueue"
REQ_ENQUEUE_SPILL = "req_enqueue_spill"
REQ_SHED = "req_shed"
REQ_DISPATCH = "req_dispatch"
REQ_EXEC = "req_exec"
REQ_BLOCK = "req_block"
REQ_READY = "req_ready"
REQ_COMPLETE = "req_complete"
REQ_FAIL = "req_fail"

CORE_LEND = "core_lend"
CORE_LEND_DONE = "core_lend_done"
CORE_RECLAIM = "core_reclaim"
CORE_RECLAIM_DONE = "core_reclaim_done"
BATCH_START = "batch_start"
BATCH_DONE = "batch_done"
BATCH_PREEMPT = "batch_preempt"

AGENT_TICK = "agent_tick"
SERVER_CRASH = "server_crash"
SERVER_RESTART = "server_restart"

#: Kinds whose ``extra`` field is a queue depth (drives the Perfetto
#: per-VM subqueue counter tracks).
DEPTH_KINDS = frozenset((REQ_ENQUEUE, REQ_ENQUEUE_SPILL, REQ_COMPLETE, REQ_FAIL))

#: Critical-path phase names, in lifecycle/report order.
PHASES = ("nic", "queueing", "dispatch", "execution", "backend")

#: Event kind -> the phase a request enters when that event fires. This
#: is the exact-tiling map shared by the critical-path analysis and the
#: Perfetto request chains: every request event closes the current phase
#: at its own timestamp and opens the mapped one.
PHASE_AFTER = {
    REQ_ARRIVAL: "nic",
    REQ_ENQUEUE: "queueing",
    REQ_ENQUEUE_SPILL: "queueing",
    REQ_READY: "queueing",
    REQ_DISPATCH: "dispatch",
    REQ_EXEC: "execution",
    REQ_BLOCK: "backend",
}


class Tracer:
    """Fixed-capacity ring buffer of :data:`Event` tuples.

    Appending past capacity overwrites the oldest event and increments
    :attr:`dropped` — memory is bounded by construction, and the export
    side can report exactly how much history was lost.
    """

    __slots__ = ("capacity", "dropped", "_buf", "_head", "_count")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._buf: List[Event] = [None] * capacity  # type: ignore[list-item]
        self._head = 0  # next write slot
        self._count = 0

    def emit(
        self,
        ts: int,
        kind: str,
        req: int = -1,
        vm: int = -1,
        core: int = -1,
        extra: int = 0,
    ) -> None:
        """Append one event (O(1), one tuple allocation)."""
        i = self._head
        if self._count == self.capacity:
            self.dropped += 1
        else:
            self._count += 1
        self._buf[i] = (ts, kind, req, vm, core, extra)
        self._head = (i + 1) % self.capacity

    def __len__(self) -> int:
        return self._count

    def events(self) -> List[Event]:
        """All retained events in emission (chronological) order."""
        if self._count < self.capacity:
            return list(self._buf[: self._count])
        return self._buf[self._head :] + self._buf[: self._head]
