"""Telemetry configuration (imported by :mod:`repro.config`).

Like :mod:`repro.faults.spec`, this module imports nothing from
``repro.config``: the :class:`TelemetryConfig` dataclass is re-exported
there so the serializer's type registry (which walks the config module)
can round-trip it, and so it participates in the result-cache key the
same way ``faults``/``client`` do.

The contract every consumer relies on:

* **Off by default, zero perturbation when on.** A run with telemetry
  enabled produces a :class:`~repro.core.metrics.ServerResult` that is
  bit-identical to the same run with telemetry disabled. Hooks only read
  simulator state; probes ride the engine's side heap
  (:meth:`~repro.sim.engine.Simulator.schedule_probe`), which never
  touches the simulation's event ordering.
* **Bounded memory.** The span tracer is a fixed-capacity ring buffer
  (oldest events are evicted and counted, never grown past
  ``max_events``); the probe engine stops storing samples past
  ``max_probe_samples`` and counts the drops.
* **Deterministic output.** Two runs of the same config produce
  byte-identical trace/CSV artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability knobs riding in ``SimulationConfig.telemetry``."""

    #: Master switch. When False (or when the whole config is None) the
    #: engine allocates no tracer and no probe engine at all.
    enabled: bool = False
    #: Span-tracer ring-buffer capacity (events). Oldest events are
    #: evicted once full; :attr:`Tracer.dropped` counts them.
    max_events: int = 1_000_000
    #: Simulated-time cadence of the time-series probes.
    probe_interval_us: float = 50.0
    #: Cap on stored probe samples; later ticks still fire but their
    #: samples are dropped (and counted) to bound memory.
    max_probe_samples: int = 200_000

    def __post_init__(self) -> None:
        if self.max_events <= 0:
            raise ValueError(f"max_events must be positive, got {self.max_events}")
        if self.probe_interval_us <= 0:
            raise ValueError(
                f"probe_interval_us must be positive, got {self.probe_interval_us}"
            )
        if self.max_probe_samples <= 0:
            raise ValueError(
                f"max_probe_samples must be positive, got {self.max_probe_samples}"
            )

    @property
    def probe_interval_ns(self) -> int:
        return max(1, int(self.probe_interval_us * 1000))
