"""Time-series probe engine: periodic gauges on a simulated-time cadence.

A :class:`ProbeEngine` rides the simulator's observation side heap
(:meth:`~repro.sim.engine.Simulator.schedule_probe`): each tick samples a
fixed set of gauges and reschedules itself one interval later. Because
probes fire only when the simulation itself advances the clock, and only
*read* state, a probed run is bit-identical to an unprobed one; a probe
pending after the last simulation event simply never fires, which is what
terminates the self-rescheduling loop.

Sampled gauges (one column each in the CSV export):

* busy cores and loaned cores (harvested to the Harvest VM);
* per-Primary-VM request-queue depth, split into in-hardware entries and
  overflow-subqueue occupancy;
* cumulative L2 hit rate of Primary (non-harvest) and batch (harvest)
  accesses.

Storage is columnar (plain int/float lists) and capped at
``max_probe_samples``; ticks past the cap still fire but drop their
sample and count it in :attr:`ProbeEngine.dropped`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.telemetry.spec import TelemetryConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.server import ServerSimulation


class ProbeEngine:
    """Samples server-wide gauges every ``probe_interval_us`` of sim time."""

    def __init__(self, server: "ServerSimulation", config: TelemetryConfig):
        self.server = server
        self.interval_ns = config.probe_interval_ns
        self.max_samples = config.max_probe_samples
        self.dropped = 0
        self.times_ns: List[int] = []
        self.busy_cores: List[int] = []
        self.loaned_cores: List[int] = []
        self.l2_primary_hit_rate: List[float] = []
        self.l2_batch_hit_rate: List[float] = []
        #: vm_id -> per-tick in-hardware entry count / overflow occupancy.
        self.rq_depth: Dict[int, List[int]] = {
            vm.vm_id: [] for vm in server.primary_vms
        }
        self.rq_overflow: Dict[int, List[int]] = {
            vm.vm_id: [] for vm in server.primary_vms
        }

    def start(self) -> None:
        """Arm the first tick at t=0 (sampled before the first event)."""
        self.server.sim.schedule_probe(self.server.sim.now, self._tick)

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        server = self.server
        now = server.sim.now
        if len(self.times_ns) >= self.max_samples:
            self.dropped += 1
        else:
            self.times_ns.append(now)
            self.busy_cores.append(server._busy)
            self.loaned_cores.append(sum(1 for c in server.cores if c.on_loan))
            self.l2_primary_hit_rate.append(server.l2_primary_hit_rate())
            self.l2_batch_hit_rate.append(server.l2_batch_hit_rate())
            for vm in server.primary_vms:
                hw, overflow = vm.queue.occupancy()
                self.rq_depth[vm.vm_id].append(hw)
                self.rq_overflow[vm.vm_id].append(overflow)
        server.sim.schedule_probe(now + self.interval_ns, self._tick)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.times_ns)

    def columns(self) -> Dict[str, List]:
        """Column name -> series, in a fixed, deterministic order."""
        out: Dict[str, List] = {
            "time_ns": self.times_ns,
            "busy_cores": self.busy_cores,
            "loaned_cores": self.loaned_cores,
            "l2_primary_hit_rate": self.l2_primary_hit_rate,
            "l2_batch_hit_rate": self.l2_batch_hit_rate,
        }
        names = {vm.vm_id: vm.name for vm in self.server.primary_vms}
        for vm_id in sorted(self.rq_depth):
            out[f"rq_depth/{names[vm_id]}"] = self.rq_depth[vm_id]
        for vm_id in sorted(self.rq_overflow):
            out[f"rq_overflow/{names[vm_id]}"] = self.rq_overflow[vm_id]
        return out
