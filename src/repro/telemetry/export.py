"""Trace exporters: Chrome/Perfetto trace-event JSON and CSV time series.

Both writers are deterministic byte-for-byte for a given event stream —
dict keys are sorted, rows follow fixed column orders, floats go through
Python's ``repr`` — and both write atomically (temp file + rename), so
two runs of the same config produce identical artifacts and an
interrupted run never leaves a truncated one.

The Perfetto export (load the JSON at https://ui.perfetto.dev) lays the
server out as three processes:

* **pid 1 "cores"** — one thread per core; complete ("X") slices for
  dispatch transitions, request execution segments, lend/reclaim
  transitions, and batch units. Reconstructed from event pairs; a crash
  or end-of-trace closes any still-open slice.
* **pid 2 "queues"** — one counter ("C") track per Primary VM showing
  request-queue depth at every enqueue/complete/discard.
* **pid 3 "requests"** — one async ("b"/"e") chain per request id: an
  outer request span with nested per-phase slices (nic, queueing,
  dispatch, execution, backend) from the critical-path tiling.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from repro.telemetry.probes import ProbeEngine
from repro.telemetry.tracer import (
    PHASE_AFTER,
    BATCH_DONE,
    BATCH_PREEMPT,
    BATCH_START,
    CORE_LEND,
    CORE_LEND_DONE,
    CORE_RECLAIM,
    CORE_RECLAIM_DONE,
    DEPTH_KINDS,
    Event,
    REQ_ARRIVAL,
    REQ_BLOCK,
    REQ_COMPLETE,
    REQ_DISPATCH,
    REQ_EXEC,
    REQ_FAIL,
    REQ_SHED,
    SERVER_CRASH,
)

PID_CORES = 1
PID_QUEUES = 2
PID_REQUESTS = 3


def _us(ts_ns: int) -> float:
    """Trace-event timestamps are microseconds; keep ns precision."""
    return ts_ns / 1000.0


# ----------------------------------------------------------------------
# Core tracks: reconstruct slices from the per-core event sequence.
# ----------------------------------------------------------------------
def _core_slices(
    events: Iterable[Event], vm_names: Dict[int, str]
) -> List[Tuple[int, int, int, str]]:
    """``(core, start_ns, end_ns, name)`` slices, in close order.

    Every core-scoped event closes the core's open slice at its own
    timestamp; the "start" kinds then open the next one. Crashes close
    every open slice; so does the end of the stream.
    """
    open_spans: Dict[int, Tuple[int, str]] = {}  # core -> (start, name)
    slices: List[Tuple[int, int, int, str]] = []
    last_ts = 0

    def close(core: int, ts: int) -> None:
        span = open_spans.pop(core, None)
        if span is not None:
            slices.append((core, span[0], ts, span[1]))

    for ts, kind, req, vm, core, _extra in events:
        last_ts = ts
        if kind == SERVER_CRASH:
            for core_id in sorted(open_spans):
                close(core_id, ts)
            continue
        if core < 0:
            continue
        name = None
        if kind == REQ_DISPATCH:
            name = f"dispatch {vm_names.get(vm, vm)} #{req}"
        elif kind == REQ_EXEC:
            name = f"exec {vm_names.get(vm, vm)} #{req}"
        elif kind == CORE_LEND:
            name = "lend"
        elif kind == CORE_RECLAIM:
            name = f"reclaim {vm_names.get(vm, vm)}"
        elif kind == BATCH_START:
            name = f"batch {vm_names.get(vm, vm)}"
        elif kind not in (
            REQ_BLOCK, REQ_COMPLETE, CORE_LEND_DONE, CORE_RECLAIM_DONE,
            BATCH_DONE, BATCH_PREEMPT,
        ):
            continue  # not a core-track event
        close(core, ts)
        if name is not None:
            open_spans[core] = (ts, name)
    for core_id in sorted(open_spans):
        close(core_id, last_ts)
    return slices


# ----------------------------------------------------------------------
# Request chains: outer span + nested phase slices per request id.
# ----------------------------------------------------------------------
def _request_chains(events: Iterable[Event]):
    """Per request: ``(req, vm, arrival, end, completed, [(phase, s, e)])``."""
    open_reqs: Dict[int, Tuple[int, int, int, str, List]] = {}
    chains = []
    for ts, kind, req, vm, _core, _extra in events:
        if kind == REQ_ARRIVAL:
            open_reqs[req] = (vm, ts, ts, "nic", [])
            continue
        state = open_reqs.get(req)
        if state is None:
            continue
        svm, arrival, prev, phase, intervals = state
        if ts > prev:
            intervals.append((phase, prev, ts))
        if kind == REQ_COMPLETE:
            del open_reqs[req]
            chains.append((req, svm, arrival, ts, True, intervals))
        elif kind in (REQ_FAIL, REQ_SHED):
            del open_reqs[req]
            chains.append((req, svm, arrival, ts, False, intervals))
        else:
            open_reqs[req] = (
                svm, arrival, ts, PHASE_AFTER.get(kind, phase), intervals
            )
    chains.sort(key=lambda c: c[0])
    return chains


# ----------------------------------------------------------------------
def write_perfetto_json(
    path: str,
    events: List[Event],
    vm_names: Dict[int, str],
    num_cores: int,
) -> int:
    """Write the Perfetto/Chrome trace; returns the trace-event count."""
    te: List[dict] = []
    meta = [
        (PID_CORES, "cores"),
        (PID_QUEUES, "queues"),
        (PID_REQUESTS, "requests"),
    ]
    for pid, name in meta:
        te.append(
            {"ph": "M", "pid": pid, "name": "process_name",
             "args": {"name": name}}
        )
    for core in range(num_cores):
        te.append(
            {"ph": "M", "pid": PID_CORES, "tid": core, "name": "thread_name",
             "args": {"name": f"core {core}"}}
        )
    for vm_id in sorted(vm_names):
        te.append(
            {"ph": "M", "pid": PID_QUEUES, "tid": vm_id, "name": "thread_name",
             "args": {"name": f"rq {vm_names[vm_id]}"}}
        )

    for core, start, end, name in _core_slices(events, vm_names):
        te.append(
            {"ph": "X", "pid": PID_CORES, "tid": core, "cat": "core",
             "name": name, "ts": _us(start), "dur": _us(end - start)}
        )

    for ts, kind, _req, vm, _core, extra in events:
        if kind in DEPTH_KINDS and extra >= 0 and vm in vm_names:
            te.append(
                {"ph": "C", "pid": PID_QUEUES, "tid": vm, "cat": "queue",
                 "name": f"rq {vm_names[vm]}", "ts": _us(ts),
                 "args": {"pending": extra}}
            )

    for req, vm, arrival, end, completed, intervals in _request_chains(events):
        name = f"{vm_names.get(vm, vm)} #{req}"
        if not completed:
            name += " (failed)"
        te.append(
            {"ph": "b", "pid": PID_REQUESTS, "cat": "request", "id": req,
             "tid": 0, "name": name, "ts": _us(arrival)}
        )
        for phase, start, stop in intervals:
            te.append(
                {"ph": "b", "pid": PID_REQUESTS, "cat": "request", "id": req,
                 "tid": 0, "name": phase, "ts": _us(start)}
            )
            te.append(
                {"ph": "e", "pid": PID_REQUESTS, "cat": "request", "id": req,
                 "tid": 0, "name": phase, "ts": _us(stop)}
            )
        te.append(
            {"ph": "e", "pid": PID_REQUESTS, "cat": "request", "id": req,
             "tid": 0, "name": name, "ts": _us(end)}
        )

    # Imported lazily: repro.core's package init pulls in the experiment
    # runner (and through it this package), so a module-level import here
    # would be circular when repro.config loads telemetry first.
    from repro.core.ioutil import atomic_open

    doc = {"displayTimeUnit": "ns", "traceEvents": te}
    with atomic_open(path) as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return len(te)


def write_timeseries_csv(path: str, probes: ProbeEngine) -> int:
    """Write the probe gauges as CSV (fixed column order); returns rows."""
    from repro.core.ioutil import atomic_open

    columns = probes.columns()
    names = list(columns)
    n = len(probes)
    with atomic_open(path, newline="") as fh:
        fh.write(",".join(names) + "\n")
        for i in range(n):
            fh.write(
                ",".join(repr(columns[name][i]) for name in names) + "\n"
            )
    return n
