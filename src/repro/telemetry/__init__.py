"""Deterministic, off-by-default observability for the simulator.

Three cooperating pieces (see ``docs/api.md`` → "Tracing a run"):

* :class:`~repro.telemetry.tracer.Tracer` — a bounded ring buffer of
  request-span and core-harvest lifecycle events, emitted from hook
  points in :mod:`repro.cluster.server`;
* :class:`~repro.telemetry.probes.ProbeEngine` — per-interval gauges
  (busy/loaned cores, RQ depth and overflow occupancy, L2 hit rates)
  sampled on the engine's observation side heap;
* exporters — Perfetto trace JSON and CSV time series, plus the
  critical-path report in :mod:`repro.analysis.critical_path`.

The contract: telemetry on or off, simulation results are bit-identical;
memory is bounded (ring eviction + sample caps, with drop counters); and
repeated runs of one config export byte-identical artifacts.
"""

from repro.telemetry.export import write_perfetto_json, write_timeseries_csv
from repro.telemetry.probes import ProbeEngine
from repro.telemetry.spec import TelemetryConfig
from repro.telemetry.tracer import DEPTH_KINDS, Event, Tracer

__all__ = [
    "DEPTH_KINDS",
    "Event",
    "ProbeEngine",
    "TelemetryConfig",
    "Tracer",
    "write_perfetto_json",
    "write_timeseries_csv",
]
