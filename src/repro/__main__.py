"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      — simulate one server under one system and print its metrics.
``compare``  — run all five evaluated systems on the identical workload.
``cluster``  — the paper's multi-server setup (one batch job per server).
``sweep``    — a (systems x seeds) grid through the parallel runner and
               the content-addressed result cache (:mod:`repro.parallel`).
``faults``   — run a canned fault scenario (:mod:`repro.faults`) and report
               the degradation profile (goodput, retry amplification, SLO
               violations, time-to-recovery) per system.
``chaos``    — SIGKILL-and-resume soak: run a fault-plan cluster
               simulation, kill the orchestrator mid-run, resume it from
               its epoch checkpoints, and assert the recovered digest is
               bit-identical to an uninterrupted run
               (:mod:`repro.cluster_scale.chaos`).
``serve``    — the simulation-as-a-service HTTP job API: POST configs,
               poll job state, download digest-stamped results and
               Perfetto traces, scrape Prometheus metrics
               (:mod:`repro.service`).
``cache``    — inspect the content-addressed result cache: entry and
               size statistics, per-version counts, and stale-entry
               pruning after version bumps.
``storage``  — print the Section 6.8 hardware cost accounting.
``trace``    — run one system with telemetry enabled and export a
               Perfetto trace, a gauge time-series CSV, and the
               critical-path report (:mod:`repro.telemetry`).
``profile``  — run one server simulation under :mod:`cProfile` and print
               the hottest functions (the entry point for hot-path work;
               pair with ``REPRO_MEM_SLOWPATH`` / ``REPRO_SCHED_SLOWPATH``
               to profile the reference implementations).

Examples::

    python -m repro run --system HardHarvest-Block --horizon-ms 300
    python -m repro compare --seed 7
    python -m repro cluster --servers 4
    python -m repro sweep --systems all --seeds 0..7 --workers 4
    python -m repro faults --scenario crash-storm --workers 2
    python -m repro faults --list
    python -m repro cluster --servers 8 --requests 4000 --epochs 4 \\
        --fault-plan crash-storm --checkpoint
    python -m repro chaos --servers 3 --epochs 4 --workers 2
    python -m repro serve --port 8023 --service-workers 2
    python -m repro cache --prune-stale --stats-json cache_stats.json
    python -m repro storage
    python -m repro trace --system HardHarvest-Block --out traces/
    python -m repro profile --horizon-ms 60 --sort tottime --top 15
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.analysis.report import format_series, format_table, with_average
from repro.config import ControllerConfig, HierarchyConfig, SimulationConfig, SystemKind
from repro.core.experiment import run_cluster, run_server, run_systems
from repro.core.presets import all_systems, build_system
from repro.hw.storage_cost import compute_storage_report
from repro.workloads.microservices import SERVICE_NAMES

SYSTEM_NAMES = [kind.value for kind in SystemKind]


def _sim_config(args: argparse.Namespace) -> SimulationConfig:
    return SimulationConfig(
        horizon_ms=args.horizon_ms,
        warmup_ms=min(args.horizon_ms / 5, 100.0),
        seed=args.seed,
        accesses_per_segment=args.accesses,
        servers_to_simulate=getattr(args, "servers", 1),
    )


def _print_result(name: str, res) -> None:
    print(f"\n=== {name}")
    print(f"  avg P99 latency    {res.avg_p99_ms():8.2f} ms")
    print(f"  avg median latency {res.avg_p50_ms():8.2f} ms")
    print(f"  batch throughput   {res.batch_units_per_s:8.0f} units/s "
          f"({res.batch_job})")
    print(f"  busy cores         {res.avg_busy_cores:8.1f} / 36")
    print(f"  L2 hit rate        {res.l2_hit_rate * 100:8.1f} %")
    interesting = ("lends", "reclaims", "buffer_borrows", "queue_overflow_spills")
    counts = {k: v for k, v in res.counters.items() if k in interesting and v}
    if counts:
        print("  events             " + ", ".join(f"{k}={v}" for k, v in counts.items()))


def cmd_run(args: argparse.Namespace) -> int:
    from repro.core.serialize import dumps, loads

    simcfg = _sim_config(args)
    if args.config:
        try:
            with open(args.config) as fh:
                system, loaded_sim = loads(fh.read())
        except OSError as exc:
            print(f"cannot read --config {args.config!r}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        except (ValueError, KeyError, TypeError) as exc:
            print(f"--config {args.config!r} is not a valid experiment "
                  f"config: {exc}", file=sys.stderr)
            return 2
        if loaded_sim is not None:
            from repro.service.spec import JobValidationError, validate_simulation

            try:
                validate_simulation(loaded_sim)
            except JobValidationError as exc:
                print(f"--config {args.config!r}: invalid field "
                      f"{exc.field!r}: {exc}", file=sys.stderr)
                return 2
            simcfg = loaded_sim
        name = system.name
    else:
        kind = next((k for k in SystemKind if k.value == args.system), None)
        if kind is None:
            print(f"unknown system {args.system!r}; choose from {SYSTEM_NAMES}",
                  file=sys.stderr)
            return 2
        system = build_system(kind)
        name = args.system
    if args.dump_config:
        from repro.core.ioutil import atomic_open

        with atomic_open(args.dump_config) as fh:
            fh.write(dumps(system, simcfg))
        print(f"wrote experiment config to {args.dump_config}")
        return 0
    res = run_server(system, simcfg)
    _print_result(name, res)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    results = run_systems(all_systems(), _sim_config(args))
    cols = list(SERVICE_NAMES) + ["Avg"]
    rows = {
        name: list(with_average(res.p99_ms).values())
        for name, res in results.items()
    }
    print(format_table("P99 tail latency", cols, rows, unit="ms"))
    print()
    print(format_series("Busy cores (of 36)",
                        {k: r.avg_busy_cores for k, r in results.items()},
                        precision=1))
    base = results["NoHarvest"].batch_units_per_s
    print()
    print(format_series("Harvest throughput vs NoHarvest",
                        {k: r.batch_units_per_s / base for k, r in results.items()}))
    return 0


def _write_stats_json(path: str, payload: dict) -> None:
    """Machine-checkable run statistics (the CI smoke's assertion input)."""
    import json

    from repro.core.ioutil import atomic_open

    with atomic_open(path) as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote run stats to {path}")


def cmd_cluster(args: argparse.Namespace) -> int:
    kind = next((k for k in SystemKind if k.value == args.system), None)
    if kind is None:
        print(f"unknown system {args.system!r}", file=sys.stderr)
        return 2
    system = build_system(kind)
    scale_mode = (
        args.requests is not None
        or args.routing is not None
        or args.epochs > 1
        or args.workers > 1
        or args.harvest_base is not None
        or args.json is not None
        or args.csv is not None
        or args.stats_json is not None
        or args.fault_plan is not None
        or args.checkpoint
        or args.resume is not None
    )
    if not scale_mode:
        simcfg = replace(_sim_config(args), servers_to_simulate=args.servers)
        result = run_cluster(system, simcfg)
        print(f"=== {args.system} across {args.servers} servers")
        for server in result.servers:
            print(f"  [{server.batch_job:10s}] P99 {server.avg_p99_ms():6.2f} ms | "
                  f"busy {server.avg_busy_cores:5.1f} | "
                  f"batch {server.batch_units_per_s:7.0f} u/s")
        print(f"  cluster avg P99 {result.avg_p99_ms():.2f} ms, "
              f"busy {result.avg_busy_cores():.1f}")
        return 0

    # ------------------------------------------------------------------
    # Sharded cluster-scale path (repro.cluster_scale).
    # ------------------------------------------------------------------
    import dataclasses
    import os

    from repro.analysis.report import format_cluster_scale_report
    from repro.cluster_scale import (
        ROUTING_POLICY_NAMES,
        CheckpointStore,
        ClusterScaleConfig,
        RoutingPolicy,
        cluster_plan_names,
        cluster_run_key,
        get_cluster_plan,
        run_cluster_scale,
    )
    from repro.core.export import write_cluster_scale_csv, write_cluster_scale_json
    from repro.parallel import DeterminismError, ResultCache, SweepError
    from repro.workloads.batch import BATCH_JOBS

    routing_name = args.routing or RoutingPolicy.ROUND_ROBIN.value
    if routing_name not in ROUTING_POLICY_NAMES:
        print(f"unknown routing policy {routing_name!r}; choose from "
              f"{list(ROUTING_POLICY_NAMES)}", file=sys.stderr)
        return 2
    if args.harvest_base is not None:
        system = replace(
            system,
            cluster=replace(
                system.cluster, harvest_vm_base_cores=args.harvest_base
            ),
        )
    plan = None
    if args.fault_plan is not None:
        try:
            plan = get_cluster_plan(args.fault_plan, args.servers, args.epochs)
        except KeyError:
            print(f"unknown fault plan {args.fault_plan!r}; choose from "
                  f"{cluster_plan_names()}", file=sys.stderr)
            return 2
        if args.cooldown is not None:
            plan = dataclasses.replace(plan, cooldown_epochs=args.cooldown)
        print(f"fault plan {args.fault_plan} "
              f"(cooldown {plan.cooldown_epochs} epoch(s)):")
        print(plan.describe())
    simcfg = replace(_sim_config(args), servers_to_simulate=args.servers)
    try:
        cfg = ClusterScaleConfig(
            servers=args.servers,
            requests=args.requests,
            epochs=args.epochs,
            epoch_ms=args.horizon_ms,
            warmup_ms=simcfg.warmup_ms,
            routing=RoutingPolicy(routing_name),
            rebalance=not args.no_rebalance,
            harvest_min_cores=args.harvest_min,
            harvest_max_cores=args.harvest_max,
            fault_plan=plan,
        )
    except ValueError as exc:
        print(f"bad cluster configuration: {exc}", file=sys.stderr)
        return 2

    checkpoint = None
    run_key = None
    if args.checkpoint or args.resume is not None:
        run_key = cluster_run_key(system, simcfg, cfg, list(BATCH_JOBS))
        if args.resume is not None and args.resume != run_key:
            print(f"--resume {args.resume} does not match this "
                  f"configuration's run key {run_key}; refusing to mix "
                  "checkpoints across experiments", file=sys.stderr)
            return 2
        checkpoint_dir = args.checkpoint_dir or os.path.join(
            args.cache_dir, "checkpoints"
        )
        checkpoint = CheckpointStore(root=checkpoint_dir, run_key=run_key)
        print(f"checkpointing to {checkpoint.run_dir} (run key {run_key})")

    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    try:
        result = run_cluster_scale(
            system,
            simcfg,
            cfg,
            workers=args.workers,
            cache=cache,
            task_timeout=args.task_timeout,
            progress=lambda msg: print(f"[cluster] {msg}", flush=True),
            checkpoint=checkpoint,
        )
    except (SweepError, DeterminismError) as exc:
        print(f"cluster run failed: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"bad cluster configuration: {exc}", file=sys.stderr)
        return 2
    print(format_cluster_scale_report(result))
    print(f"\n{cfg.servers * cfg.epochs} server-epoch(s) in "
          f"{result.elapsed_s:.1f}s with {args.workers} worker(s)")
    if cache is not None:
        stats = cache.stats
        print(f"cache [{args.cache_dir}]: {stats.hits} hit(s), "
              f"{stats.misses} miss(es) "
              f"({stats.hit_rate() * 100:.0f}% hit rate)")
    if args.json:
        write_cluster_scale_json(args.json, result)
        print(f"wrote JSON results to {args.json}")
    if args.csv:
        write_cluster_scale_csv(args.csv, result)
        print(f"wrote CSV results to {args.csv}")
    if args.stats_json:
        _write_stats_json(args.stats_json, {
            "digest": result.digest(),
            "system": result.system,
            "servers": result.servers,
            "epochs": len(result.epochs),
            "routing": cfg.routing.value,
            "requests_routed": cfg.requests,
            "requests_measured": result.requests_measured(),
            "requests_arrived": result.requests_arrived(),
            "rebalance_moves": result.total_rebalance_moves(),
            "workers": args.workers,
            "elapsed_s": result.elapsed_s,
            "cache": cache.stats.as_dict() if cache is not None else None,
            "fault_plan": args.fault_plan,
            "resilience_curve": result.resilience_curve(),
            "resumed_from_epoch": result.resumed_epochs,
            "checkpoint_run_key": run_key,
        })
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """SIGKILL-and-resume soak over a fault-plan cluster run."""
    from repro.cluster_scale import cluster_plan_names
    from repro.cluster_scale.chaos import run_chaos_soak

    if args.plan not in cluster_plan_names():
        print(f"unknown fault plan {args.plan!r}; choose from "
              f"{cluster_plan_names()}", file=sys.stderr)
        return 2
    try:
        record = run_chaos_soak(
            system_name=args.system,
            servers=args.servers,
            requests=args.requests,
            epochs=args.epochs,
            epoch_ms=args.horizon_ms,
            routing=args.routing,
            plan_name=args.plan,
            seed=args.seed,
            accesses=args.accesses,
            workers=args.workers,
            kill_after_epochs=args.kill_after,
            progress=lambda msg: print(f"[chaos] {msg}", flush=True),
        )
    except (RuntimeError, ValueError) as exc:
        print(f"chaos soak failed: {exc}", file=sys.stderr)
        return 1

    print(f"\nuninterrupted digest  {record['uninterrupted_digest']}")
    print(f"resumed digest        {record['resumed_digest']}")
    print(f"victim killed: {record['killed']}, resumed from epoch "
          f"{record['resumed_from_epoch']} "
          f"({record['checkpoints_on_disk']} checkpoint(s) survived)")
    for entry in record["resilience_curve"]:
        print(f"  epoch {entry['epoch']}: goodput {entry['goodput']:.3f}, "
              f"retry-amp {entry['retry_amplification']:.3f}, "
              f"TTR {entry['recovery_ms_max']:.1f} ms")
    if args.out:
        _write_stats_json(args.out, record)
    if record["digests_equal"]:
        print("\nrecovery is bit-identical: PASS")
        return 0
    print("\nrecovery digest MISMATCH: the resumed run diverged from the "
          "uninterrupted run", file=sys.stderr)
    return 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.export import write_sweep_csv, write_sweep_json
    from repro.parallel import ResultCache, SweepSpec, parse_seeds, run_sweep

    systems = all_systems()
    if args.systems != "all":
        wanted = [name.strip() for name in args.systems.split(",") if name.strip()]
        unknown = [name for name in wanted if name not in systems]
        if unknown:
            print(f"unknown system(s) {unknown}; choose from {SYSTEM_NAMES}",
                  file=sys.stderr)
            return 2
        systems = {name: systems[name] for name in wanted}
    try:
        seeds = parse_seeds(args.seeds)
    except ValueError as exc:
        print(f"bad --seeds: {exc}", file=sys.stderr)
        return 2

    from repro.parallel import DeterminismError, SweepError

    spec = SweepSpec(systems=systems, seeds=seeds, sim=_sim_config(args))
    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    try:
        outcome = run_sweep(
            spec,
            workers=args.workers,
            cache=cache,
            task_timeout=args.task_timeout,
            verify_cached=args.verify_cached,
        )
    except (SweepError, DeterminismError) as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1

    p99_by_system = {name: [] for name in systems}
    busy_by_system = {name: [] for name in systems}
    for point, result in zip(spec.points(), outcome.results.values()):
        p99_by_system[point.system.name].append(result.avg_p99_ms())
        busy_by_system[point.system.name].append(result.avg_busy_cores)
    from repro.analysis.report import format_sweep_table

    print(format_sweep_table(
        f"Avg P99 across {len(seeds)} seed(s)", p99_by_system, unit="ms"))
    print()
    print(format_sweep_table(
        "Busy cores (of 36)", busy_by_system, precision=1))
    print(f"\n{spec.size()} point(s) in {outcome.elapsed_s:.1f}s with "
          f"{args.workers} worker(s): {outcome.computed} computed, "
          f"{outcome.from_cache} from cache, {outcome.retried} retried")
    if cache is not None:
        stats = cache.stats
        print(f"cache [{args.cache_dir}]: {stats.hits} hit(s), "
              f"{stats.misses} miss(es), {stats.invalidations} invalidated "
              f"({stats.hit_rate() * 100:.0f}% hit rate)")
    if args.json:
        write_sweep_json(args.json, outcome.results)
        print(f"wrote JSON results to {args.json}")
    if args.csv:
        write_sweep_csv(args.csv, outcome.results)
        print(f"wrote CSV results to {args.csv}")
    if args.stats_json:
        from repro.core.export import sweep_results_digest

        _write_stats_json(args.stats_json, {
            "digest": sweep_results_digest(outcome.results),
            "points": spec.size(),
            "computed": outcome.computed,
            "from_cache": outcome.from_cache,
            "retried": outcome.retried,
            "workers": args.workers,
            "elapsed_s": outcome.elapsed_s,
            "cache": cache.stats.as_dict() if cache is not None else None,
        })
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run one canned fault scenario across systems and report degradation."""
    from repro.analysis.report import format_resilience_table
    from repro.core.export import write_sweep_json
    from repro.faults import SCENARIOS, get_scenario, scenario_names
    from repro.parallel import DeterminismError, ResultCache, SweepError, run_sweep
    from repro.parallel.sweep import SweepPoint

    if args.list:
        for name in scenario_names():
            scenario = get_scenario(name, args.horizon_ms)
            print(f"{name:12s} {scenario.description} "
                  f"({len(scenario.schedule)} fault(s))")
        return 0
    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r}; choose from "
              f"{scenario_names()}", file=sys.stderr)
        return 2
    systems = all_systems()
    wanted = [name.strip() for name in args.systems.split(",") if name.strip()]
    unknown = [name for name in wanted if name not in systems]
    if unknown:
        print(f"unknown system(s) {unknown}; choose from {SYSTEM_NAMES}",
              file=sys.stderr)
        return 2

    scenario = get_scenario(args.scenario, args.horizon_ms)
    simcfg = replace(
        _sim_config(args), faults=scenario.schedule, client=scenario.client
    )
    print(f"=== scenario {scenario.name}: {scenario.description}")
    print(scenario.schedule.describe())
    print(f"client: timeout={scenario.client.timeout_ms:g}ms "
          f"retries<={scenario.client.max_retries} "
          f"budget={scenario.client.retry_budget:g} "
          f"hedge={scenario.client.hedge_ms or 'off'} "
          f"admission_depth={scenario.client.admission_queue_depth or 'off'}\n")

    points = [
        SweepPoint(label=name, system=systems[name], sim=simcfg)
        for name in wanted
    ]
    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    try:
        outcome = run_sweep(points, workers=args.workers, cache=cache)
    except (SweepError, DeterminismError) as exc:
        print(f"fault run failed: {exc}", file=sys.stderr)
        return 1

    results = outcome.results
    print(format_resilience_table(results))
    print()
    cols = ["p99_ms", "goodput_rps", "timeouts", "retries", "hedges"]
    rows = {
        name: [
            res.avg_p99_ms(),
            res.resilience.get("goodput_rps", 0.0),
            res.resilience.get("timeouts", 0.0),
            res.resilience.get("retries", 0.0),
            res.resilience.get("hedges", 0.0),
        ]
        for name, res in results.items()
    }
    print(format_table("Latency and client effort", cols, rows))
    print(f"\n{len(points)} point(s) in {outcome.elapsed_s:.1f}s with "
          f"{args.workers} worker(s): {outcome.computed} computed, "
          f"{outcome.from_cache} from cache")
    if cache is not None:
        stats = cache.stats
        print(f"cache [{args.cache_dir}]: {stats.hits} hit(s), "
              f"{stats.misses} miss(es) "
              f"({stats.hit_rate() * 100:.0f}% hit rate)")
    if args.json:
        write_sweep_json(args.json, results)
        print(f"wrote JSON results to {args.json}")
    if args.stats_json:
        _write_stats_json(args.stats_json, {
            "points": len(points),
            "computed": outcome.computed,
            "from_cache": outcome.from_cache,
            "retried": outcome.retried,
            "workers": args.workers,
            "elapsed_s": outcome.elapsed_s,
            "cache": cache.stats.as_dict() if cache is not None else None,
        })
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one system with telemetry on; export trace artifacts."""
    import os

    from repro.analysis.critical_path import critical_path_report
    from repro.config import TelemetryConfig
    from repro.core.experiment import run_server_raw
    from repro.core.ioutil import atomic_open
    from repro.telemetry.export import write_perfetto_json, write_timeseries_csv

    kind = next((k for k in SystemKind if k.value == args.system), None)
    if kind is None:
        print(f"unknown system {args.system!r}; choose from {SYSTEM_NAMES}",
              file=sys.stderr)
        return 2
    simcfg = replace(
        _sim_config(args),
        telemetry=TelemetryConfig(
            enabled=True,
            max_events=args.max_events,
            probe_interval_us=args.probe_interval_us,
        ),
    )
    sim = run_server_raw(build_system(kind), simcfg)

    vm_names = {vm.vm_id: vm.name for vm in sim.primary_vms}
    for hvm in sim.harvest_vms:
        vm_names[hvm.vm_id] = hvm.name
    events = sim.tracer.events()
    os.makedirs(args.out, exist_ok=True)
    trace_path = os.path.join(args.out, "trace.json")
    csv_path = os.path.join(args.out, "timeseries.csv")
    report_path = os.path.join(args.out, "critical_path.txt")
    n_te = write_perfetto_json(trace_path, events, vm_names, len(sim.cores))
    n_rows = write_timeseries_csv(csv_path, sim.probes)
    report = critical_path_report(
        events, {vm.vm_id: vm.name for vm in sim.primary_vms}
    )
    with atomic_open(report_path) as fh:
        fh.write(report + "\n")

    print(report)
    print(f"\n{len(events)} span event(s) "
          f"({sim.tracer.dropped} dropped by ring eviction), "
          f"{n_rows} probe sample(s) ({sim.probes.dropped} dropped)")
    print(f"wrote {trace_path} ({n_te} trace events; "
          f"load at https://ui.perfetto.dev)")
    print(f"wrote {csv_path}")
    print(f"wrote {report_path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation-as-a-service HTTP job API (repro.service)."""
    from repro.service import JobService

    service = JobService(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        cache=not args.no_cache,
        max_queue=args.max_queue,
        service_workers=args.service_workers,
        grace_s=args.grace_s,
        job_ttl_s=args.job_ttl_s,
    )
    try:
        service.run()
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc.strerror or exc}",
              file=sys.stderr)
        return 1
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect and manage the content-addressed result cache."""
    from repro.parallel import ResultCache

    cache = ResultCache(root=args.cache_dir)
    pruned = 0
    if args.prune_stale:
        pruned = cache.prune_stale()
        print(f"pruned {pruned} stale entr{'y' if pruned == 1 else 'ies'}")
    pruned_jobs = 0
    if args.prune_jobs is not None:
        from repro.service.jobs import JobStore, prune_job_records

        pruned_jobs = prune_job_records(
            JobStore(args.cache_dir), args.prune_jobs
        )
        print(f"pruned {pruned_jobs} terminal job record(s) older than "
              f"{args.prune_jobs:.0f}s")
    disk = cache.disk_stats()
    print(f"cache [{args.cache_dir}] version {cache.version}:")
    print(f"  entries        {disk['entries']:8d} "
          f"({disk['bytes'] / 1024:.1f} KB)")
    print(f"  current        {disk['current']:8d}")
    print(f"  stale          {disk['stale']:8d}"
          + ("  (reclaim with --prune-stale)" if disk["stale"] else ""))
    print(f"  jobs           {disk['jobs']:8d} service job record(s)")
    for version, count in sorted(disk["by_version"].items()):
        print(f"    {version:12s} {count:6d}")
    for fmt, count in sorted(disk["by_format"].items()):
        print(f"  format {fmt:8s}{count:8d}"
              + ("  (compressed)" if fmt == "v2" else ""))
    if args.stats_json:
        _write_stats_json(args.stats_json, {
            **disk,
            "version": cache.version,
            "pruned": pruned,
            "pruned_jobs": pruned_jobs,
            "session": cache.stats.as_dict(),
        })
    return 0


def cmd_storage(_args: argparse.Namespace) -> int:
    report = compute_storage_report(ControllerConfig(), HierarchyConfig(), 36)
    print("HardHarvest hardware cost (Section 6.8):")
    print(f"  controller storage  {report.controller_bytes / 1024:6.2f} KB")
    print(f"  shared bits/server  {report.shared_bit_bytes_total / 1024:6.2f} KB")
    print(f"  area overhead       {report.area_overhead_fraction * 100:6.3f} %")
    print(f"  power overhead      {report.power_overhead_fraction * 100:6.3f} %")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one server simulation with :mod:`cProfile`.

    Profiles :func:`~repro.core.experiment.run_server_raw` — construction
    plus the full event loop, exactly what the speedup benchmarks time —
    and prints the top functions by ``--sort``.  ``--output`` additionally
    dumps the raw pstats file for ``snakeviz``/``pstats`` browsing.
    """
    import cProfile
    import pstats

    kind = next((k for k in SystemKind if k.value == args.system), None)
    if kind is None:
        print(f"unknown system {args.system!r}; choose from {SYSTEM_NAMES}",
              file=sys.stderr)
        return 2
    from repro.core.experiment import run_server_raw

    system = build_system(kind)
    simcfg = _sim_config(args)
    profiler = cProfile.Profile()
    profiler.enable()
    run_server_raw(system, simcfg)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.output:
        profiler.dump_stats(args.output)
        print(f"wrote raw profile to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="HardHarvest reproduction: simulate core harvesting.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--horizon-ms", type=float, default=300.0,
                       help="simulated wall-clock per server (default 300)")
        p.add_argument("--seed", type=int, default=2025)
        p.add_argument("--accesses", type=int, default=24,
                       help="sampled memory accesses per compute segment")

    p_run = sub.add_parser("run", help="simulate one system")
    p_run.add_argument("--system", default="HardHarvest-Block",
                       choices=SYSTEM_NAMES)
    p_run.add_argument("--config", default=None,
                       help="load a serialized experiment (JSON) instead")
    p_run.add_argument("--dump-config", default=None,
                       help="write the experiment JSON and exit")
    common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="all five systems, same workload")
    common(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_cl = sub.add_parser(
        "cluster",
        help="multi-server run; --requests/--routing/--workers engage the "
             "sharded cluster-scale layer (repro.cluster_scale)",
    )
    p_cl.add_argument("--system", default="HardHarvest-Block",
                      choices=SYSTEM_NAMES)
    p_cl.add_argument("--servers", type=int, default=8)
    p_cl.add_argument("--requests", type=int, default=None,
                      help="total requests the front-end routes across the "
                           "cluster (default: nominal per-server load)")
    p_cl.add_argument("--workers", type=int, default=1,
                      help="process-pool shards per epoch (1 = serial; "
                           "results are bit-identical either way)")
    p_cl.add_argument("--routing", default=None,
                      help="round-robin | least-loaded | p2c "
                           "(default round-robin)")
    p_cl.add_argument("--epochs", type=int, default=1,
                      help="barrier-separated simulation rounds (routing "
                           "feedback + harvest rebalancing exchange)")
    p_cl.add_argument("--no-rebalance", action="store_true",
                      help="disable inter-server harvest rebalancing")
    p_cl.add_argument("--harvest-base", type=int, default=None,
                      help="starting harvest-VM base cores per server "
                           "(default: the system preset's value)")
    p_cl.add_argument("--harvest-min", type=int, default=1,
                      help="rebalancer lower bound on harvest cores")
    p_cl.add_argument("--harvest-max", type=int, default=4,
                      help="rebalancer upper bound on harvest cores")
    p_cl.add_argument("--fault-plan", default=None,
                      help="canned cluster fault plan: crash-storm | "
                           "brownout-wave | slow-core-epidemic")
    p_cl.add_argument("--cooldown", type=int, default=None,
                      help="epochs a crashed server stays excluded from "
                           "routing (default: the plan's own setting)")
    p_cl.add_argument("--checkpoint", action="store_true",
                      help="persist a digest-stamped checkpoint at every "
                           "epoch barrier and auto-resume from matching "
                           "checkpoints")
    p_cl.add_argument("--checkpoint-dir", default=None,
                      help="checkpoint directory (default "
                           "<cache-dir>/checkpoints)")
    p_cl.add_argument("--resume", default=None, metavar="RUN_KEY",
                      help="resume the run with this checkpoint run key "
                           "(refuses to start if the key does not match "
                           "the given configuration)")
    p_cl.add_argument("--no-cache", action="store_true",
                      help="recompute every point; do not touch the cache")
    p_cl.add_argument("--cache-dir", default=".repro_cache",
                      help="result cache directory (default .repro_cache)")
    p_cl.add_argument("--task-timeout", type=float, default=None,
                      help="per-point timeout in seconds (default: none)")
    p_cl.add_argument("--json", default=None, help="write results JSON here")
    p_cl.add_argument("--csv", default=None, help="write results CSV here")
    p_cl.add_argument("--stats-json", default=None,
                      help="write digest + run statistics JSON here "
                           "(the CI determinism smoke's input)")
    common(p_cl)
    p_cl.set_defaults(func=cmd_cluster)

    p_sw = sub.add_parser(
        "sweep", help="systems x seeds grid via the parallel runner + cache"
    )
    p_sw.add_argument("--systems", default="all",
                      help='"all" or a comma list of system names')
    p_sw.add_argument("--seeds", default="0..7",
                      help='seed set: "0..7", "3", or "0,2,8..11"')
    p_sw.add_argument("--workers", type=int, default=1,
                      help="process-pool size (1 = in-process serial)")
    p_sw.add_argument("--no-cache", action="store_true",
                      help="recompute every point; do not touch the cache")
    p_sw.add_argument("--cache-dir", default=".repro_cache",
                      help="result cache directory (default .repro_cache)")
    p_sw.add_argument("--task-timeout", type=float, default=None,
                      help="per-point timeout in seconds (default: none)")
    p_sw.add_argument("--verify-cached", action="store_true",
                      help="recompute cache hits and assert bit-identical")
    p_sw.add_argument("--json", default=None, help="write results JSON here")
    p_sw.add_argument("--csv", default=None, help="write results CSV here")
    p_sw.add_argument("--stats-json", default=None,
                      help="write run/cache statistics JSON here (what CI "
                           "asserts on instead of grepping stdout)")
    common(p_sw)
    p_sw.set_defaults(func=cmd_sweep)

    p_ft = sub.add_parser(
        "faults", help="canned fault scenario + degradation report"
    )
    p_ft.add_argument("--scenario", default="crash-storm",
                      help="scenario name (see --list)")
    p_ft.add_argument("--list", action="store_true",
                      help="list available scenarios and exit")
    p_ft.add_argument("--systems", default="NoHarvest,HardHarvest-Block",
                      help="comma list of systems to compare under faults")
    p_ft.add_argument("--workers", type=int, default=1,
                      help="process-pool size (1 = in-process serial)")
    p_ft.add_argument("--no-cache", action="store_true",
                      help="recompute every point; do not touch the cache")
    p_ft.add_argument("--cache-dir", default=".repro_cache",
                      help="result cache directory (default .repro_cache)")
    p_ft.add_argument("--json", default=None, help="write results JSON here")
    p_ft.add_argument("--stats-json", default=None,
                      help="write run/cache statistics JSON here (what CI "
                           "asserts on instead of grepping stdout)")
    common(p_ft)
    p_ft.set_defaults(func=cmd_faults)

    p_ch = sub.add_parser(
        "chaos",
        help="SIGKILL-and-resume soak: kill a checkpointing cluster run "
             "mid-flight, resume, assert bit-identical recovery",
    )
    p_ch.add_argument("--system", default="HardHarvest-Block",
                      choices=SYSTEM_NAMES)
    p_ch.add_argument("--servers", type=int, default=3)
    p_ch.add_argument("--requests", type=int, default=2400,
                      help="total routed requests (default 2400)")
    p_ch.add_argument("--epochs", type=int, default=4,
                      help="epochs (>= 2 so there is a barrier to kill at)")
    p_ch.add_argument("--routing", default="p2c",
                      help="round-robin | least-loaded | p2c (default p2c)")
    p_ch.add_argument("--plan", default="crash-storm",
                      help="cluster fault plan (default crash-storm)")
    p_ch.add_argument("--workers", type=int, default=1,
                      help="worker count for all three runs")
    p_ch.add_argument("--kill-after", type=int, default=1,
                      help="checkpointed epochs required before SIGKILL "
                           "(default 1)")
    p_ch.add_argument("--out", default=None,
                      help="write the chaos benchmark record JSON here")
    common(p_ch)
    p_ch.set_defaults(func=cmd_chaos, horizon_ms=25.0, accesses=2)

    p_tr = sub.add_parser(
        "trace", help="run with telemetry and export Perfetto/CSV artifacts"
    )
    p_tr.add_argument("--system", default="HardHarvest-Block",
                      choices=SYSTEM_NAMES)
    p_tr.add_argument("--out", default="traces",
                      help="output directory (default traces/)")
    p_tr.add_argument("--max-events", type=int, default=1_000_000,
                      help="span-tracer ring-buffer capacity")
    p_tr.add_argument("--probe-interval-us", type=float, default=50.0,
                      help="gauge sampling cadence in simulated µs")
    common(p_tr)
    p_tr.set_defaults(func=cmd_trace)

    p_pr = sub.add_parser(
        "profile", help="cProfile one server run and print the hot functions"
    )
    p_pr.add_argument("--system", default="HardHarvest-Block",
                      choices=SYSTEM_NAMES)
    p_pr.add_argument("--sort", default="cumtime",
                      choices=["cumtime", "tottime", "ncalls", "calls",
                               "time", "cumulative"],
                      help="pstats sort key (default cumtime)")
    p_pr.add_argument("--top", type=int, default=25,
                      help="number of stats rows to print (default 25)")
    p_pr.add_argument("--output", default=None,
                      help="also dump the raw pstats file here")
    common(p_pr)
    p_pr.set_defaults(func=cmd_profile)

    p_sv = sub.add_parser(
        "serve",
        help="HTTP job API: POST configs, poll jobs, download digested "
             "results and traces, scrape Prometheus metrics "
             "(repro.service)",
    )
    p_sv.add_argument("--host", default="127.0.0.1",
                      help="bind address (default 127.0.0.1)")
    p_sv.add_argument("--port", type=int, default=8023,
                      help="bind port (default 8023; 0 = ephemeral)")
    p_sv.add_argument("--cache-dir", default=".repro_cache",
                      help="result cache + job store root "
                           "(default .repro_cache)")
    p_sv.add_argument("--no-cache", action="store_true",
                      help="run jobs without the result cache (job records "
                           "still persist under <cache-dir>/jobs)")
    p_sv.add_argument("--max-queue", type=int, default=64,
                      help="admission limit on queued jobs (default 64)")
    p_sv.add_argument("--service-workers", type=int, default=2,
                      help="concurrent jobs the service executes "
                           "(default 2; each job also has its own "
                           "per-job 'workers' process pool)")
    p_sv.add_argument("--grace-s", type=float, default=30.0,
                      help="seconds SIGTERM/SIGINT waits for in-flight "
                           "jobs before requeueing them (default 30)")
    p_sv.add_argument("--job-ttl-s", type=float, default=None,
                      help="evict terminal (done/failed) job records and "
                           "their .result/.trace files this many seconds "
                           "after they finish (default: keep forever; "
                           "simulation results stay in the result cache "
                           "either way)")
    p_sv.set_defaults(func=cmd_serve)

    p_ca = sub.add_parser(
        "cache",
        help="inspect .repro_cache: entry/size stats and stale-entry "
             "pruning after version bumps",
    )
    p_ca.add_argument("--cache-dir", default=".repro_cache",
                      help="result cache directory (default .repro_cache)")
    p_ca.add_argument("--prune-stale", action="store_true",
                      help="delete entries recorded under other package "
                           "versions (they can never be returned; this "
                           "reclaims their disk space)")
    p_ca.add_argument("--prune-jobs", type=float, default=None,
                      metavar="TTL_S",
                      help="delete terminal (done/failed) service job "
                           "records — and their .result/.trace files — "
                           "older than TTL_S seconds (0 = every terminal "
                           "record); queued/running jobs are kept")
    p_ca.add_argument("--stats-json", default=None,
                      help="write the disk statistics JSON here")
    p_ca.set_defaults(func=cmd_cache)

    p_st = sub.add_parser("storage", help="Section 6.8 hardware cost")
    p_st.set_defaults(func=cmd_storage)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
