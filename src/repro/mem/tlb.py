"""TLB model: a set-associative array at page granularity.

TLB entries carry the paper's Shared page bit (copied from the page table
entry, Section 4.2.2) so the HardHarvest replacement policy can steer shared
translations into the non-harvest region.
"""

from __future__ import annotations

from typing import Tuple

from repro.mem.cache import SetAssocArray
from repro.mem.replacement import ReplacementPolicy


class Tlb:
    """One TLB level (L1 or L2)."""

    def __init__(
        self,
        name: str,
        entries: int,
        ways: int,
        round_trip_cycles: int,
        policy: ReplacementPolicy,
        page_bytes: int = 4096,
    ):
        if entries % ways != 0:
            raise ValueError(f"{name}: entries {entries} not divisible by ways {ways}")
        self.page_bytes = page_bytes
        self.round_trip_cycles = round_trip_cycles
        self.array = SetAssocArray(name, entries // ways, ways, policy)

    @property
    def name(self) -> str:
        return self.array.name

    def locate(self, addr: int) -> Tuple[int, int]:
        page = addr // self.page_bytes
        return page % self.array.num_sets, page // self.array.num_sets

    def access(self, addr: int, shared: bool, allowed: int) -> bool:
        set_index, tag = self.locate(addr)
        return self.array.access(set_index, tag, shared, allowed)

    def flush_ways(self, mask: int) -> int:
        return self.array.flush_ways(mask)

    def flush_all(self) -> int:
        return self.array.flush_all()

    def hit_rate(self) -> float:
        return self.array.hit_rate()
