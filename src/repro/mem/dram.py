"""Main-memory model.

The paper uses DRAMSim2; here a fixed-latency model with a light
bandwidth-pressure term stands in. Each access costs ``access_ns`` plus a
queueing penalty that grows once the recent access rate approaches the
configured bandwidth (keeping memory-intensive batch jobs, e.g. RndFTrain in
Figure 17, from enjoying free unlimited bandwidth).
"""

from __future__ import annotations

from repro.config import MemoryConfig


class DramModel:
    """Latency/bandwidth main-memory model shared by one server."""

    LINE_BYTES = 64

    def __init__(self, config: MemoryConfig):
        self.config = config
        self.accesses = 0
        # Exponentially-averaged inter-access gap (ns) used as a pressure
        # signal; starts relaxed.
        self._avg_gap_ns = 1000.0
        self._last_access_ns = 0

    def access_latency(self, now_ns: int) -> int:
        """Latency (ns) of one line fill issued at ``now_ns``."""
        self.accesses += 1
        gap = max(0, now_ns - self._last_access_ns)
        self._last_access_ns = now_ns
        self._avg_gap_ns = 0.99 * self._avg_gap_ns + 0.01 * gap
        # Gap that saturates the configured bandwidth for 64B lines.
        saturation_gap = self.LINE_BYTES / self.config.bandwidth_gbps  # ns
        if self._avg_gap_ns < saturation_gap:
            # Pressure: queueing inflates latency up to 3x at full saturation.
            pressure = min(1.0, saturation_gap / max(self._avg_gap_ns, 1e-9) - 1.0)
            return int(self.config.access_ns * (1.0 + 2.0 * pressure))
        return self.config.access_ns
