"""A minimal invalidation-based coherence directory.

Section 4.2.1 notes that under way-partitioning, "coherence messages such
as invalidations are still received for data in either the harvest or the
non-harvest ways, since data is not remapped." This module provides the
directory model that backs that statement: it tracks which cores hold a
copy of each line and, on a write, invalidates the other sharers'
copies — regardless of which way (harvest or non-harvest) holds them.

The engine's default configuration does not route every access through the
directory (requests are core-affine, so cross-core sharing is rare and the
hot path stays lean); the directory is provided for microarchitectural
studies and is exercised by unit tests demonstrating the paper's claim:
partitioning does NOT block coherence invalidations.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set

from repro.mem.cache import Cache
from repro.mem.partition import full_mask


class Directory:
    """Line-granular sharer tracking over a set of per-core caches."""

    def __init__(self, line_bytes: int = 64):
        if line_bytes <= 0:
            raise ValueError(f"line_bytes must be positive, got {line_bytes}")
        self.line_bytes = line_bytes
        self._caches: Dict[int, List[Cache]] = {}
        self._sharers: Dict[int, Set[int]] = defaultdict(set)
        self.invalidations_sent = 0

    def register_core(self, core_id: int, caches: Iterable[Cache]) -> None:
        """Register the private cache levels of one core."""
        if core_id in self._caches:
            raise ValueError(f"core {core_id} already registered")
        self._caches[core_id] = list(caches)

    def _line(self, addr: int) -> int:
        return addr // self.line_bytes

    # ------------------------------------------------------------------
    def read(self, core_id: int, addr: int, shared_bit: bool, allowed: int) -> None:
        """A core reads a line: fill its caches, record it as a sharer."""
        self._require(core_id)
        for cache in self._caches[core_id]:
            cache.access(addr, shared_bit, allowed)
        self._sharers[self._line(addr)].add(core_id)

    def write(self, core_id: int, addr: int, shared_bit: bool, allowed: int) -> int:
        """A core writes a line: invalidate every other sharer's copy.

        Returns the number of invalidation messages sent. Invalidation
        reaches harvest and non-harvest ways alike — the partition mask
        restricts *allocation*, never coherence visibility.
        """
        self._require(core_id)
        line = self._line(addr)
        invalidated = 0
        for sharer in list(self._sharers[line]):
            if sharer == core_id:
                continue
            for cache in self._caches[sharer]:
                set_index, tag = cache.locate(addr)
                cset = cache.array.sets.get(set_index)
                if cset is None:
                    continue
                if cset.seen_flush < cache.array._flush_epoch:
                    cache.array._reconcile(cset)
                way = cset.find(tag, full_mask(cache.array.ways))
                if way >= 0:
                    # Index-coherent invalidation: these sets are owned by a
                    # SetAssocArray, whose hashed tag store must not go
                    # stale when the directory knocks a line out.
                    cset.invalidate_way(way)
                    invalidated += 1
            self._sharers[line].discard(sharer)
        self.invalidations_sent += invalidated
        for cache in self._caches[core_id]:
            cache.access(addr, shared_bit, allowed, write=True)
        self._sharers[line].add(core_id)
        return invalidated

    def sharers_of(self, addr: int) -> Set[int]:
        return set(self._sharers[self._line(addr)])

    def _require(self, core_id: int) -> None:
        if core_id not in self._caches:
            raise KeyError(f"core {core_id} not registered")
