"""Way-partition masks: the HarvestMask register (Section 4.2.1, Figure 9).

Each private structure (L1I/L1D/L2 caches, L1/L2 TLBs) is way-partitioned
into a *harvest region* and a *non-harvest region*. A Primary VM may use all
ways; a Harvest VM only the harvest region. Masks are integers with bit ``w``
set when way ``w`` belongs to the region.
"""

from __future__ import annotations

from dataclasses import dataclass


def full_mask(ways: int) -> int:
    """Mask with all ``ways`` bits set."""
    if ways <= 0:
        raise ValueError(f"ways must be positive, got {ways}")
    return (1 << ways) - 1


def harvest_mask(ways: int, harvest_fraction: float) -> int:
    """Mask selecting the harvest region: the low ``round(frac*ways)`` ways.

    At least one way always lands in each region so both VMs can run.
    """
    if not 0.0 < harvest_fraction < 1.0:
        raise ValueError(f"harvest_fraction must be in (0,1), got {harvest_fraction}")
    n_harvest = int(round(ways * harvest_fraction))
    n_harvest = min(max(n_harvest, 1), ways - 1)
    return (1 << n_harvest) - 1


@dataclass(frozen=True)
class WayPartition:
    """Partition of one structure's ways, as stored in a HarvestMask."""

    ways: int
    harvest: int  # bitmask of harvest-region ways

    @property
    def non_harvest(self) -> int:
        return full_mask(self.ways) & ~self.harvest

    @property
    def all_ways(self) -> int:
        return full_mask(self.ways)

    @property
    def harvest_way_count(self) -> int:
        return bin(self.harvest).count("1")

    @staticmethod
    def split(ways: int, harvest_fraction: float) -> "WayPartition":
        return WayPartition(ways=ways, harvest=harvest_mask(ways, harvest_fraction))

    @staticmethod
    def unpartitioned(ways: int) -> "WayPartition":
        """No harvest region: everything behaves like one region."""
        return WayPartition(ways=ways, harvest=0)
