"""Replacement policies for set-associative caches and TLBs.

Implements the four policies compared in Figure 14 of the paper:

* :class:`LruPolicy` — vanilla least-recently-used.
* :class:`RripPolicy` — 2-bit SRRIP [37].
* :class:`HardHarvestPolicy` — the paper's Algorithm 1: steer *shared*
  entries into non-harvest ways and *private* entries into harvest ways,
  restricted to the M least-recently-used *eviction candidates* of the set,
  with LRU tie-breaking. (Belady's offline MIN lives in
  :mod:`repro.analysis.belady` since it needs the future trace.)

A policy operates on a :class:`CacheSet`, which stores per-way metadata as
parallel lists for speed. Ways may be restricted by an ``allowed`` bitmask:
when a core executes a Harvest VM under partitioning, only harvest-region
ways are accessible (Section 4.2.1).
"""

from __future__ import annotations

from typing import List


class CacheSet:
    """Per-way metadata of one cache/TLB set.

    ``tags[w]`` is the tag stored in way ``w`` (arbitrary int), ``valid[w]``
    whether it holds data, ``shared[w]`` the paper's Shared page bit.
    ``stamp[w]`` is a recency stamp maintained by the policies (higher =
    more recent); ``rrpv[w]`` is RRIP's re-reference prediction value.
    """

    __slots__ = (
        "ways", "tags", "valid", "shared", "dirty", "stamp", "rrpv",
        "clock", "seen_flush", "index", "valid_mask",
    )

    def __init__(self, ways: int):
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.ways = ways
        self.tags: List[int] = [0] * ways
        self.valid: List[bool] = [False] * ways
        self.shared: List[bool] = [False] * ways
        self.dirty: List[bool] = [False] * ways
        self.stamp: List[int] = [0] * ways
        self.rrpv: List[int] = [0] * ways
        self.clock = 0
        #: Flush epoch this set has reconciled up to (see SetAssocArray).
        self.seen_flush = 0
        #: Hashed tag store: tag -> bitmask of *valid* ways holding it.
        #: Maintained only by :meth:`fill` / :meth:`invalidate_way`; code
        #: that mutates ``tags``/``valid`` directly (tests, offline replay)
        #: must keep using the linear :meth:`find`.
        self.index: dict = {}
        #: Bitmask mirror of ``valid`` (bit w set <=> valid[w] is True),
        #: subject to the same maintenance contract as ``index``.
        self.valid_mask = 0

    def find(self, tag: int, allowed: int) -> int:
        """Way index holding ``tag`` among allowed ways, or -1.

        Linear reference scan; valid regardless of how the set was
        populated. The hot path uses :meth:`find_fast` instead.
        """
        tags = self.tags
        valid = self.valid
        for w in range(self.ways):
            if valid[w] and tags[w] == tag and (allowed >> w) & 1:
                return w
        return -1

    def find_fast(self, tag: int, allowed: int) -> int:
        """Index-backed :meth:`find`; requires fill/invalidate discipline.

        The same tag can occupy several ways (a mask-restricted miss fills
        a copy even when a disallowed way already holds the tag), so the
        index stores a way *mask*; the lowest allowed way wins, matching
        the linear scan exactly.
        """
        m = self.index.get(tag)
        if m is None:
            return -1
        m &= allowed
        if m == 0:
            return -1
        return (m & -m).bit_length() - 1

    def fill(self, way: int, tag: int, shared: bool, dirty: bool) -> None:
        """Install ``tag`` in ``way``, keeping the index/mask coherent."""
        bit = 1 << way
        index = self.index
        if self.valid_mask & bit:
            old = self.tags[way]
            m = index[old] & ~bit
            if m:
                index[old] = m
            else:
                del index[old]
        self.tags[way] = tag
        self.valid[way] = True
        self.shared[way] = shared
        self.dirty[way] = dirty
        self.valid_mask |= bit
        index[tag] = index.get(tag, 0) | bit

    def invalidate_way(self, way: int) -> bool:
        """Invalidate one way (index-coherently); True if it was valid."""
        bit = 1 << way
        if not self.valid[way]:
            # Tolerate sets populated by direct mutation: fall back to the
            # lists as ground truth and leave the (unused) index alone.
            return False
        self.valid[way] = False
        if self.valid_mask & bit:
            self.valid_mask &= ~bit
            tag = self.tags[way]
            m = self.index.get(tag, 0) & ~bit
            if m:
                self.index[tag] = m
            elif tag in self.index:
                del self.index[tag]
        return True

    def invalidate_ways(self, mask: int) -> int:
        """Invalidate every way selected by ``mask``; returns count flushed."""
        n = 0
        for w in range(self.ways):
            if (mask >> w) & 1 and self.invalidate_way(w):
                n += 1
        return n

    def touch(self, way: int) -> None:
        """Bump the recency stamp of ``way`` (most recently used)."""
        self.clock += 1
        self.stamp[way] = self.clock


class ReplacementPolicy:
    """Interface: victim choice plus hit/insert bookkeeping."""

    name = "base"

    def on_hit(self, cset: CacheSet, way: int) -> None:
        cset.touch(way)

    def on_insert(self, cset: CacheSet, way: int, shared: bool) -> None:
        cset.touch(way)

    def choose_victim(self, cset: CacheSet, incoming_shared: bool, allowed: int) -> int:
        raise NotImplementedError

    def choose_victim_full(
        self, cset: CacheSet, incoming_shared: bool, allowed: int
    ) -> int:
        """:meth:`choose_victim` for callers that already know every allowed
        way is valid (the batched walk checks ``valid_mask`` first), so the
        invalid-way scans can be skipped.  Must return exactly what
        :meth:`choose_victim` would under that precondition."""
        return self.choose_victim(cset, incoming_shared, allowed)


def _first_invalid(cset: CacheSet, allowed: int) -> int:
    for w in range(cset.ways):
        if (allowed >> w) & 1 and not cset.valid[w]:
            return w
    return -1


def _lru_way(cset: CacheSet, allowed: int) -> int:
    best = -1
    best_stamp = None
    for w in range(cset.ways):
        if (allowed >> w) & 1:
            s = cset.stamp[w]
            if best_stamp is None or s < best_stamp:
                best_stamp = s
                best = w
    if best < 0:
        raise ValueError("no allowed ways in set (allowed mask empty)")
    return best


class LruPolicy(ReplacementPolicy):
    """Least-recently-used with invalid-first filling."""

    name = "lru"

    def choose_victim(self, cset: CacheSet, incoming_shared: bool, allowed: int) -> int:
        inv = _first_invalid(cset, allowed)
        if inv >= 0:
            return inv
        return _lru_way(cset, allowed)

    def choose_victim_full(
        self, cset: CacheSet, incoming_shared: bool, allowed: int
    ) -> int:
        return _lru_way(cset, allowed)


class RripPolicy(ReplacementPolicy):
    """2-bit Static RRIP [37]: insert at RRPV=2, promote to 0 on hit,
    evict the first way with RRPV=3 (aging all ways until one exists)."""

    name = "rrip"
    MAX_RRPV = 3

    def on_hit(self, cset: CacheSet, way: int) -> None:
        cset.touch(way)
        cset.rrpv[way] = 0

    def on_insert(self, cset: CacheSet, way: int, shared: bool) -> None:
        cset.touch(way)
        cset.rrpv[way] = self.MAX_RRPV - 1

    def choose_victim(self, cset: CacheSet, incoming_shared: bool, allowed: int) -> int:
        inv = _first_invalid(cset, allowed)
        if inv >= 0:
            return inv
        if not any((allowed >> w) & 1 for w in range(cset.ways)):
            raise ValueError("no allowed ways in set (allowed mask empty)")
        rrpv = cset.rrpv
        while True:
            for w in range(cset.ways):
                if (allowed >> w) & 1 and rrpv[w] >= self.MAX_RRPV:
                    return w
            for w in range(cset.ways):
                if (allowed >> w) & 1:
                    rrpv[w] += 1

    def choose_victim_full(
        self, cset: CacheSet, incoming_shared: bool, allowed: int
    ) -> int:
        if not any((allowed >> w) & 1 for w in range(cset.ways)):
            raise ValueError("no allowed ways in set (allowed mask empty)")
        rrpv = cset.rrpv
        while True:
            for w in range(cset.ways):
                if (allowed >> w) & 1 and rrpv[w] >= self.MAX_RRPV:
                    return w
            for w in range(cset.ways):
                if (allowed >> w) & 1:
                    rrpv[w] += 1


class HardHarvestPolicy(ReplacementPolicy):
    """The paper's Algorithm 1 with the eviction-candidate window.

    ``harvest_mask`` marks which ways form the harvest region (bit per way).
    ``candidate_fraction`` is M: only the M least-recently-used allowed ways
    are eligible victims (Section 4.2.3), protecting popular private data.
    Ties within a priority class resolve by LRU.

    Priority (incoming shared entry, Section 4.2.4):
        invalid&non-harvest > invalid > non-harvest&private > harvest&private
        > any (all-shared case, LRU).
    Priority (incoming private entry): swap the harvest/non-harvest roles.
    """

    name = "hardharvest"

    def __init__(self, harvest_mask: int, candidate_fraction: float = 0.75):
        if not 0.0 < candidate_fraction <= 1.0:
            raise ValueError(
                f"candidate_fraction must be in (0,1], got {candidate_fraction}"
            )
        self.harvest_mask = harvest_mask
        self.candidate_fraction = candidate_fraction
        #: allowed-mask -> (allowed way tuple, window size M).  A policy
        #: instance serves one array, so way counts never vary; the masks
        #: seen are the partition's two (all-ways / harvest), making this a
        #: tiny memo that removes the per-call mask decode.
        self._window_cache: dict = {}

    def _candidates(self, cset: CacheSet, allowed: int) -> List[int]:
        """The M least-recently-used allowed ways, LRU-first order."""
        cached = self._window_cache.get(allowed)
        if cached is None:
            ways = tuple(w for w in range(cset.ways) if (allowed >> w) & 1)
            if not ways:
                raise ValueError("no allowed ways in set (allowed mask empty)")
            m = max(1, int(round(len(ways) * self.candidate_fraction)))
            cached = (ways, m)
            self._window_cache[allowed] = cached
        ways, m = cached
        # sorted() is stable, so ties resolve by ascending way index exactly
        # like the reference in-place sort of the ascending-built list did.
        return sorted(ways, key=cset.stamp.__getitem__)[:m]

    def choose_victim(self, cset: CacheSet, incoming_shared: bool, allowed: int) -> int:
        harvest = self.harvest_mask
        valid = cset.valid
        shared = cset.shared

        # Empty-slot handling is not window-restricted (Algorithm 1 top half).
        empty_pref = -1
        empty_any = -1
        for w in range(cset.ways):
            if (allowed >> w) & 1 and not valid[w]:
                if empty_any < 0:
                    empty_any = w
                in_harvest = (harvest >> w) & 1
                if incoming_shared and not in_harvest:
                    empty_pref = w
                    break
                if not incoming_shared and in_harvest:
                    empty_pref = w
                    break
        if empty_pref >= 0:
            return empty_pref
        if empty_any >= 0:
            return empty_any

        # Eviction case: restrict to the M least-recently-used candidates.
        candidates = self._candidates(cset, allowed)
        if incoming_shared:
            first_region, second_region = 0, 1  # non-harvest first
        else:
            first_region, second_region = 1, 0  # harvest first
        for wanted in (first_region, second_region):
            for w in candidates:
                if ((harvest >> w) & 1) == wanted and not shared[w]:
                    return w
        # All candidate slots hold shared entries: evict the LRU candidate.
        return candidates[0]

    def choose_victim_full(
        self, cset: CacheSet, incoming_shared: bool, allowed: int
    ) -> int:
        # Algorithm 1's empty-slot top half can find nothing when every
        # allowed way is valid; go straight to the windowed eviction case.
        candidates = self._candidates(cset, allowed)
        harvest = self.harvest_mask
        shared = cset.shared
        if incoming_shared:
            regions = (0, 1)  # non-harvest first
        else:
            regions = (1, 0)  # harvest first
        for wanted in regions:
            for w in candidates:
                if ((harvest >> w) & 1) == wanted and not shared[w]:
                    return w
        return candidates[0]


def make_policy(
    kind: str,
    harvest_mask: int = 0,
    candidate_fraction: float = 0.75,
) -> ReplacementPolicy:
    """Factory keyed by :class:`repro.config.ReplacementKind` values."""
    if kind == "lru":
        return LruPolicy()
    if kind == "rrip":
        return RripPolicy()
    if kind == "hardharvest":
        return HardHarvestPolicy(harvest_mask, candidate_fraction)
    raise ValueError(f"unknown replacement policy {kind!r}")
