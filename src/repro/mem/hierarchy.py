"""Per-core memory hierarchy: L1I/L1D/L2 caches, L1/L2 TLBs, and the access
path through them to the per-VM LLC partition and DRAM.

This is the structure HardHarvest partitions. Each private structure carries
a :class:`~repro.mem.partition.WayPartition`; a Primary VM sees all ways, a
Harvest VM only the harvest region (Section 4.2.1). Flushing either the full
private state (software wbinvd path) or just the harvest region (HardHarvest)
operates directly on the arrays, so cold-restart misses emerge naturally.
"""

from __future__ import annotations

from typing import Optional

from repro.config import HierarchyConfig, PartitionConfig, ReplacementKind
from repro.mem.cache import Cache
from repro.mem.dram import DramModel
from repro.mem.partition import WayPartition, full_mask
from repro.mem.replacement import (
    CacheSet,
    HardHarvestPolicy,
    LruPolicy,
    ReplacementPolicy,
    RripPolicy,
)
from repro.mem.tlb import Tlb
from repro.sim.units import cycles_to_ns


def _policy_for(
    kind: ReplacementKind, partition: WayPartition, candidate_fraction: float
) -> ReplacementPolicy:
    if kind is ReplacementKind.LRU:
        return LruPolicy()
    if kind is ReplacementKind.RRIP:
        return RripPolicy()
    if kind is ReplacementKind.HARDHARVEST:
        return HardHarvestPolicy(partition.harvest, candidate_fraction)
    raise ValueError(f"unknown replacement kind {kind}")


def build_llc(name: str, hierarchy: HierarchyConfig, num_cores: int) -> Cache:
    """Build a per-VM LLC partition sized for ``num_cores`` CAT shares.

    The LLC is partitioned per VM with CAT and never flushed (Section 2.3),
    so each VM simply owns a proportional slice, modeled as its own cache.
    """
    base = hierarchy.llc_per_core
    size = base.size_bytes * max(1, num_cores)
    return Cache(name, size, base.ways, base.line_bytes, base.round_trip_cycles, LruPolicy())


class CoreMemory:
    """The private caches and TLBs of one core, plus its access path."""

    def __init__(
        self,
        hierarchy: HierarchyConfig,
        partition_cfg: PartitionConfig,
        dram: DramModel,
    ):
        self.hierarchy = hierarchy
        self.partition_cfg = partition_cfg
        self.dram = dram
        h = hierarchy

        def make_partition(ways: int) -> WayPartition:
            if partition_cfg.enabled:
                return WayPartition.split(ways, partition_cfg.harvest_fraction)
            return WayPartition.unpartitioned(ways)

        self.part_l1d = make_partition(h.l1d.ways)
        self.part_l1i = make_partition(h.l1i.ways)
        self.part_l2 = make_partition(h.l2.ways)
        self.part_l1tlb = make_partition(h.l1_tlb.ways)
        self.part_l2tlb = make_partition(h.l2_tlb.ways)

        cf = partition_cfg.eviction_candidates_fraction
        kind = partition_cfg.replacement

        def cache(cfg, part: WayPartition) -> Cache:
            return Cache(
                cfg.name,
                cfg.size_bytes,
                cfg.ways,
                cfg.line_bytes,
                cfg.round_trip_cycles,
                _policy_for(kind, part, cf),
            )

        self.l1d = cache(h.l1d, self.part_l1d)
        self.l1i = cache(h.l1i, self.part_l1i)
        self.l2 = cache(h.l2, self.part_l2)
        self.l1_tlb = Tlb(
            h.l1_tlb.name,
            h.l1_tlb.entries,
            h.l1_tlb.ways,
            h.l1_tlb.round_trip_cycles,
            _policy_for(kind, self.part_l1tlb, cf),
            h.l1_tlb.page_bytes,
        )
        self.l2_tlb = Tlb(
            h.l2_tlb.name,
            h.l2_tlb.entries,
            h.l2_tlb.ways,
            h.l2_tlb.round_trip_cycles,
            _policy_for(kind, self.part_l2tlb, cf),
            h.l2_tlb.page_bytes,
        )
        # Modeling switch: "infinite caches" baseline for Figure 7.
        self.infinite = hierarchy.infinite

        # Way masks are immutable once the partitions exist; resolving the
        # properties per access is pure overhead on the hot path, so the
        # fast path (access_batch) uses these precomputed tuples, ordered
        # (l1_tlb, l2_tlb, l1i, l1d, l2).
        self._masks_all = (
            self.part_l1tlb.all_ways,
            self.part_l2tlb.all_ways,
            self.part_l1i.all_ways,
            self.part_l1d.all_ways,
            self.part_l2.all_ways,
        )
        self._masks_harvest = (
            self.part_l1tlb.harvest,
            self.part_l2tlb.harvest,
            self.part_l1i.harvest,
            self.part_l1d.harvest,
            self.part_l2.harvest,
        )
        # Lazily-built static state for the batched fast path; see
        # _build_batch_static / _build_llc_static.
        self._batch_static = None
        self._llc_static: dict = {}

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(
        self,
        addr: int,
        shared: bool,
        instruction: bool,
        llc: Optional[Cache],
        is_primary: bool,
        now_ns: int,
        write: bool = False,
    ) -> int:
        """One memory reference; returns its latency in nanoseconds.

        ``llc`` is the executing VM's LLC partition (None = modeled as hit
        in DRAM directly, used by microbenchmarks). ``is_primary`` selects
        the way mask: Harvest VMs are confined to the harvest region.
        ``write`` marks the filled/hit L1 line dirty (write-back caches).
        """
        h = self.hierarchy
        if self.infinite:
            # Everything hits in L1: the Figure 7 "Inf" configuration.
            l1 = self.l1i if instruction else self.l1d
            return cycles_to_ns(
                h.l1_tlb.round_trip_cycles + l1.round_trip_cycles, h.freq_ghz
            )

        if is_primary or not self.partition_cfg.enabled:
            m_l1tlb = self.part_l1tlb.all_ways
            m_l2tlb = self.part_l2tlb.all_ways
            m_l1 = self.part_l1i.all_ways if instruction else self.part_l1d.all_ways
            m_l2 = self.part_l2.all_ways
        else:
            m_l1tlb = self.part_l1tlb.harvest
            m_l2tlb = self.part_l2tlb.harvest
            m_l1 = self.part_l1i.harvest if instruction else self.part_l1d.harvest
            m_l2 = self.part_l2.harvest

        cycles = 0
        # Translation.
        if self.l1_tlb.access(addr, shared, m_l1tlb):
            cycles += h.l1_tlb.round_trip_cycles
        elif self.l2_tlb.access(addr, shared, m_l2tlb):
            cycles += h.l2_tlb.round_trip_cycles
        else:
            # Page walk; the L2 TLB access above already filled the entry.
            cycles += h.memory.page_walk_cycles

        # Data/instruction path.
        l1 = self.l1i if instruction else self.l1d
        if l1.access(addr, shared, m_l1, write):
            cycles += l1.round_trip_cycles
            return cycles_to_ns(cycles, h.freq_ghz)
        if self.l2.access(addr, shared, m_l2):
            cycles += self.l2.round_trip_cycles
            return cycles_to_ns(cycles, h.freq_ghz)
        if llc is not None and llc.access(addr, shared, full_mask(llc.array.ways)):
            cycles += llc.round_trip_cycles
            return cycles_to_ns(cycles, h.freq_ghz)
        return cycles_to_ns(cycles, h.freq_ghz) + self.dram.access_latency(now_ns)

    # ------------------------------------------------------------------
    # Batched access path (the fast path)
    # ------------------------------------------------------------------
    def _level_state(self, cache_or_tlb, granularity_bytes: int):
        """Static per-level constants for the inlined fast walk.

        Everything here is fixed once the hierarchy is built — the set
        dict, way count, policy callables, the ``simple`` flag (policy uses
        the base ``on_hit``/``on_insert``, i.e. a plain recency bump, so
        the walk can bump the stamp inline instead of making two calls per
        access), whether the policy carries a harvest mask for Algorithm
        1's empty-slot preference, the flush-bookkeeping containers (which
        are mutated in place, never rebound), and the shift/mask address
        decomposition.  Mutable values (flush epochs, the harvest mask
        value, way masks) are re-read by ``access_batch`` on every call.

        The last element is False when the geometry is not a power of two
        (shift/mask decomposition would diverge from ``//``/``%``); the
        walk then falls back to the reference path.
        """
        arr = cache_or_tlb.array
        pol = arr.policy
        simple = (
            type(pol).on_hit is ReplacementPolicy.on_hit
            and type(pol).on_insert is ReplacementPolicy.on_insert
        )
        has_hm = isinstance(pol, HardHarvestPolicy)
        nsets = arr.num_sets
        gb = granularity_bytes
        gsh = gb.bit_length() - 1 if gb > 0 and gb & (gb - 1) == 0 else -1
        tsh = nsets.bit_length() - 1 if nsets & (nsets - 1) == 0 else -1
        return (
            arr, arr.sets, arr.ways, pol, pol.choose_victim_full, pol.on_hit,
            pol.on_insert, simple, has_hm, arr._way_flushed_at,
            arr._stale_masks, gsh, nsets - 1, gsh + tsh,
            gsh >= 0 and tsh >= 0,
        )

    def _lat_table(self, round_trip_cycles: int):
        """ns latency of a level by translation outcome (0/1/2 = L1-TLB
        hit / L2-TLB hit / page walk).

        The per-access ``int(round(cycles / freq))`` of the reference walk
        is reproduced exactly because the same integer cycle sums go
        through the same expression here, just once instead of per access.
        """
        h = self.hierarchy
        freq = h.freq_ghz
        trans = (
            h.l1_tlb.round_trip_cycles,
            h.l2_tlb.round_trip_cycles,
            h.memory.page_walk_cycles,
        )
        return tuple(int(round((c + round_trip_cycles) / freq)) for c in trans)

    def _build_batch_static(self):
        """Assemble (and memoize) the private-level state for access_batch."""
        static = (
            self._level_state(self.l1_tlb, self.l1_tlb.page_bytes),
            self._level_state(self.l2_tlb, self.l2_tlb.page_bytes),
            self._level_state(self.l1i, self.l1i.line_bytes),
            self._level_state(self.l1d, self.l1d.line_bytes),
            self._level_state(self.l2, self.l2.line_bytes),
            self._lat_table(self.l1i.round_trip_cycles),
            self._lat_table(self.l1d.round_trip_cycles),
            self._lat_table(self.l2.round_trip_cycles),
            self._lat_table(0),
        )
        self._batch_static = static
        return static

    def _build_llc_static(self, llc: Cache):
        """Per-LLC-partition state for access_batch, keyed by ``id(llc)``.

        The tuple holds a strong reference to ``llc`` so the id key can
        never be recycled by a new object.
        """
        entry = (
            self._level_state(llc, llc.line_bytes),
            self._lat_table(llc.round_trip_cycles),
            full_mask(llc.array.ways),
            llc,
        )
        self._llc_static[id(llc)] = entry
        return entry

    def access_batch(self, batch, llc: Optional[Cache], is_primary: bool, now_ns: int) -> int:
        """Walk a whole :class:`~repro.workloads.memory_profile.AccessBatch`
        through the hierarchy; returns the summed latency in nanoseconds.

        Bit-identical to calling :meth:`access` once per element in batch
        order — same state transitions, same counters, same per-access
        integer-ns rounding — but with the per-level ``Cache``/``Tlb``/
        ``SetAssocArray`` frames inlined into one loop: hashed tag lookup,
        empty-way selection by bitmask, fill, and recency bump all happen
        without a function call on the common paths, hit/miss counters
        accumulate in locals, and the per-access cycle->ns conversions come
        from a table of the (few) possible cycle totals.  The parity suite
        (``tests/test_hotpath_parity.py``) pins this contract.
        """
        n = len(batch)
        if n == 0:
            return 0

        if self.infinite:
            # Everything hits in L1: the Figure 7 "Inf" configuration.
            h = self.hierarchy
            freq = h.freq_ghz
            tlb_rt = h.l1_tlb.round_trip_cycles
            ns_i = int(round((tlb_rt + self.l1i.round_trip_cycles) / freq))
            ns_d = int(round((tlb_rt + self.l1d.round_trip_cycles) / freq))
            instrs = batch.instr.tolist()
            n_instr = sum(instrs)
            return n_instr * ns_i + (n - n_instr) * ns_d

        static = self._batch_static
        if static is None:
            static = self._build_batch_static()
        lvl_t1, lvl_t2, lvl_i, lvl_d, lvl_2, lat_i, lat_d, lat_2, lat_m = static
        pow2 = lvl_t1[-1] and lvl_t2[-1] and lvl_i[-1] and lvl_d[-1] and lvl_2[-1]
        if llc is not None:
            entry = self._llc_static.get(id(llc))
            if entry is None:
                entry = self._build_llc_static(llc)
            lvl_l, lat_l, m_l, _ = entry
            pow2 = pow2 and lvl_l[-1]
        else:
            lvl_l = None

        if (
            not pow2
            or lvl_t1[0].trace is not None
            or lvl_t2[0].trace is not None
            or lvl_i[0].trace is not None
            or lvl_d[0].trace is not None
            or lvl_2[0].trace is not None
            or (lvl_l is not None and lvl_l[0].trace is not None)
        ):
            # Belady trace recording (per-level appends) and non-power-of-2
            # geometries: not worth specializing, use the reference walk.
            acc = self.access
            total = 0
            for addr, sh, instr, wr in batch:
                total += acc(addr, sh, instr, llc, is_primary, now_ns, wr)
            return total

        addrs = batch.addr.tolist()
        shareds = batch.shared.tolist()
        instrs = batch.instr.tolist()
        writes = batch.write.tolist()

        if is_primary or not self.partition_cfg.enabled:
            m_t1, m_t2, m_i, m_d, m_2 = self._masks_all
        else:
            m_t1, m_t2, m_i, m_d, m_2 = self._masks_harvest

        # Per-level hoisted state (static parts cached; epochs and harvest
        # masks re-read per call).
        (a_t1, sets_t1, ways_t1, pol_t1, vic_t1, onhit_t1, onins_t1,
         simple_t1, hhm_t1, fl_t1, sms_t1, gsh_t1, smsk_t1, fsh_t1, _) = lvl_t1
        (a_t2, sets_t2, ways_t2, pol_t2, vic_t2, onhit_t2, onins_t2,
         simple_t2, hhm_t2, fl_t2, sms_t2, gsh_t2, smsk_t2, fsh_t2, _) = lvl_t2
        (a_i, sets_i, ways_i, pol_i, vic_i, onhit_i, onins_i,
         simple_i, hhm_i, fl_i, sms_i, gsh_i, smsk_i, fsh_i, _) = lvl_i
        (a_d, sets_d, ways_d, pol_d, vic_d, onhit_d, onins_d,
         simple_d, hhm_d, fl_d, sms_d, gsh_d, smsk_d, fsh_d, _) = lvl_d
        (a_2, sets_2, ways_2, pol_2, vic_2, onhit_2, onins_2,
         simple_2, hhm_2, fl_2, sms_2, gsh_2, smsk_2, fsh_2, _) = lvl_2
        hm_t1 = pol_t1.harvest_mask if hhm_t1 else None
        hm_t2 = pol_t2.harvest_mask if hhm_t2 else None
        hm_i = pol_i.harvest_mask if hhm_i else None
        hm_d = pol_d.harvest_mask if hhm_d else None
        hm_2 = pol_2.harvest_mask if hhm_2 else None
        ep_t1, ep_t2 = a_t1._flush_epoch, a_t2._flush_epoch
        ep_i, ep_d, ep_2 = a_i._flush_epoch, a_d._flush_epoch, a_2._flush_epoch
        if lvl_l is not None:
            (a_l, sets_l, ways_l, pol_l, vic_l, onhit_l, onins_l,
             simple_l, hhm_l, fl_l, sms_l, gsh_l, smsk_l, fsh_l, _) = lvl_l
            hm_l = pol_l.harvest_mask if hhm_l else None
            ep_l = a_l._flush_epoch
        else:
            sets_l = None

        # DRAM bandwidth-pressure model, inlined: identical float/int
        # arithmetic to DramModel.access_latency, with the object state
        # carried in locals for the duration of the batch and folded back
        # after the loop (the simulation is single-threaded, a batch is
        # atomic, and nothing reads DRAM state mid-batch).
        dram = self.dram
        d_cfg = dram.config
        d_ns = d_cfg.access_ns
        d_sat = dram.LINE_BYTES / d_cfg.bandwidth_gbps
        d_avg = dram._avg_gap_ns
        d_last = dram._last_access_ns
        d_n = 0

        h_t1 = ms_t1 = ev_t1 = wb_t1 = 0
        h_t2 = ms_t2 = ev_t2 = wb_t2 = 0
        h_i = ms_i = ev_i = wb_i = 0
        h_d = ms_d = ev_d = wb_d = 0
        h_2 = ms_2 = ev_2 = wb_2 = 0
        h_l = ms_l = ev_l = wb_l = 0

        total_ns = 0
        for addr, sh, ins, wr in zip(addrs, shareds, instrs, writes):

            # ---------------- L1 TLB ----------------
            si = (addr >> gsh_t1) & smsk_t1
            tag = addr >> fsh_t1
            cset = sets_t1.get(si)
            if cset is None:
                cset = CacheSet(ways_t1)
                cset.seen_flush = ep_t1
                sets_t1[si] = cset
            elif cset.seen_flush < ep_t1:
                # Empty sets (the common case under frequent harvest
                # flushes) only need their epoch stamped; TLB entries are
                # never dirty (no write path reaches a TLB fill), so
                # reconciliation cannot write back.
                if cset.valid_mask:
                    sn = cset.seen_flush
                    st = sms_t1.get(sn)
                    if st is None:
                        st = 0
                        for rw in range(ways_t1):
                            if fl_t1[rw] > sn:
                                st |= 1 << rw
                        sms_t1[sn] = st
                    st &= cset.valid_mask
                    if st:
                        cset.valid_mask &= ~st
                        rv = cset.valid
                        rt = cset.tags
                        rix = cset.index
                        while st:
                            low = st & -st
                            st ^= low
                            rw = low.bit_length() - 1
                            rv[rw] = False
                            rtag = rt[rw]
                            rm = rix[rtag] & ~low
                            if rm:
                                rix[rtag] = rm
                            else:
                                del rix[rtag]
                cset.seen_flush = ep_t1
            index = cset.index
            mf = index.get(tag)
            m = mf and mf & m_t1
            if m:
                w = (m & -m).bit_length() - 1
                h_t1 += 1
                if simple_t1:
                    c = cset.clock + 1
                    cset.clock = c
                    cset.stamp[w] = c
                else:
                    onhit_t1(cset, w)
                t = 0
            else:
                ms_t1 += 1
                empty = m_t1 & ~cset.valid_mask
                if empty:
                    if hm_t1 is not None:
                        pref = (empty & ~hm_t1) if sh else (empty & hm_t1)
                        if pref:
                            empty = pref
                    victim = (empty & -empty).bit_length() - 1
                else:
                    victim = vic_t1(cset, sh, m_t1)
                vbit = 1 << victim
                if cset.valid_mask & vbit:
                    ev_t1 += 1
                    otag = cset.tags[victim]
                    old = index[otag] & ~vbit
                    if old:
                        index[otag] = old
                    else:
                        del index[otag]
                cset.tags[victim] = tag
                cset.valid[victim] = True
                cset.shared[victim] = sh
                cset.valid_mask |= vbit
                index[tag] = mf | vbit if mf else vbit
                if simple_t1:
                    c = cset.clock + 1
                    cset.clock = c
                    cset.stamp[victim] = c
                else:
                    onins_t1(cset, victim, sh)

                # ---------------- L2 TLB ----------------
                si = (addr >> gsh_t2) & smsk_t2
                tag = addr >> fsh_t2
                cset = sets_t2.get(si)
                if cset is None:
                    cset = CacheSet(ways_t2)
                    cset.seen_flush = ep_t2
                    sets_t2[si] = cset
                elif cset.seen_flush < ep_t2:
                    if cset.valid_mask:
                        sn = cset.seen_flush
                        st = sms_t2.get(sn)
                        if st is None:
                            st = 0
                            for rw in range(ways_t2):
                                if fl_t2[rw] > sn:
                                    st |= 1 << rw
                            sms_t2[sn] = st
                        st &= cset.valid_mask
                        if st:
                            cset.valid_mask &= ~st
                            rv = cset.valid
                            rt = cset.tags
                            rix = cset.index
                            while st:
                                low = st & -st
                                st ^= low
                                rw = low.bit_length() - 1
                                rv[rw] = False
                                rtag = rt[rw]
                                rm = rix[rtag] & ~low
                                if rm:
                                    rix[rtag] = rm
                                else:
                                    del rix[rtag]
                    cset.seen_flush = ep_t2
                index = cset.index
                mf = index.get(tag)
                m = mf and mf & m_t2
                if m:
                    w = (m & -m).bit_length() - 1
                    h_t2 += 1
                    if simple_t2:
                        c = cset.clock + 1
                        cset.clock = c
                        cset.stamp[w] = c
                    else:
                        onhit_t2(cset, w)
                    t = 1
                else:
                    ms_t2 += 1
                    empty = m_t2 & ~cset.valid_mask
                    if empty:
                        if hm_t2 is not None:
                            pref = (empty & ~hm_t2) if sh else (empty & hm_t2)
                            if pref:
                                empty = pref
                        victim = (empty & -empty).bit_length() - 1
                    else:
                        victim = vic_t2(cset, sh, m_t2)
                    vbit = 1 << victim
                    if cset.valid_mask & vbit:
                        ev_t2 += 1
                        otag = cset.tags[victim]
                        old = index[otag] & ~vbit
                        if old:
                            index[otag] = old
                        else:
                            del index[otag]
                    cset.tags[victim] = tag
                    cset.valid[victim] = True
                    cset.shared[victim] = sh
                    cset.valid_mask |= vbit
                    index[tag] = mf | vbit if mf else vbit
                    if simple_t2:
                        c = cset.clock + 1
                        cset.clock = c
                        cset.stamp[victim] = c
                    else:
                        onins_t2(cset, victim, sh)
                    # Page walk; the L2 TLB fill above already installed it.
                    t = 2

            # ---------------- L1 I/D ----------------
            if ins:
                si = (addr >> gsh_i) & smsk_i
                tag = addr >> fsh_i
                cset = sets_i.get(si)
                if cset is None:
                    cset = CacheSet(ways_i)
                    cset.seen_flush = ep_i
                    sets_i[si] = cset
                elif cset.seen_flush < ep_i:
                    st = cset.valid_mask
                    if st:
                        sn = cset.seen_flush
                        sm = sms_i.get(sn)
                        if sm is None:
                            sm = 0
                            for rw in range(ways_i):
                                if fl_i[rw] > sn:
                                    sm |= 1 << rw
                            sms_i[sn] = sm
                        st &= sm
                    if st:
                        cset.valid_mask &= ~st
                        rv = cset.valid
                        rt = cset.tags
                        rd = cset.dirty
                        rix = cset.index
                        while st:
                            low = st & -st
                            st ^= low
                            rw = low.bit_length() - 1
                            rv[rw] = False
                            rtag = rt[rw]
                            rm = rix[rtag] & ~low
                            if rm:
                                rix[rtag] = rm
                            else:
                                del rix[rtag]
                            if rd[rw]:
                                rd[rw] = False
                                wb_i += 1
                    cset.seen_flush = ep_i
                index = cset.index
                mf = index.get(tag)
                m = mf and mf & m_i
                if m:
                    w = (m & -m).bit_length() - 1
                    h_i += 1
                    if wr:
                        cset.dirty[w] = True
                    if simple_i:
                        c = cset.clock + 1
                        cset.clock = c
                        cset.stamp[w] = c
                    else:
                        onhit_i(cset, w)
                    total_ns += lat_i[t]
                    continue
                ms_i += 1
                empty = m_i & ~cset.valid_mask
                if empty:
                    if hm_i is not None:
                        pref = (empty & ~hm_i) if sh else (empty & hm_i)
                        if pref:
                            empty = pref
                    victim = (empty & -empty).bit_length() - 1
                else:
                    victim = vic_i(cset, sh, m_i)
                vbit = 1 << victim
                if cset.valid_mask & vbit:
                    ev_i += 1
                    if cset.dirty[victim]:
                        wb_i += 1
                    otag = cset.tags[victim]
                    old = index[otag] & ~vbit
                    if old:
                        index[otag] = old
                    else:
                        del index[otag]
                cset.tags[victim] = tag
                cset.valid[victim] = True
                cset.shared[victim] = sh
                cset.dirty[victim] = wr
                cset.valid_mask |= vbit
                index[tag] = mf | vbit if mf else vbit
                if simple_i:
                    c = cset.clock + 1
                    cset.clock = c
                    cset.stamp[victim] = c
                else:
                    onins_i(cset, victim, sh)
            else:
                si = (addr >> gsh_d) & smsk_d
                tag = addr >> fsh_d
                cset = sets_d.get(si)
                if cset is None:
                    cset = CacheSet(ways_d)
                    cset.seen_flush = ep_d
                    sets_d[si] = cset
                elif cset.seen_flush < ep_d:
                    st = cset.valid_mask
                    if st:
                        sn = cset.seen_flush
                        sm = sms_d.get(sn)
                        if sm is None:
                            sm = 0
                            for rw in range(ways_d):
                                if fl_d[rw] > sn:
                                    sm |= 1 << rw
                            sms_d[sn] = sm
                        st &= sm
                    if st:
                        cset.valid_mask &= ~st
                        rv = cset.valid
                        rt = cset.tags
                        rd = cset.dirty
                        rix = cset.index
                        while st:
                            low = st & -st
                            st ^= low
                            rw = low.bit_length() - 1
                            rv[rw] = False
                            rtag = rt[rw]
                            rm = rix[rtag] & ~low
                            if rm:
                                rix[rtag] = rm
                            else:
                                del rix[rtag]
                            if rd[rw]:
                                rd[rw] = False
                                wb_d += 1
                    cset.seen_flush = ep_d
                index = cset.index
                mf = index.get(tag)
                m = mf and mf & m_d
                if m:
                    w = (m & -m).bit_length() - 1
                    h_d += 1
                    if wr:
                        cset.dirty[w] = True
                    if simple_d:
                        c = cset.clock + 1
                        cset.clock = c
                        cset.stamp[w] = c
                    else:
                        onhit_d(cset, w)
                    total_ns += lat_d[t]
                    continue
                ms_d += 1
                empty = m_d & ~cset.valid_mask
                if empty:
                    if hm_d is not None:
                        pref = (empty & ~hm_d) if sh else (empty & hm_d)
                        if pref:
                            empty = pref
                    victim = (empty & -empty).bit_length() - 1
                else:
                    victim = vic_d(cset, sh, m_d)
                vbit = 1 << victim
                if cset.valid_mask & vbit:
                    ev_d += 1
                    if cset.dirty[victim]:
                        wb_d += 1
                    otag = cset.tags[victim]
                    old = index[otag] & ~vbit
                    if old:
                        index[otag] = old
                    else:
                        del index[otag]
                cset.tags[victim] = tag
                cset.valid[victim] = True
                cset.shared[victim] = sh
                cset.dirty[victim] = wr
                cset.valid_mask |= vbit
                index[tag] = mf | vbit if mf else vbit
                if simple_d:
                    c = cset.clock + 1
                    cset.clock = c
                    cset.stamp[victim] = c
                else:
                    onins_d(cset, victim, sh)

            # ---------------- L2 ----------------
            si = (addr >> gsh_2) & smsk_2
            tag = addr >> fsh_2
            cset = sets_2.get(si)
            if cset is None:
                cset = CacheSet(ways_2)
                cset.seen_flush = ep_2
                sets_2[si] = cset
            elif cset.seen_flush < ep_2:
                st = cset.valid_mask
                if st:
                    sn = cset.seen_flush
                    sm = sms_2.get(sn)
                    if sm is None:
                        sm = 0
                        for rw in range(ways_2):
                            if fl_2[rw] > sn:
                                sm |= 1 << rw
                        sms_2[sn] = sm
                    st &= sm
                if st:
                    cset.valid_mask &= ~st
                    rv = cset.valid
                    rt = cset.tags
                    rd = cset.dirty
                    rix = cset.index
                    while st:
                        low = st & -st
                        st ^= low
                        rw = low.bit_length() - 1
                        rv[rw] = False
                        rtag = rt[rw]
                        rm = rix[rtag] & ~low
                        if rm:
                            rix[rtag] = rm
                        else:
                            del rix[rtag]
                        if rd[rw]:
                            rd[rw] = False
                            wb_2 += 1
                cset.seen_flush = ep_2
            index = cset.index
            mf = index.get(tag)
            m = mf and mf & m_2
            if m:
                w = (m & -m).bit_length() - 1
                h_2 += 1
                if simple_2:
                    c = cset.clock + 1
                    cset.clock = c
                    cset.stamp[w] = c
                else:
                    onhit_2(cset, w)
                total_ns += lat_2[t]
                continue
            ms_2 += 1
            empty = m_2 & ~cset.valid_mask
            if empty:
                if hm_2 is not None:
                    pref = (empty & ~hm_2) if sh else (empty & hm_2)
                    if pref:
                        empty = pref
                victim = (empty & -empty).bit_length() - 1
            else:
                victim = vic_2(cset, sh, m_2)
            vbit = 1 << victim
            if cset.valid_mask & vbit:
                ev_2 += 1
                if cset.dirty[victim]:
                    wb_2 += 1
                otag = cset.tags[victim]
                old = index[otag] & ~vbit
                if old:
                    index[otag] = old
                else:
                    del index[otag]
            cset.tags[victim] = tag
            cset.valid[victim] = True
            cset.shared[victim] = sh
            cset.dirty[victim] = False
            cset.valid_mask |= vbit
            index[tag] = mf | vbit if mf else vbit
            if simple_2:
                c = cset.clock + 1
                cset.clock = c
                cset.stamp[victim] = c
            else:
                onins_2(cset, victim, sh)

            # ---------------- LLC ----------------
            if sets_l is not None:
                si = (addr >> gsh_l) & smsk_l
                tag = addr >> fsh_l
                cset = sets_l.get(si)
                if cset is None:
                    cset = CacheSet(ways_l)
                    cset.seen_flush = ep_l
                    sets_l[si] = cset
                elif cset.seen_flush < ep_l:
                    st = cset.valid_mask
                    if st:
                        sn = cset.seen_flush
                        sm = sms_l.get(sn)
                        if sm is None:
                            sm = 0
                            for rw in range(ways_l):
                                if fl_l[rw] > sn:
                                    sm |= 1 << rw
                            sms_l[sn] = sm
                        st &= sm
                    if st:
                        cset.valid_mask &= ~st
                        rv = cset.valid
                        rt = cset.tags
                        rd = cset.dirty
                        rix = cset.index
                        while st:
                            low = st & -st
                            st ^= low
                            rw = low.bit_length() - 1
                            rv[rw] = False
                            rtag = rt[rw]
                            rm = rix[rtag] & ~low
                            if rm:
                                rix[rtag] = rm
                            else:
                                del rix[rtag]
                            if rd[rw]:
                                rd[rw] = False
                                wb_l += 1
                    cset.seen_flush = ep_l
                index = cset.index
                mf = index.get(tag)
                m = mf and mf & m_l
                if m:
                    w = (m & -m).bit_length() - 1
                    h_l += 1
                    if simple_l:
                        c = cset.clock + 1
                        cset.clock = c
                        cset.stamp[w] = c
                    else:
                        onhit_l(cset, w)
                    total_ns += lat_l[t]
                    continue
                ms_l += 1
                empty = m_l & ~cset.valid_mask
                if empty:
                    if hm_l is not None:
                        pref = (empty & ~hm_l) if sh else (empty & hm_l)
                        if pref:
                            empty = pref
                    victim = (empty & -empty).bit_length() - 1
                else:
                    victim = vic_l(cset, sh, m_l)
                vbit = 1 << victim
                if cset.valid_mask & vbit:
                    ev_l += 1
                    if cset.dirty[victim]:
                        wb_l += 1
                    otag = cset.tags[victim]
                    old = index[otag] & ~vbit
                    if old:
                        index[otag] = old
                    else:
                        del index[otag]
                cset.tags[victim] = tag
                cset.valid[victim] = True
                cset.shared[victim] = sh
                cset.dirty[victim] = False
                cset.valid_mask |= vbit
                index[tag] = mf | vbit if mf else vbit
                if simple_l:
                    c = cset.clock + 1
                    cset.clock = c
                    cset.stamp[victim] = c
                else:
                    onins_l(cset, victim, sh)

            # ``now_ns`` is constant for the batch, so every DRAM access
            # after the first sees gap == 0 and the EWMA update folds to
            # ``0.99 * d_avg`` (adding 0.01 * 0 == +0.0 is the identity for
            # the non-negative averages this model produces).
            if d_n:
                d_avg = 0.99 * d_avg
            else:
                gap = now_ns - d_last
                if gap < 0:
                    gap = 0
                d_last = now_ns
                d_avg = 0.99 * d_avg + 0.01 * gap
            d_n += 1
            if d_avg < d_sat:
                pressure = min(1.0, d_sat / max(d_avg, 1e-9) - 1.0)
                total_ns += lat_m[t] + int(d_ns * (1.0 + 2.0 * pressure))
            else:
                total_ns += lat_m[t] + d_ns

        # Fold the locally-accumulated counters back into the arrays.
        a_t1.hits += h_t1; a_t1.misses += ms_t1
        a_t1.evictions += ev_t1; a_t1.writebacks += wb_t1
        a_t2.hits += h_t2; a_t2.misses += ms_t2
        a_t2.evictions += ev_t2; a_t2.writebacks += wb_t2
        a_i.hits += h_i; a_i.misses += ms_i
        a_i.evictions += ev_i; a_i.writebacks += wb_i
        a_d.hits += h_d; a_d.misses += ms_d
        a_d.evictions += ev_d; a_d.writebacks += wb_d
        a_2.hits += h_2; a_2.misses += ms_2
        a_2.evictions += ev_2; a_2.writebacks += wb_2
        if sets_l is not None:
            a_l.hits += h_l; a_l.misses += ms_l
            a_l.evictions += ev_l; a_l.writebacks += wb_l
        if d_n:
            dram.accesses += d_n
            dram._avg_gap_ns = d_avg
            dram._last_access_ns = d_last
        return total_ns

    # ------------------------------------------------------------------
    # Flush operations
    # ------------------------------------------------------------------
    def flush_private_full(self) -> int:
        """wbinvd path: invalidate all private caches and TLBs."""
        n = self.l1d.flush_all()
        n += self.l1i.flush_all()
        n += self.l2.flush_all()
        n += self.l1_tlb.flush_all()
        n += self.l2_tlb.flush_all()
        return n

    def flush_harvest_region(self) -> int:
        """HardHarvest path: invalidate only harvest-region ways."""
        n = self.l1d.flush_ways(self.part_l1d.harvest)
        n += self.l1i.flush_ways(self.part_l1i.harvest)
        n += self.l2.flush_ways(self.part_l2.harvest)
        n += self.l1_tlb.flush_ways(self.part_l1tlb.harvest)
        n += self.l2_tlb.flush_ways(self.part_l2tlb.harvest)
        return n

    # ------------------------------------------------------------------
    def l2_hit_rate(self) -> float:
        return self.l2.hit_rate()
