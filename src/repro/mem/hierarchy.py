"""Per-core memory hierarchy: L1I/L1D/L2 caches, L1/L2 TLBs, and the access
path through them to the per-VM LLC partition and DRAM.

This is the structure HardHarvest partitions. Each private structure carries
a :class:`~repro.mem.partition.WayPartition`; a Primary VM sees all ways, a
Harvest VM only the harvest region (Section 4.2.1). Flushing either the full
private state (software wbinvd path) or just the harvest region (HardHarvest)
operates directly on the arrays, so cold-restart misses emerge naturally.
"""

from __future__ import annotations

from typing import Optional

from repro.config import HierarchyConfig, PartitionConfig, ReplacementKind
from repro.mem.cache import Cache
from repro.mem.dram import DramModel
from repro.mem.partition import WayPartition, full_mask
from repro.mem.replacement import (
    HardHarvestPolicy,
    LruPolicy,
    ReplacementPolicy,
    RripPolicy,
)
from repro.mem.tlb import Tlb
from repro.sim.units import cycles_to_ns


def _policy_for(
    kind: ReplacementKind, partition: WayPartition, candidate_fraction: float
) -> ReplacementPolicy:
    if kind is ReplacementKind.LRU:
        return LruPolicy()
    if kind is ReplacementKind.RRIP:
        return RripPolicy()
    if kind is ReplacementKind.HARDHARVEST:
        return HardHarvestPolicy(partition.harvest, candidate_fraction)
    raise ValueError(f"unknown replacement kind {kind}")


def build_llc(name: str, hierarchy: HierarchyConfig, num_cores: int) -> Cache:
    """Build a per-VM LLC partition sized for ``num_cores`` CAT shares.

    The LLC is partitioned per VM with CAT and never flushed (Section 2.3),
    so each VM simply owns a proportional slice, modeled as its own cache.
    """
    base = hierarchy.llc_per_core
    size = base.size_bytes * max(1, num_cores)
    return Cache(name, size, base.ways, base.line_bytes, base.round_trip_cycles, LruPolicy())


class CoreMemory:
    """The private caches and TLBs of one core, plus its access path."""

    def __init__(
        self,
        hierarchy: HierarchyConfig,
        partition_cfg: PartitionConfig,
        dram: DramModel,
    ):
        self.hierarchy = hierarchy
        self.partition_cfg = partition_cfg
        self.dram = dram
        h = hierarchy

        def make_partition(ways: int) -> WayPartition:
            if partition_cfg.enabled:
                return WayPartition.split(ways, partition_cfg.harvest_fraction)
            return WayPartition.unpartitioned(ways)

        self.part_l1d = make_partition(h.l1d.ways)
        self.part_l1i = make_partition(h.l1i.ways)
        self.part_l2 = make_partition(h.l2.ways)
        self.part_l1tlb = make_partition(h.l1_tlb.ways)
        self.part_l2tlb = make_partition(h.l2_tlb.ways)

        cf = partition_cfg.eviction_candidates_fraction
        kind = partition_cfg.replacement

        def cache(cfg, part: WayPartition) -> Cache:
            return Cache(
                cfg.name,
                cfg.size_bytes,
                cfg.ways,
                cfg.line_bytes,
                cfg.round_trip_cycles,
                _policy_for(kind, part, cf),
            )

        self.l1d = cache(h.l1d, self.part_l1d)
        self.l1i = cache(h.l1i, self.part_l1i)
        self.l2 = cache(h.l2, self.part_l2)
        self.l1_tlb = Tlb(
            h.l1_tlb.name,
            h.l1_tlb.entries,
            h.l1_tlb.ways,
            h.l1_tlb.round_trip_cycles,
            _policy_for(kind, self.part_l1tlb, cf),
            h.l1_tlb.page_bytes,
        )
        self.l2_tlb = Tlb(
            h.l2_tlb.name,
            h.l2_tlb.entries,
            h.l2_tlb.ways,
            h.l2_tlb.round_trip_cycles,
            _policy_for(kind, self.part_l2tlb, cf),
            h.l2_tlb.page_bytes,
        )
        # Modeling switch: "infinite caches" baseline for Figure 7.
        self.infinite = hierarchy.infinite

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def access(
        self,
        addr: int,
        shared: bool,
        instruction: bool,
        llc: Optional[Cache],
        is_primary: bool,
        now_ns: int,
        write: bool = False,
    ) -> int:
        """One memory reference; returns its latency in nanoseconds.

        ``llc`` is the executing VM's LLC partition (None = modeled as hit
        in DRAM directly, used by microbenchmarks). ``is_primary`` selects
        the way mask: Harvest VMs are confined to the harvest region.
        ``write`` marks the filled/hit L1 line dirty (write-back caches).
        """
        h = self.hierarchy
        if self.infinite:
            # Everything hits in L1: the Figure 7 "Inf" configuration.
            l1 = self.l1i if instruction else self.l1d
            return cycles_to_ns(
                h.l1_tlb.round_trip_cycles + l1.round_trip_cycles, h.freq_ghz
            )

        if is_primary or not self.partition_cfg.enabled:
            m_l1tlb = self.part_l1tlb.all_ways
            m_l2tlb = self.part_l2tlb.all_ways
            m_l1 = self.part_l1i.all_ways if instruction else self.part_l1d.all_ways
            m_l2 = self.part_l2.all_ways
        else:
            m_l1tlb = self.part_l1tlb.harvest
            m_l2tlb = self.part_l2tlb.harvest
            m_l1 = self.part_l1i.harvest if instruction else self.part_l1d.harvest
            m_l2 = self.part_l2.harvest

        cycles = 0
        # Translation.
        if self.l1_tlb.access(addr, shared, m_l1tlb):
            cycles += h.l1_tlb.round_trip_cycles
        elif self.l2_tlb.access(addr, shared, m_l2tlb):
            cycles += h.l2_tlb.round_trip_cycles
        else:
            # Page walk; the L2 TLB access above already filled the entry.
            cycles += h.memory.page_walk_cycles

        # Data/instruction path.
        l1 = self.l1i if instruction else self.l1d
        if l1.access(addr, shared, m_l1, write):
            cycles += l1.round_trip_cycles
            return cycles_to_ns(cycles, h.freq_ghz)
        if self.l2.access(addr, shared, m_l2):
            cycles += self.l2.round_trip_cycles
            return cycles_to_ns(cycles, h.freq_ghz)
        if llc is not None and llc.access(addr, shared, full_mask(llc.array.ways)):
            cycles += llc.round_trip_cycles
            return cycles_to_ns(cycles, h.freq_ghz)
        return cycles_to_ns(cycles, h.freq_ghz) + self.dram.access_latency(now_ns)

    # ------------------------------------------------------------------
    # Flush operations
    # ------------------------------------------------------------------
    def flush_private_full(self) -> int:
        """wbinvd path: invalidate all private caches and TLBs."""
        n = self.l1d.flush_all()
        n += self.l1i.flush_all()
        n += self.l2.flush_all()
        n += self.l1_tlb.flush_all()
        n += self.l2_tlb.flush_all()
        return n

    def flush_harvest_region(self) -> int:
        """HardHarvest path: invalidate only harvest-region ways."""
        n = self.l1d.flush_ways(self.part_l1d.harvest)
        n += self.l1i.flush_ways(self.part_l1i.harvest)
        n += self.l2.flush_ways(self.part_l2.harvest)
        n += self.l1_tlb.flush_ways(self.part_l1tlb.harvest)
        n += self.l2_tlb.flush_ways(self.part_l2tlb.harvest)
        return n

    # ------------------------------------------------------------------
    def l2_hit_rate(self) -> float:
        return self.l2.hit_rate()
