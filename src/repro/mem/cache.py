"""Set-associative cache and TLB arrays.

One generic :class:`SetAssocArray` implements lookup/fill/flush over
:class:`~repro.mem.replacement.CacheSet` rows; :class:`Cache` and
:class:`~repro.mem.tlb.Tlb` wrap it with line- and page-granularity address
mapping respectively.

The array supports:

* an ``allowed`` way mask per access (partitioning: Harvest VMs only touch
  harvest-region ways);
* flushing a subset of ways (``flush_ways``) for the harvest-region flush, or
  everything (``flush_all``) for the software wbinvd path;
* optional trace recording of ``(set, tag, shared)`` for offline Belady
  replay (Figure 14);
* hit/miss/eviction counters.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.mem.replacement import CacheSet, ReplacementPolicy

#: Environment switch selecting the pre-fast-path reference implementation
#: (per-way linear tag scans, un-batched access loops).  Results are
#: bit-identical either way — the parity suite proves it — so the slow path
#: exists only as the baseline for ``benchmarks/hotpath_speedup.py`` and as
#: a live replica of the seed behavior.
SLOWPATH_ENV = "REPRO_MEM_SLOWPATH"


def slowpath_enabled() -> bool:
    """True when the reference (pre-fast-path) implementation is requested.

    Read at *construction* time of each array/simulation, so flipping the
    environment variable between runs in one process works.
    """
    return os.environ.get(SLOWPATH_ENV, "") not in ("", "0")


class SetAssocArray:
    """A bank of sets with a shared replacement policy.

    Sets are allocated lazily: big LLC partitions have tens of thousands of
    sets, most never touched in a given run, and empty sets behave
    identically to absent ones.
    """

    def __init__(self, name: str, num_sets: int, ways: int, policy: ReplacementPolicy):
        if num_sets <= 0:
            raise ValueError(f"{name}: num_sets must be positive, got {num_sets}")
        self.name = name
        self.num_sets = num_sets
        self.ways = ways
        self.policy = policy
        self.sets: Dict[int, CacheSet] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.trace: Optional[List[Tuple[int, int, bool]]] = None
        self._trace_limit: Optional[int] = None
        # Epoch-based lazy flushing: flush_ways() only bumps per-way flush
        # epochs; a set reconciles (drops stale entries) the next time it is
        # touched. Equivalent to eager invalidation, O(touched sets) cost.
        self._flush_epoch = 0
        self._way_flushed_at = [0] * ways
        # seen-epoch -> mask of ways flushed after it, memoized between
        # flushes (cleared on every flush_ways). Reconciling N sets that
        # share a seen epoch then costs one way scan, not N.
        self._stale_masks: Dict[int, int] = {}
        # flush mask -> tuple of its way indices (see flush_ways).
        self._flush_way_lists: Dict[int, Tuple[int, ...]] = {}
        self.fast = not slowpath_enabled()

    # ------------------------------------------------------------------
    def enable_trace(self, limit: Optional[int] = None) -> None:
        """Start recording (set_index, tag, shared) per access for Belady.

        ``limit`` caps the trace length (None = unbounded)."""
        self.trace = []
        self._trace_limit = limit

    def access(
        self,
        set_index: int,
        tag: int,
        shared: bool,
        allowed: int,
        write: bool = False,
    ) -> bool:
        """Look up ``tag``; on miss, fill it by evicting a policy victim.

        Returns True on hit. ``allowed`` restricts both lookup and fill to a
        subset of ways. ``write=True`` marks the line dirty; evicting (or
        flushing) a dirty line counts a write-back.
        """
        cset = self.sets.get(set_index)
        if cset is None:
            if not 0 <= set_index < self.num_sets:
                raise IndexError(f"{self.name}: set {set_index} out of range")
            cset = CacheSet(self.ways)
            cset.seen_flush = self._flush_epoch
            self.sets[set_index] = cset
        elif cset.seen_flush < self._flush_epoch:
            self._reconcile(cset)
        trace = self.trace
        if trace is not None and (
            self._trace_limit is None or len(trace) < self._trace_limit
        ):
            trace.append((set_index, tag, shared))
        if self.fast:
            way = cset.find_fast(tag, allowed)
        else:
            way = cset.find(tag, allowed)
        if way >= 0:
            self.hits += 1
            if write:
                cset.dirty[way] = True
            self.policy.on_hit(cset, way)
            return True
        self.misses += 1
        victim = self.policy.choose_victim(cset, shared, allowed)
        if cset.valid[victim]:
            self.evictions += 1
            if cset.dirty[victim]:
                self.writebacks += 1
        cset.fill(victim, tag, shared, write)
        self.policy.on_insert(cset, victim, shared)
        return False

    def probe(self, set_index: int, tag: int, allowed: int) -> bool:
        """Check residency without updating any state or counters."""
        cset = self.sets.get(set_index)
        if cset is None:
            return False
        if cset.seen_flush < self._flush_epoch:
            self._reconcile(cset)
        if self.fast:
            return cset.find_fast(tag, allowed) >= 0
        return cset.find(tag, allowed) >= 0

    # ------------------------------------------------------------------
    def _stale_mask(self, seen: int) -> int:
        """Mask of ways flushed after epoch ``seen`` (memoized per epoch)."""
        m = self._stale_masks.get(seen)
        if m is None:
            flushed_at = self._way_flushed_at
            m = 0
            for w in range(self.ways):
                if flushed_at[w] > seen:
                    m |= 1 << w
            self._stale_masks[seen] = m
        return m

    def _reconcile(self, cset: CacheSet) -> int:
        """Apply pending way flushes to one set; returns entries dropped.

        Flushing a dirty line is a write-back-and-invalidate (wbinvd
        semantics): the write-back is counted when the flush lands."""
        dropped = 0
        stale = self._stale_mask(cset.seen_flush) & cset.valid_mask
        if stale:
            cset.valid_mask &= ~stale
            valid = cset.valid
            tags = cset.tags
            dirty = cset.dirty
            index = cset.index
            while stale:
                low = stale & -stale
                stale ^= low
                w = low.bit_length() - 1
                valid[w] = False
                tag = tags[w]
                m = index[tag] & ~low
                if m:
                    index[tag] = m
                else:
                    del index[tag]
                if dirty[w]:
                    dirty[w] = False
                    self.writebacks += 1
                dropped += 1
        cset.seen_flush = self._flush_epoch
        return dropped

    def flush_ways(self, mask: int) -> int:
        """Invalidate all entries in the ways of ``mask``.

        Lazy: marks the ways flushed; sets reconcile on next touch. Returns
        the number of ways marked (not entries — counting entries would
        defeat the laziness)."""
        self._flush_epoch += 1
        self._stale_masks.clear()
        # Harvest flushes repeat the same one or two masks for the whole
        # run; memoize the mask decode so each flush is a short way-list
        # walk instead of a per-way bit test.
        cached = self._flush_way_lists.get(mask)
        if cached is None:
            cached = tuple(w for w in range(self.ways) if (mask >> w) & 1)
            self._flush_way_lists[mask] = cached
        epoch = self._flush_epoch
        wfa = self._way_flushed_at
        for w in cached:
            wfa[w] = epoch
        return len(cached)

    def flush_all(self) -> int:
        return self.flush_ways((1 << self.ways) - 1)

    def settle(self) -> None:
        """Force reconciliation of every allocated set (for inspection)."""
        for cset in self.sets.values():
            if cset.seen_flush < self._flush_epoch:
                self._reconcile(cset)

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def occupancy(self) -> int:
        """Number of valid entries across all sets."""
        self.settle()
        return sum(sum(cset.valid) for cset in self.sets.values())

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class Cache:
    """A cache level: maps byte addresses to (set, tag) at line granularity."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_bytes: int,
        round_trip_cycles: int,
        policy: ReplacementPolicy,
    ):
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by ways*line"
            )
        self.line_bytes = line_bytes
        self.round_trip_cycles = round_trip_cycles
        num_sets = size_bytes // (ways * line_bytes)
        self.array = SetAssocArray(name, num_sets, ways, policy)

    @property
    def name(self) -> str:
        return self.array.name

    def locate(self, addr: int) -> Tuple[int, int]:
        """(set_index, tag) for a byte address."""
        line = addr // self.line_bytes
        return line % self.array.num_sets, line // self.array.num_sets

    def access(self, addr: int, shared: bool, allowed: int, write: bool = False) -> bool:
        set_index, tag = self.locate(addr)
        return self.array.access(set_index, tag, shared, allowed, write)

    def probe(self, addr: int, allowed: int) -> bool:
        set_index, tag = self.locate(addr)
        return self.array.probe(set_index, tag, allowed)

    def flush_ways(self, mask: int) -> int:
        return self.array.flush_ways(mask)

    def flush_all(self) -> int:
        return self.array.flush_all()

    def hit_rate(self) -> float:
        return self.array.hit_rate()
