"""Address-space modeling: pages, the Shared bit, and per-VM namespaces.

The paper classifies pages as *shared* (allocated before the service starts
serving — code, libraries, read-only inputs) or *private* (allocated by an
individual invocation), records the classification as a Shared bit in the
page table, and copies it into TLB/cache entries (Section 4.2.2).

We model a VM's address space as regions of 4 KB pages. VM ids are folded
into the high address bits so entries of different VMs can never produce
false hits in the cache model.
"""

from __future__ import annotations

from dataclasses import dataclass

PAGE_BYTES = 4096
#: Bits reserved for the per-VM offset; VM id occupies bits above this.
_VM_SHIFT = 44


@dataclass(frozen=True)
class Region:
    """A contiguous run of pages with one Shared-bit classification."""

    vm_id: int
    start_page: int
    num_pages: int
    shared: bool

    def __post_init__(self) -> None:
        if self.num_pages <= 0:
            raise ValueError(f"num_pages must be positive, got {self.num_pages}")

    def addr(self, page_index: int, offset: int = 0) -> int:
        """Byte address of ``offset`` within the region's ``page_index`` page."""
        if not 0 <= page_index < self.num_pages:
            raise IndexError(
                f"page_index {page_index} outside region of {self.num_pages} pages"
            )
        if not 0 <= offset < PAGE_BYTES:
            raise IndexError(f"offset {offset} outside page")
        page = self.start_page + page_index
        return (self.vm_id << _VM_SHIFT) | (page * PAGE_BYTES) | offset

    def line_addr(self, page_index: int, line_index: int, line_bytes: int = 64) -> int:
        """Byte address of the ``line_index``-th cache line of a page."""
        lines_per_page = PAGE_BYTES // line_bytes
        return self.addr(page_index, (line_index % lines_per_page) * line_bytes)


class AddressSpace:
    """Allocates non-overlapping page regions within one VM."""

    def __init__(self, vm_id: int):
        if vm_id < 0:
            raise ValueError(f"vm_id must be non-negative, got {vm_id}")
        self.vm_id = vm_id
        self._next_page = 1  # page 0 reserved (null page)

    def alloc(self, num_pages: int, shared: bool) -> Region:
        """Allocate ``num_pages`` fresh pages with the given Shared bit."""
        region = Region(self.vm_id, self._next_page, num_pages, shared)
        self._next_page += num_pages
        return region
