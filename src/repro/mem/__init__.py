"""Memory-hierarchy substrate: caches, TLBs, partitioning, replacement, DRAM."""

from repro.mem.address import PAGE_BYTES, AddressSpace, Region
from repro.mem.cache import Cache, SetAssocArray
from repro.mem.coherence import Directory
from repro.mem.dram import DramModel
from repro.mem.prefetch import NextLinePrefetcher
from repro.mem.hierarchy import CoreMemory, build_llc
from repro.mem.partition import WayPartition, full_mask, harvest_mask
from repro.mem.replacement import (
    CacheSet,
    HardHarvestPolicy,
    LruPolicy,
    ReplacementPolicy,
    RripPolicy,
    make_policy,
)
from repro.mem.tlb import Tlb

__all__ = [
    "AddressSpace",
    "Region",
    "PAGE_BYTES",
    "Cache",
    "SetAssocArray",
    "Tlb",
    "DramModel",
    "Directory",
    "NextLinePrefetcher",
    "CoreMemory",
    "build_llc",
    "WayPartition",
    "full_mask",
    "harvest_mask",
    "CacheSet",
    "ReplacementPolicy",
    "LruPolicy",
    "RripPolicy",
    "HardHarvestPolicy",
    "make_policy",
]
