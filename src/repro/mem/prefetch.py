"""Optional next-line prefetcher for the cache model.

A simple tagged next-N-line prefetcher: on a demand miss, the following
``degree`` sequential lines are brought in (marked with the same Shared
bit). Off by default — the paper's evaluation does not model prefetching —
but useful for what-if studies on how prefetching interacts with the
harvest region (prefetches issued by a Harvest VM stay inside its mask).
"""

from __future__ import annotations

from repro.mem.cache import Cache


class NextLinePrefetcher:
    """Wraps a :class:`Cache` with next-line prefetch on demand misses."""

    def __init__(self, cache: Cache, degree: int = 1):
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.cache = cache
        self.degree = degree
        self.prefetches_issued = 0
        self.prefetch_hits = 0  # demand hits on lines we prefetched
        self._prefetched = set()

    def access(self, addr: int, shared: bool, allowed: int, write: bool = False) -> bool:
        line = addr // self.cache.line_bytes
        hit = self.cache.access(addr, shared, allowed, write)
        if hit:
            if line in self._prefetched:
                self.prefetch_hits += 1
                self._prefetched.discard(line)
            return True
        # Demand miss: pull in the next `degree` lines.
        for i in range(1, self.degree + 1):
            next_addr = addr + i * self.cache.line_bytes
            next_line = line + i
            if not self.cache.probe(next_addr, allowed):
                self.cache.access(next_addr, shared, allowed)
                self.prefetches_issued += 1
                self._prefetched.add(next_line)
        return False

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that saw a later demand hit."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetch_hits / self.prefetches_issued
