"""Microservice profiles standing in for the DeathStarBench SocialNet
services (Section 5).

Each profile captures what the simulation needs about a service:

* CPU demand per request (lognormal around ``mean_exec_us``, split across
  ``blocking_calls + 1`` compute segments);
* synchronous blocking-I/O behaviour (number of calls, backend time —
  inter-server RT plus profiled backend execution, as in the paper);
* memory footprint: shared pages (code, libraries, pre-fork data), private
  pages per invocation, and memory-reference density;
* arrival rate (requests/s per allocated core; the paper's 65-250 RPS) and
  burstiness (Markov-modulated bursts, matching the Alibaba load spikes).

The relative characters follow the paper's observations: ``User`` blocks on
I/O frequently, ``HomeT`` operates mostly on shared pages, ``CPost`` is the
long orchestration service, ``UrlShort`` is tiny and compute-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class ServiceProfile:
    """Statistical description of one microservice."""

    name: str
    #: Mean per-request CPU time (µs) excluding modeled memory stalls.
    mean_exec_us: float
    #: Coefficient of variation of per-request CPU time.
    exec_cv: float
    #: Mean number of synchronous blocking I/O calls per request.
    blocking_calls: float
    #: Mean per-call backend time (µs), on top of the 1 µs network RT.
    io_us: float
    #: CV of backend time.
    io_cv: float
    #: Open-loop arrival rate per allocated core (requests/s).
    rps_per_core: float
    #: Burst behaviour: rate multiplier and mean dwell times (ms).
    burst_multiplier: float
    burst_dwell_ms: float
    normal_dwell_ms: float
    #: Footprint: 4 KB pages shared across invocations vs private per one.
    shared_pages: int
    private_pages: int
    instruction_pages: int
    #: Memory references per µs of CPU time that leave the core (model
    #: tokens; converts sampled access latency into execution time).
    mem_refs_per_us: float
    #: Fraction of data references that target shared pages.
    shared_ref_fraction: float

    def segments(self) -> int:
        """Compute segments per request (blocking calls + 1)."""
        return int(round(self.blocking_calls)) + 1


def _p(name, exec_us, cv, blocks, io_us, io_cv, rps, burst, bdwell, ndwell,
       shared, private, instr, refs, shared_frac) -> ServiceProfile:
    return ServiceProfile(
        name=name,
        mean_exec_us=exec_us,
        exec_cv=cv,
        blocking_calls=blocks,
        io_us=io_us,
        io_cv=io_cv,
        rps_per_core=rps,
        burst_multiplier=burst,
        burst_dwell_ms=bdwell,
        normal_dwell_ms=ndwell,
        shared_pages=shared,
        private_pages=private,
        instruction_pages=instr,
        mem_refs_per_us=refs,
        shared_ref_fraction=shared_frac,
    )


#: The eight SocialNet services of the evaluation, in figure order.
SERVICES: Tuple[ServiceProfile, ...] = (
    _p("Text",     300, 0.25, 1, 120, 0.35, 450, 5.0,  40, 560, 170,  40, 60, 12, 0.60),
    _p("SGraph",   370, 0.28, 2, 160, 0.35, 285, 4.5,  45, 540, 200,  60, 60, 11, 0.55),
    _p("User",     200, 0.22, 3, 220, 0.35, 405, 5.0,  35, 520, 140,  28, 48, 13, 0.62),
    _p("PstStr",   400, 0.30, 2, 260, 0.40, 225, 4.0,  50, 560, 250,  80, 60, 10, 0.50),
    _p("UsrMnt",   170, 0.22, 1, 100, 0.35, 360, 5.5,  32, 540, 120,  20, 40, 12, 0.65),
    _p("HomeT",    470, 0.28, 2, 180, 0.35, 240, 4.5,  45, 560, 380,  20, 56, 11, 0.80),
    _p("CPost",    670, 0.30, 3, 200, 0.35, 165, 4.0,  55, 580, 320, 100, 72, 10, 0.55),
    _p("UrlShort",  85, 0.20, 0,   0, 0.00, 195, 6.0,  28, 520,  80,  14, 28, 14, 0.70),
)

SERVICE_BY_NAME: Dict[str, ServiceProfile] = {s.name: s for s in SERVICES}

#: Display order used by every per-service figure in the paper.
SERVICE_NAMES: Tuple[str, ...] = tuple(s.name for s in SERVICES)


def draw_exec_time_us(profile: ServiceProfile, rng: np.random.Generator) -> float:
    """One request's CPU demand (µs), lognormal with the profile's CV."""
    cv = profile.exec_cv
    sigma = np.sqrt(np.log(1.0 + cv * cv))
    mu = np.log(profile.mean_exec_us) - 0.5 * sigma * sigma
    return float(rng.lognormal(mu, sigma))


def draw_io_time_us(profile: ServiceProfile, rng: np.random.Generator) -> float:
    """One blocking call's backend time (µs), excluding the network RT."""
    if profile.io_us <= 0:
        return 0.0
    cv = max(profile.io_cv, 1e-6)
    sigma = np.sqrt(np.log(1.0 + cv * cv))
    mu = np.log(profile.io_us) - 0.5 * sigma * sigma
    return float(rng.lognormal(mu, sigma))


def draw_blocking_calls(profile: ServiceProfile, rng: np.random.Generator) -> int:
    """Number of blocking calls for one request.

    The mean is the profile's ``blocking_calls``; dispersion is +/-1 call
    (clipped at zero) so services keep their character without heavy tails.
    """
    base = profile.blocking_calls
    if base <= 0:
        return 0
    jitter = rng.integers(-1, 2)  # -1, 0, +1
    return max(0, int(round(base)) + int(jitter))
