"""Open-loop load generation.

The paper drives each Primary VM with real-world invocation rates from the
Alibaba traces via an open-loop generator (the client never slows down for
the server — Section 5). We reproduce that with a Markov-modulated Poisson
process (MMPP): a VM alternates between a *normal* state at its base rate
and a *burst* state at ``burst_multiplier`` times that rate, with
exponentially distributed dwell times. Bursts are what stress reclamation:
they are the moments a Primary VM suddenly needs its harvested cores back.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.units import SEC
from repro.workloads.microservices import ServiceProfile


def generate_arrivals(
    rng: np.random.Generator,
    profile: ServiceProfile,
    num_cores: int,
    count: int,
    load_scale: float = 1.0,
) -> List[int]:
    """Arrival timestamps (ns) for ``count`` requests to one Primary VM.

    The base rate is ``rps_per_core * num_cores * load_scale``; the MMPP
    burst state multiplies it by the profile's ``burst_multiplier``.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if load_scale <= 0:
        raise ValueError(
            f"load_scale must be positive, got {load_scale} "
            f"(use a small fraction, not zero, to model light load)"
        )
    base_rate = profile.rps_per_core * num_cores * load_scale  # req/s
    if base_rate <= 0:
        raise ValueError(f"non-positive arrival rate for {profile.name}")
    burst_rate = base_rate * profile.burst_multiplier

    arrivals: List[int] = []
    now = 0.0  # seconds
    in_burst = False
    state_end = rng.exponential(profile.normal_dwell_ms / 1e3)
    while len(arrivals) < count:
        rate = burst_rate if in_burst else base_rate
        gap = rng.exponential(1.0 / rate)
        if now + gap > state_end:
            # State change before next arrival: advance to the boundary.
            now = state_end
            in_burst = not in_burst
            dwell_ms = profile.burst_dwell_ms if in_burst else profile.normal_dwell_ms
            state_end = now + rng.exponential(dwell_ms / 1e3)
            continue
        now += gap
        arrivals.append(int(now * SEC))
    return arrivals


#: Default dwell times of the server-wide burst schedule (ms).  Named so
#: the cluster-scale router can compute the *expected* arrival rate with
#: the same duty cycle the generator actually uses.
NORMAL_DWELL_MS = 420.0
BURST_DWELL_MS = 45.0


def expected_rps(
    profile: ServiceProfile,
    num_cores: int,
    load_scale: float = 1.0,
    normal_dwell_ms: float = NORMAL_DWELL_MS,
    burst_dwell_ms: float = BURST_DWELL_MS,
) -> float:
    """Long-run expected arrival rate of :func:`generate_arrivals_correlated`.

    The MMPP alternates between the base rate and ``burst_multiplier`` times
    it; with exponential dwells the burst duty cycle is
    ``burst_dwell / (normal_dwell + burst_dwell)``, so the expected rate is
    the duty-weighted mixture.  The cluster-scale routing layer uses this
    to convert a routed request share into a per-server ``load_scale``.
    """
    base = profile.rps_per_core * num_cores * load_scale
    duty = burst_dwell_ms / (normal_dwell_ms + burst_dwell_ms)
    return base * (1.0 + duty * (profile.burst_multiplier - 1.0))


def generate_burst_schedule(
    rng: np.random.Generator,
    horizon_ns: int,
    normal_dwell_ms: float = NORMAL_DWELL_MS,
    burst_dwell_ms: float = BURST_DWELL_MS,
) -> List[Tuple[int, int]]:
    """Server-wide burst windows [(start_ns, end_ns), ...].

    Microservices of one application burst *together* — a user-traffic
    surge fans out through every service of the composition — so the burst
    schedule is shared across a server's Primary VMs. Correlated bursts are
    what exhaust SmartHarvest's small emergency buffer: every VM wants its
    cores back at the same moment.
    """
    if horizon_ns <= 0:
        raise ValueError(f"horizon_ns must be positive, got {horizon_ns}")
    windows: List[Tuple[int, int]] = []
    now = 0.0
    horizon_s = horizon_ns / SEC
    while now < horizon_s:
        now += rng.exponential(normal_dwell_ms / 1e3)
        if now >= horizon_s:
            break
        end = now + rng.exponential(burst_dwell_ms / 1e3)
        windows.append((int(now * SEC), int(min(end, horizon_s) * SEC)))
        now = end
    return windows


def generate_arrivals_correlated(
    rng: np.random.Generator,
    profile: ServiceProfile,
    num_cores: int,
    horizon_ns: int,
    burst_windows: List[Tuple[int, int]],
    load_scale: float = 1.0,
    max_count: Optional[int] = None,
) -> List[int]:
    """Arrivals over ``[0, horizon_ns)`` with bursts at the shared windows.

    Within a burst window the service's rate is multiplied by its own
    ``burst_multiplier``; outside, the base rate applies.
    """
    if horizon_ns <= 0:
        raise ValueError(f"horizon_ns must be positive, got {horizon_ns}")
    base_rate = profile.rps_per_core * num_cores * load_scale
    if base_rate <= 0:
        raise ValueError(f"non-positive arrival rate for {profile.name}")
    burst_rate = base_rate * profile.burst_multiplier

    # Thinning approach: generate at the burst rate, keep non-burst arrivals
    # with probability base/burst.
    keep_prob = base_rate / burst_rate
    arrivals: List[int] = []
    now = 0.0
    horizon_s = horizon_ns / SEC
    wi = 0
    while True:
        now += rng.exponential(1.0 / burst_rate)
        if now >= horizon_s:
            break
        t_ns = int(now * SEC)
        while wi < len(burst_windows) and burst_windows[wi][1] <= t_ns:
            wi += 1
        in_burst = wi < len(burst_windows) and burst_windows[wi][0] <= t_ns
        if in_burst or rng.random() < keep_prob:
            arrivals.append(t_ns)
            if max_count is not None and len(arrivals) >= max_count:
                break
    return arrivals


def generate_arrivals_span(
    rng: np.random.Generator,
    profile: ServiceProfile,
    num_cores: int,
    horizon_ns: int,
    load_scale: float = 1.0,
    max_count: Optional[int] = None,
) -> List[int]:
    """Arrival timestamps (ns) covering ``[0, horizon_ns)``.

    Unlike :func:`generate_arrivals`, every VM spans the same wall-clock
    window regardless of its rate — the mode used for utilization and
    throughput experiments, where all services must be live simultaneously.
    ``max_count`` caps the number of requests (safety valve for tests).
    """
    if horizon_ns <= 0:
        raise ValueError(f"horizon_ns must be positive, got {horizon_ns}")
    base_rate = profile.rps_per_core * num_cores * load_scale
    if base_rate <= 0:
        raise ValueError(f"non-positive arrival rate for {profile.name}")
    burst_rate = base_rate * profile.burst_multiplier

    arrivals: List[int] = []
    now = 0.0
    horizon_s = horizon_ns / SEC
    in_burst = False
    state_end = rng.exponential(profile.normal_dwell_ms / 1e3)
    while now < horizon_s:
        rate = burst_rate if in_burst else base_rate
        gap = rng.exponential(1.0 / rate)
        if now + gap > state_end:
            now = state_end
            in_burst = not in_burst
            dwell_ms = profile.burst_dwell_ms if in_burst else profile.normal_dwell_ms
            state_end = now + rng.exponential(dwell_ms / 1e3)
            continue
        now += gap
        if now >= horizon_s:
            break
        arrivals.append(int(now * SEC))
        if max_count is not None and len(arrivals) >= max_count:
            break
    return arrivals


def generate_arrivals_from_trace(
    rng: np.random.Generator,
    profile: ServiceProfile,
    num_cores: int,
    utilization: Sequence[float],
    interval_ns: int,
    load_scale: float = 1.0,
    max_count: Optional[int] = None,
) -> List[int]:
    """Arrivals driven by an (Alibaba-style) utilization time series.

    ``utilization[i]`` is the VM's target core utilization during interval
    ``i`` of length ``interval_ns``; it is converted to a request rate via
    the service's mean busy time per request (rate = util * cores /
    busy_time). This is how the paper drives DeathStarBench services at the
    rates of matched Alibaba production services (Section 5).
    """
    if interval_ns <= 0:
        raise ValueError(f"interval_ns must be positive, got {interval_ns}")
    if not len(utilization):
        raise ValueError("empty utilization trace")
    busy_s = profile.mean_exec_us / 1e6
    arrivals: List[int] = []
    interval_s = interval_ns / SEC
    for i, util in enumerate(utilization):
        if not 0.0 <= util <= 1.0:
            raise ValueError(f"utilization[{i}]={util} outside [0, 1]")
        rate = util * num_cores * load_scale / busy_s
        if rate <= 0:
            continue
        t = i * interval_s
        end = (i + 1) * interval_s
        while True:
            t += rng.exponential(1.0 / rate)
            if t >= end:
                break
            arrivals.append(int(t * SEC))
            if max_count is not None and len(arrivals) >= max_count:
                return arrivals
    return arrivals


def mean_rate(arrivals: List[int]) -> float:
    """Observed arrival rate (req/s) of a timestamp list."""
    if len(arrivals) < 2:
        raise ValueError("need at least two arrivals")
    span_s = (arrivals[-1] - arrivals[0]) / SEC
    if span_s <= 0:
        raise ValueError("arrivals must span positive time")
    return (len(arrivals) - 1) / span_s
