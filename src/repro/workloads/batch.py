"""Batch workload models for Harvest VMs (Section 5).

The paper's eight batch applications, one per server: graph analytics from
GraphBIG (BFS, CC, DC, PRank), ML training from FunctionBench (LRTrain,
RndFTrain), data analytics from CloudSuite (Hadoop), and bioinformatics from
BioBench (MUMmer).

Each is modeled as an endless stream of *work units*: a unit is
``unit_us`` of CPU time plus sampled memory accesses over the job's
footprint. Harvest VM throughput (Figure 17) is completed units per second.
Memory-intensive jobs (RndFTrain, MUMmer, PRank) have large footprints and
weak locality, so they benefit less from harvested cores whose cache share
is the harvest region only — reproducing the paper's observation that
memory-intensive applications see slightly lower throughput gains.

Footprint/locality parameters are derived from the mini-kernels in
:mod:`repro.workloads.kernels` (see ``derive_batch_profile``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class BatchJobProfile:
    """Statistical description of one batch application."""

    name: str
    #: CPU time per work unit (µs).
    unit_us: float
    #: Footprint in 4 KB pages (data) and code pages.
    data_pages: int
    code_pages: int
    #: Page-popularity skew (1.0 = uniform; larger = hotter core).
    skew: float
    #: Memory-reference tokens per µs of CPU time.
    mem_refs_per_us: float
    #: Per-extra-active-core slowdown of each unit: batch applications pay
    #: synchronization/coordination costs when spread over more (and
    #: fluctuating) cores, so throughput scales sublinearly with harvested
    #: cores. Unit duration is multiplied by ``1 + sync_overhead * (n-1)``.
    sync_overhead: float


def _b(name, unit_us, data_pages, code_pages, skew, refs, sync) -> BatchJobProfile:
    return BatchJobProfile(
        name=name,
        unit_us=unit_us,
        data_pages=data_pages,
        code_pages=code_pages,
        skew=skew,
        mem_refs_per_us=refs,
        sync_overhead=sync,
    )


#: The eight batch applications, in Figure 17 order.
BATCH_JOBS: Tuple[BatchJobProfile, ...] = (
    _b("BFS",       800, 1600, 40, 1.3, 30, 0.080),
    _b("CC",        900, 1600, 40, 1.3, 28, 0.075),
    _b("DC",        700, 1200, 40, 1.6, 24, 0.065),
    _b("PRank",    1000, 2000, 40, 1.1, 34, 0.065),
    _b("LRTrain",   900,  900, 60, 2.2, 20, 0.085),
    _b("RndFTrain", 1100, 2600, 60, 1.1, 38, 0.090),
    _b("Hadoop",    1000, 1400, 80, 1.8, 26, 0.060),
    _b("MUMmer",    1200, 2400, 50, 1.2, 36, 0.075),
)

BATCH_BY_NAME: Dict[str, BatchJobProfile] = {b.name: b for b in BATCH_JOBS}
BATCH_NAMES: Tuple[str, ...] = tuple(b.name for b in BATCH_JOBS)
