"""Workload generation: microservice profiles, batch jobs, kernels,
Alibaba trace synthesis, and open-loop load generation."""

from repro.workloads.alibaba import (
    InstanceUtilization,
    representative_instance,
    sample_instances,
    utilization_cdf,
    utilization_timeseries,
)
from repro.workloads.batch import BATCH_BY_NAME, BATCH_JOBS, BATCH_NAMES, BatchJobProfile
from repro.workloads.kernels import KERNELS, KernelResult, derive_batch_profile, estimate_skew
from repro.workloads.loadgen import (
    generate_arrivals,
    generate_arrivals_correlated,
    generate_arrivals_from_trace,
    generate_arrivals_span,
    generate_burst_schedule,
    mean_rate,
)
from repro.workloads.memory_profile import BatchMemory, ServiceMemory
from repro.workloads.microservices import (
    SERVICE_BY_NAME,
    SERVICE_NAMES,
    SERVICES,
    ServiceProfile,
    draw_blocking_calls,
    draw_exec_time_us,
    draw_io_time_us,
)
from repro.workloads.suites import HOTEL_SERVICES, SUITES, get_suite

__all__ = [
    "ServiceProfile",
    "SERVICES",
    "SERVICE_BY_NAME",
    "SERVICE_NAMES",
    "draw_exec_time_us",
    "draw_io_time_us",
    "draw_blocking_calls",
    "BatchJobProfile",
    "BATCH_JOBS",
    "BATCH_BY_NAME",
    "BATCH_NAMES",
    "KERNELS",
    "KernelResult",
    "derive_batch_profile",
    "estimate_skew",
    "ServiceMemory",
    "BatchMemory",
    "InstanceUtilization",
    "sample_instances",
    "utilization_cdf",
    "utilization_timeseries",
    "representative_instance",
    "generate_arrivals",
    "generate_arrivals_span",
    "generate_arrivals_correlated",
    "generate_arrivals_from_trace",
    "generate_burst_schedule",
    "mean_rate",
    "SUITES",
    "HOTEL_SERVICES",
    "get_suite",
]
