"""Executable mini-kernels for the batch applications.

The paper runs real binaries (GraphBIG, FunctionBench, CloudSuite,
BioBench). Those are unavailable here, so each application is implemented
as a small, genuine kernel over synthetic inputs. The kernels do real work
*and* emit the page-level access trace of their main data structures; the
traces are what ground the :class:`~repro.workloads.batch.BatchJobProfile`
footprint and locality parameters (see :func:`derive_batch_profile`).

All kernels share one convention: data structures are assigned to a flat
page-indexed array model (``element index // elements_per_page``), and every
element touch appends its page to the trace. Traces are capped to keep runs
cheap.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

#: 8-byte elements per 4 KB page.
ELEMENTS_PER_PAGE = 512
#: Trace cap: enough to estimate locality, small enough to stay fast.
TRACE_CAP = 200_000


@dataclass
class KernelResult:
    """Output of one kernel run: real results plus the page trace."""

    name: str
    work_units: int
    result: object
    trace: List[int] = field(default_factory=list)

    @property
    def pages_touched(self) -> int:
        return len(set(self.trace))


class _Tracer:
    """Records page-granularity touches of logical arrays."""

    def __init__(self) -> None:
        self.trace: List[int] = []
        self._base = 0
        self._bases: Dict[str, int] = {}

    def register(self, array_name: str, num_elements: int) -> None:
        self._bases[array_name] = self._base
        pages = (num_elements + ELEMENTS_PER_PAGE - 1) // ELEMENTS_PER_PAGE
        self._base += pages

    def touch(self, array_name: str, index: int) -> None:
        if len(self.trace) >= TRACE_CAP:
            return
        base = self._bases[array_name]
        self.trace.append(base + index // ELEMENTS_PER_PAGE)


def _random_graph(rng: np.random.Generator, n: int, avg_degree: int):
    """Adjacency list of a random directed graph."""
    adj: List[List[int]] = [[] for _ in range(n)]
    m = n * avg_degree
    srcs = rng.integers(0, n, m)
    dsts = rng.integers(0, n, m)
    for s, d in zip(srcs, dsts):
        adj[int(s)].append(int(d))
    return adj


# ---------------------------------------------------------------------------
# GraphBIG: BFS, Connected Components, Degree Centrality, PageRank
# ---------------------------------------------------------------------------
def run_bfs(seed: int = 1, n: int = 4000, avg_degree: int = 8) -> KernelResult:
    """Breadth-first search from node 0; work unit = one frontier node."""
    rng = np.random.default_rng(seed)
    adj = _random_graph(rng, n, avg_degree)
    tracer = _Tracer()
    tracer.register("adj", n * avg_degree)
    tracer.register("dist", n)
    dist = [-1] * n
    dist[0] = 0
    queue = deque([0])
    visited = 0
    while queue:
        u = queue.popleft()
        visited += 1
        tracer.touch("dist", u)
        for v in adj[u]:
            tracer.touch("adj", u * avg_degree)
            if dist[v] < 0:
                tracer.touch("dist", v)
                dist[v] = dist[u] + 1
                queue.append(v)
    return KernelResult("BFS", visited, dist, tracer.trace)


def run_cc(seed: int = 2, n: int = 4000, avg_degree: int = 6) -> KernelResult:
    """Connected components via union-find; work unit = one union/find."""
    rng = np.random.default_rng(seed)
    tracer = _Tracer()
    tracer.register("parent", n)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            tracer.touch("parent", x)
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    ops = 0
    m = n * avg_degree
    us = rng.integers(0, n, m)
    vs = rng.integers(0, n, m)
    for u, v in zip(us, vs):
        ru, rv = find(int(u)), find(int(v))
        ops += 1
        if ru != rv:
            parent[ru] = rv
            tracer.touch("parent", ru)
    roots = len({find(i) for i in range(n)})
    return KernelResult("CC", ops, roots, tracer.trace)


def run_dc(seed: int = 3, n: int = 4000, avg_degree: int = 8) -> KernelResult:
    """Degree centrality; work unit = one edge counted."""
    rng = np.random.default_rng(seed)
    tracer = _Tracer()
    tracer.register("deg", n)
    deg = [0] * n
    m = n * avg_degree
    srcs = rng.integers(0, n, m)
    for s in srcs:
        deg[int(s)] += 1
        tracer.touch("deg", int(s))
    top = int(np.argmax(deg))
    return KernelResult("DC", m, top, tracer.trace)


def run_pagerank(
    seed: int = 4, n: int = 3000, avg_degree: int = 8, iters: int = 5
) -> KernelResult:
    """Power-iteration PageRank; work unit = one node update."""
    rng = np.random.default_rng(seed)
    adj = _random_graph(rng, n, avg_degree)
    tracer = _Tracer()
    tracer.register("rank", n)
    tracer.register("next", n)
    tracer.register("adj", n * avg_degree)
    rank = [1.0 / n] * n
    updates = 0
    for _ in range(iters):
        nxt = [0.15 / n] * n
        for u in range(n):
            tracer.touch("rank", u)
            out = adj[u]
            if not out:
                continue
            share = 0.85 * rank[u] / len(out)
            for v in out:
                tracer.touch("adj", u * avg_degree)
                tracer.touch("next", v)
                nxt[v] += share
            updates += 1
        rank = nxt
    return KernelResult("PRank", updates, rank[:8], tracer.trace)


# ---------------------------------------------------------------------------
# FunctionBench: LRTrain, RndFTrain
# ---------------------------------------------------------------------------
def run_lrtrain(
    seed: int = 5, samples: int = 2000, features: int = 24, epochs: int = 4
) -> KernelResult:
    """Logistic-regression training by SGD; work unit = one sample step."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(samples, features))
    true_w = rng.normal(size=features)
    y = (x @ true_w + rng.normal(scale=0.1, size=samples) > 0).astype(float)
    tracer = _Tracer()
    tracer.register("x", samples * features)
    tracer.register("w", features)
    w = np.zeros(features)
    lr = 0.05
    steps = 0
    for _ in range(epochs):
        for i in range(samples):
            tracer.touch("x", i * features)
            tracer.touch("w", 0)
            z = float(x[i] @ w)
            p = 1.0 / (1.0 + np.exp(-z))
            w += lr * (y[i] - p) * x[i]
            steps += 1
    acc = float(np.mean(((x @ w) > 0).astype(float) == y))
    return KernelResult("LRTrain", steps, acc, tracer.trace)


def run_rndftrain(
    seed: int = 6, samples: int = 1500, features: int = 16, trees: int = 12
) -> KernelResult:
    """Random-forest-of-stumps training; work unit = one split evaluated.

    Each tree bootstraps the sample set and scans random feature/threshold
    pairs — a memory-intensive sweep over the whole dataset per tree, which
    is what makes RndFTrain the paper's memory-bound outlier.
    """
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(samples, features))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int)
    tracer = _Tracer()
    tracer.register("x", samples * features)
    tracer.register("y", samples)
    stumps: List[Tuple[int, float, int]] = []
    splits = 0
    for _ in range(trees):
        idx = rng.integers(0, samples, samples)
        best = (0, 0.0, 0, -1.0)
        for f in rng.integers(0, features, 8):
            thr = float(rng.normal())
            left_pos = right_pos = left_n = right_n = 0
            for i in idx:
                tracer.touch("x", int(i) * features + int(f))
                tracer.touch("y", int(i))
                if x[i, f] <= thr:
                    left_n += 1
                    left_pos += y[i]
                else:
                    right_n += 1
                    right_pos += y[i]
            splits += 1
            score = abs(
                (left_pos / max(left_n, 1)) - (right_pos / max(right_n, 1))
            )
            if score > best[3]:
                majority = int(left_pos / max(left_n, 1) > 0.5)
                best = (int(f), thr, majority, score)
        stumps.append(best[:3])
    return KernelResult("RndFTrain", splits, len(stumps), tracer.trace)


# ---------------------------------------------------------------------------
# CloudSuite: Hadoop (word count); BioBench: MUMmer (exact matching)
# ---------------------------------------------------------------------------
def run_hadoop(seed: int = 7, docs: int = 300, words_per_doc: int = 200) -> KernelResult:
    """Map-reduce word count; work unit = one document mapped."""
    rng = np.random.default_rng(seed)
    vocab = 2000
    tracer = _Tracer()
    tracer.register("docs", docs * words_per_doc)
    tracer.register("counts", vocab)
    counts: Counter = Counter()
    for d in range(docs):
        words = (rng.zipf(1.4, words_per_doc) - 1) % vocab
        for j, w in enumerate(words):
            tracer.touch("docs", d * words_per_doc + j)
            tracer.touch("counts", int(w))
            counts[int(w)] += 1
    top = counts.most_common(5)
    return KernelResult("Hadoop", docs, top, tracer.trace)


def run_mummer(seed: int = 8, genome_len: int = 60_000, queries: int = 150) -> KernelResult:
    """Maximal-exact-match search against an indexed reference genome.

    Builds a k-mer index (the memory-heavy structure) and streams query
    reads through it; work unit = one query matched.
    """
    rng = np.random.default_rng(seed)
    genome = rng.integers(0, 4, genome_len)
    k = 12
    tracer = _Tracer()
    tracer.register("genome", genome_len)
    tracer.register("index", genome_len)
    index: Dict[int, List[int]] = {}
    key = 0
    mask = (1 << (2 * k)) - 1
    for i, base in enumerate(genome):
        key = ((key << 2) | int(base)) & mask
        if i >= k - 1:
            index.setdefault(key, []).append(i - k + 1)
            tracer.touch("index", i)
    matches = 0
    for q in range(queries):
        start = int(rng.integers(0, genome_len - 80))
        read = genome[start : start + 80].copy()
        # Introduce one mutation.
        read[int(rng.integers(0, 80))] = int(rng.integers(0, 4))
        key = 0
        for i, base in enumerate(read):
            key = ((key << 2) | int(base)) & mask
            tracer.touch("genome", start + i)
            if i >= k - 1 and key in index:
                tracer.touch("index", index[key][0])
                matches += 1
    return KernelResult("MUMmer", queries, matches, tracer.trace)


#: Kernel registry keyed by the batch-profile names.
KERNELS: Dict[str, Callable[[], KernelResult]] = {
    "BFS": run_bfs,
    "CC": run_cc,
    "DC": run_dc,
    "PRank": run_pagerank,
    "LRTrain": run_lrtrain,
    "RndFTrain": run_rndftrain,
    "Hadoop": run_hadoop,
    "MUMmer": run_mummer,
}


def estimate_skew(trace: Sequence[int]) -> float:
    """Estimate the page-popularity skew of a trace.

    Returns the exponent ``s >= 1`` such that sampling ``page = N * u**s``
    best matches the trace's concentration: computed from the fraction of
    accesses landing on the hottest 20% of pages (s = log(share)/log(0.2)
    inverted). 1.0 means uniform.
    """
    if not trace:
        raise ValueError("empty trace")
    counts = Counter(trace)
    ordered = sorted(counts.values(), reverse=True)
    hot = max(1, len(ordered) // 5)
    share = sum(ordered[:hot]) / sum(ordered)
    # Under page = N*u**s, the hottest 20% of pages receive 0.2**(1/s) of
    # accesses: invert for s. Uniform -> share 0.2 -> s = 1.
    share = min(max(share, 0.2), 0.999)
    s = np.log(0.2) / np.log(share)
    return float(max(1.0, s))


def derive_batch_profile(result: KernelResult) -> Dict[str, float]:
    """Summarize a kernel run into batch-profile-shaped parameters."""
    return {
        "name": result.name,
        "data_pages": result.pages_touched,
        "skew": estimate_skew(result.trace),
        "accesses_per_unit": len(result.trace) / max(1, result.work_units),
    }
