"""Workload suites: named sets of service profiles.

The paper's evaluation uses the SocialNet services of DeathStarBench, but
its profiling (Section 4.2.2) covers DeathStarBench, TrainTicket, and
µSuite — the shared/private page structure and small working sets hold
across suites. This module makes the suite a first-class choice:

* ``socialnet`` — the paper's evaluation workload (the default).
* ``hotel`` — a hotelReservation-style suite (Search/Geo/Rate/Reserve/...)
  with a different blocking structure (search fan-out, reservation
  transactions) for generalization studies.

Select with ``SimulationConfig(suite="hotel")``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.microservices import SERVICES, ServiceProfile, _p

#: DeathStarBench hotelReservation-like services. Search fans out to Geo
#: and Rate (block-heavy); Reserve is transactional (long backend calls);
#: Recommend/Profile are read-mostly cache hitters.
HOTEL_SERVICES: Tuple[ServiceProfile, ...] = (
    _p("Frontend",  180, 0.22, 2, 140, 0.35, 300, 5.0,  40, 560, 150,  30, 50, 12, 0.65),
    _p("Search",    340, 0.26, 3, 190, 0.35, 180, 5.0,  40, 540, 220,  50, 60, 11, 0.55),
    _p("Geo",       150, 0.22, 1, 110, 0.35, 260, 5.5,  35, 540, 110,  18, 36, 13, 0.70),
    _p("Rate",      210, 0.24, 1, 160, 0.35, 230, 5.0,  38, 550, 140,  24, 44, 12, 0.62),
    _p("Reserve",   480, 0.30, 3, 420, 0.40,  70, 4.0,  50, 580, 260,  90, 64, 10, 0.48),
    _p("Profile",   160, 0.22, 1, 120, 0.35, 240, 5.5,  35, 540, 130,  20, 40, 12, 0.68),
    _p("Recommend", 290, 0.26, 1, 150, 0.35, 150, 4.5,  42, 560, 200,  40, 56, 11, 0.60),
    _p("Review",    380, 0.28, 2, 260, 0.38,  95, 4.5,  45, 560, 240,  70, 60, 10, 0.52),
)

#: Backend routing for the hotel suite (Memcached for read-mostly caches,
#: MongoDB for reservations/reviews, Redis for rates/geo indices).
HOTEL_BACKENDS: Dict[str, str] = {
    "Frontend": "memcached",
    "Search": "redis",
    "Geo": "redis",
    "Rate": "redis",
    "Reserve": "mongodb",
    "Profile": "memcached",
    "Recommend": "memcached",
    "Review": "mongodb",
}

SUITES: Dict[str, Tuple[ServiceProfile, ...]] = {
    "socialnet": SERVICES,
    "hotel": HOTEL_SERVICES,
}


def get_suite(name: str) -> Tuple[ServiceProfile, ...]:
    """The service profiles of a named suite."""
    suite = SUITES.get(name)
    if suite is None:
        raise ValueError(f"unknown suite {name!r}; choose from {sorted(SUITES)}")
    return suite
