"""Synthetic memory-access generation for services and batch jobs.

Converts a footprint description (shared/private/instruction page counts)
into sampled cache-model accesses. Sampling is hot-skewed (a power law over
pages) so the model reproduces the locality that makes microservice working
sets effectively small (Section 3, "microservice invocations have relatively
small working sets").

Each sampled access is a *token* representing ``weight`` real references;
the hierarchy's measured latency per token is scaled by the weight to
produce execution time (see :mod:`repro.cluster.server`).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.mem.address import AddressSpace, Region
from repro.mem.cache import slowpath_enabled
from repro.workloads.microservices import ServiceProfile

#: Cache lines per 4 KB page at 64 B lines.
LINES_PER_PAGE = 64
#: Services touch a hot subset of lines within each page (object headers,
#: hot fields): sampling only these keeps the modeled line working set in
#: the realistic few-thousand-line range that makes microservice working
#: sets effectively small (Section 3).
HOT_LINES_PER_PAGE = 8
#: Exponent of the page-popularity skew: page = N * u**SKEW.
PAGE_SKEW = 2.5
#: How many private-region generations are kept before page reuse: models
#: the allocator recycling freed invocation pages.
PRIVATE_POOL = 4

#: Fraction of data references that are stores.
WRITE_FRACTION = 0.3

Access = Tuple[int, bool, bool, bool]  # (address, shared, is_instr, is_write)


class AccessBatch:
    """A segment's sampled accesses as parallel NumPy arrays.

    The fast path (:meth:`repro.mem.hierarchy.CoreMemory.access_batch`)
    consumes the arrays wholesale; iterating yields the classic
    ``(addr, shared, instr, write)`` tuples (Python scalars) so per-access
    consumers — the reference slow path, tests — keep working unchanged.
    """

    __slots__ = ("addr", "shared", "instr", "write")

    def __init__(
        self,
        addr: np.ndarray,
        shared: np.ndarray,
        instr: np.ndarray,
        write: np.ndarray,
    ):
        self.addr = addr
        self.shared = shared
        self.instr = instr
        self.write = write

    def __len__(self) -> int:
        return len(self.addr)

    def __iter__(self):
        return iter(
            zip(
                self.addr.tolist(),
                self.shared.tolist(),
                self.instr.tolist(),
                self.write.tolist(),
            )
        )


_EMPTY_BATCH = AccessBatch(
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=bool),
    np.empty(0, dtype=bool),
    np.empty(0, dtype=bool),
)


#: Page / line geometry matching ``Region.addr`` / ``Region.line_addr``.
_PAGE_BYTES = 4096
_LINE_BYTES = 64


class ServiceMemory:
    """Address regions and access sampling for one service instance."""

    def __init__(self, space: AddressSpace, profile: ServiceProfile):
        self.profile = profile
        self.instr = space.alloc(profile.instruction_pages, shared=True)
        self.shared = space.alloc(profile.shared_pages, shared=True)
        self.private_pool: List[Region] = [
            space.alloc(profile.private_pages, shared=False) for _ in range(PRIVATE_POOL)
        ]
        self._next_private = 0
        self._base_instr = self.instr.addr(0)
        self._base_shared = self.shared.addr(0)
        self._fast = not slowpath_enabled()

    def new_invocation(self) -> Region:
        """Private region for a fresh invocation (cycled from the pool)."""
        region = self.private_pool[self._next_private]
        self._next_private = (self._next_private + 1) % len(self.private_pool)
        return region

    def sample(
        self, rng: np.random.Generator, n: int, private: Region
    ) -> AccessBatch:
        """Sample ``n`` accesses for one compute segment.

        Mix: ~30% instruction fetches (always shared), the rest data split
        between shared and private pages per the profile. Fully vectorized;
        the draw order and per-element float arithmetic are bit-identical to
        the reference scalar loop (pinned by the hot-path parity suite).
        """
        if not self._fast:
            return self._sample_reference(rng, n, private)
        if n <= 0:
            return _EMPTY_BATCH
        kind = rng.random(n)
        page_u = rng.random(n) ** PAGE_SKEW
        line = rng.integers(0, HOT_LINES_PER_PAGE, n)
        is_write = rng.random(n) < WRITE_FRACTION

        instr_m = kind < 0.30
        shared_m = ~instr_m & (kind < 0.30 + 0.70 * self.profile.shared_ref_fraction)
        shared_page = instr_m | shared_m

        npages = np.where(
            instr_m,
            float(self.instr.num_pages),
            np.where(shared_m, float(self.shared.num_pages), float(private.num_pages)),
        )
        page = (page_u * npages).astype(np.int64)
        np.minimum(page, npages.astype(np.int64) - 1, out=page)

        addr = np.where(
            instr_m,
            self._base_instr,
            np.where(shared_m, self._base_shared, private.addr(0)),
        )
        page *= _PAGE_BYTES
        addr += page
        addr += line * _LINE_BYTES
        # Instruction fetches and shared read-mostly pages don't write.
        write = is_write & ~shared_page
        return AccessBatch(addr, shared_page, instr_m, write)

    def _sample_reference(
        self, rng: np.random.Generator, n: int, private: Region
    ) -> List[Access]:
        """The original per-element sampling loop (REPRO_MEM_SLOWPATH).

        Kept as the live baseline for ``benchmarks/hotpath_speedup.py``;
        draws and results are bit-identical to :meth:`sample`.
        """
        if n <= 0:
            return []
        kind = rng.random(n)
        page_u = rng.random(n) ** PAGE_SKEW
        line = rng.integers(0, HOT_LINES_PER_PAGE, n)
        is_write = rng.random(n) < WRITE_FRACTION
        shared_frac = self.profile.shared_ref_fraction
        out: List[Access] = []
        for i in range(n):
            k = kind[i]
            if k < 0.30:
                region, instr = self.instr, True
            elif k < 0.30 + 0.70 * shared_frac:
                region, instr = self.shared, False
            else:
                region, instr = private, False
            page = int(page_u[i] * region.num_pages)
            if page >= region.num_pages:
                page = region.num_pages - 1
            addr = region.line_addr(page, int(line[i]))
            write = bool(is_write[i]) and not instr and not region.shared
            out.append((addr, region.shared, instr, write))
        return out


class BatchMemory:
    """Address regions and access sampling for a batch job.

    Batch jobs have larger footprints and weaker locality than services;
    ``skew`` close to 1.0 means near-uniform page access (graph workloads),
    larger values mean a hot core (training loops).
    """

    def __init__(self, space: AddressSpace, code_pages: int, data_pages: int, skew: float):
        if skew < 1.0:
            raise ValueError(f"skew must be >= 1.0, got {skew}")
        self.code = space.alloc(code_pages, shared=True)
        self.data = space.alloc(data_pages, shared=False)
        self.skew = skew
        self._base_code = self.code.addr(0)
        self._base_data = self.data.addr(0)
        self._fast = not slowpath_enabled()

    def sample(self, rng: np.random.Generator, n: int) -> AccessBatch:
        if not self._fast:
            return self._sample_reference(rng, n)
        if n <= 0:
            return _EMPTY_BATCH
        kind = rng.random(n)
        page_u = rng.random(n) ** self.skew
        line = rng.integers(0, 2 * HOT_LINES_PER_PAGE, n)
        is_write = rng.random(n) < WRITE_FRACTION

        code_m = kind < 0.2
        npages = np.where(
            code_m, float(self.code.num_pages), float(self.data.num_pages)
        )
        page = (page_u * npages).astype(np.int64)
        np.minimum(page, npages.astype(np.int64) - 1, out=page)
        base = np.where(code_m, self._base_code, self._base_data)
        addr = base + page * _PAGE_BYTES + line * _LINE_BYTES
        write = is_write & ~code_m
        return AccessBatch(addr, code_m, code_m, write)

    def _sample_reference(self, rng: np.random.Generator, n: int) -> List[Access]:
        """The original per-element sampling loop (REPRO_MEM_SLOWPATH)."""
        if n <= 0:
            return []
        kind = rng.random(n)
        page_u = rng.random(n) ** self.skew
        line = rng.integers(0, 2 * HOT_LINES_PER_PAGE, n)
        is_write = rng.random(n) < WRITE_FRACTION
        out: List[Access] = []
        for i in range(n):
            if kind[i] < 0.2:
                region, instr = self.code, True
            else:
                region, instr = self.data, False
            page = int(page_u[i] * region.num_pages)
            if page >= region.num_pages:
                page = region.num_pages - 1
            write = bool(is_write[i]) and not instr
            out.append(
                (region.line_addr(page, int(line[i])), region.shared, instr, write)
            )
        return out
