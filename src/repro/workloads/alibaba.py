"""Synthetic Alibaba microservice-trace generator.

The paper grounds its motivation in Alibaba's production traces [48]: a
time series (30 s granularity) of average/maximum/minimum core utilization
per microservice instance. Those traces anchor two published statistics
(Section 1 / Figure 2):

* 50% of instances have **average** core utilization below 16.1%;
* 90% of instances have **maximum** core utilization below 40.7%.

This module synthesizes instance populations calibrated to those anchors
and per-instance utilization time series with the bursty shape of Figure 3.
The anchors are asserted by tests (within sampling tolerance), making the
substitution auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: Published anchor points.
MEDIAN_AVG_UTILIZATION = 0.161
P90_MAX_UTILIZATION = 0.407
TRACE_GRANULARITY_S = 30

# Joint lognormal construction: a common factor z drives both avg and max,
# with the max's marginal calibrated so its 90th percentile hits the anchor.
_AVG_SIGMA_COMMON = 0.55
_AVG_SIGMA_IDIO = 0.20
_MAX_SIGMA_COMMON = 0.45
_MAX_SIGMA_IDIO = 0.15
_MAX_SIGMA_TOTAL = float(np.hypot(_MAX_SIGMA_COMMON, _MAX_SIGMA_IDIO))
_Z90 = 1.2815515655446004
_MAX_MEDIAN = P90_MAX_UTILIZATION / float(np.exp(_Z90 * _MAX_SIGMA_TOTAL))


@dataclass(frozen=True)
class InstanceUtilization:
    """Average and maximum core utilization of one microservice instance."""

    avg: float
    max: float


def sample_instances(
    rng: np.random.Generator, n: int
) -> List[InstanceUtilization]:
    """Sample ``n`` instances' (avg, max) utilization pairs.

    Construction: ``ln avg`` and ``ln max`` share a common normal factor
    (bursty instances are bursty in both), with medians set from the
    published anchors; ``max`` is floored at ``1.05 * avg`` and both are
    capped at 1.0.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    z = rng.normal(size=n)
    avg = MEDIAN_AVG_UTILIZATION * np.exp(
        _AVG_SIGMA_COMMON * z + _AVG_SIGMA_IDIO * rng.normal(size=n)
    )
    mx = _MAX_MEDIAN * np.exp(
        _MAX_SIGMA_COMMON * z + _MAX_SIGMA_IDIO * rng.normal(size=n)
    )
    avg = np.minimum(avg, 1.0)
    mx = np.minimum(np.maximum(mx, avg * 1.05), 1.0)
    avg = np.minimum(avg, mx)
    return [InstanceUtilization(float(a), float(m)) for a, m in zip(avg, mx)]


def utilization_cdf(values: List[float], points: int = 100) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF over [0, 1] for plotting Figure 2."""
    xs = np.linspace(0.0, 1.0, points)
    data = np.sort(np.asarray(values))
    ys = np.searchsorted(data, xs, side="right") / len(data)
    return xs, ys


def utilization_timeseries(
    rng: np.random.Generator,
    instance: InstanceUtilization,
    duration_s: int = 510,
    granularity_s: int = TRACE_GRANULARITY_S,
) -> np.ndarray:
    """A bursty utilization time series with the Figure 3 shape.

    AR(1) baseline around the instance's average with occasional bursts
    toward its maximum. Values are clipped to [0, max].
    """
    n = max(1, duration_s // granularity_s)
    base = instance.avg
    series = np.empty(n)
    level = base
    phi = 0.6
    noise_scale = 0.25 * base
    burst_prob = 0.12
    for i in range(n):
        level = base + phi * (level - base) + rng.normal(scale=noise_scale)
        value = level
        if rng.random() < burst_prob:
            value = instance.max * float(rng.uniform(0.7, 1.0))
        series[i] = min(max(value, 0.01 * base), instance.max)
    return series


def representative_instance() -> InstanceUtilization:
    """The 'representative Alibaba VM' used for Figure 3."""
    return InstanceUtilization(avg=0.22, max=0.85)
