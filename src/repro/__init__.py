"""HardHarvest reproduction: hardware-supported core harvesting for
microservices (Stojkovic et al., ISCA 2025), as a pure-Python
discrete-event cluster simulator.

Quick start::

    from repro import SystemKind, SimulationConfig, build_system, run_server

    system = build_system(SystemKind.HARDHARVEST_BLOCK)
    result = run_server(system, SimulationConfig(requests_per_service=500))
    print(f"P99 = {result.avg_p99_ms():.2f} ms, "
          f"busy cores = {result.avg_busy_cores:.1f}")

Package map:

* :mod:`repro.config`    -- Table-1 parameters and cost constants.
* :mod:`repro.sim`       -- event engine, RNG streams, statistics.
* :mod:`repro.mem`       -- caches/TLBs, partitioning, replacement, DRAM.
* :mod:`repro.hw`        -- the HardHarvest controller (RQ, QMs, contexts).
* :mod:`repro.cluster`   -- cores, VMs, NIC, the per-server engine.
* :mod:`repro.harvest`   -- lending agents and the transition cost model.
* :mod:`repro.workloads` -- services, batch jobs/kernels, Alibaba traces.
* :mod:`repro.core`      -- presets and the experiment API.
* :mod:`repro.faults`    -- deterministic fault injection + client retries.
* :mod:`repro.parallel`  -- sweep fan-out and the on-disk result cache.
* :mod:`repro.telemetry` -- span tracer, gauge probes, Perfetto/CSV export.
* :mod:`repro.analysis`  -- Belady replay, critical paths, report formatting.
* :mod:`repro.service`   -- the async HTTP job API (``python -m repro serve``).
"""

from repro.config import (
    ClusterConfig,
    FlushScope,
    HarvestTrigger,
    OptimizationFlags,
    PartitionConfig,
    ReplacementKind,
    SimulationConfig,
    SystemConfig,
    SystemKind,
    TelemetryConfig,
)
from repro.core import (
    ClusterResult,
    ServerResult,
    all_systems,
    build_system,
    harvest_block,
    harvest_term,
    hardharvest_block,
    hardharvest_term,
    noharvest,
    run_cluster,
    run_server,
    run_server_raw,
    run_systems,
)
from repro.faults import (
    ClientPolicy,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    get_scenario,
    scenario_names,
)

# 1.1.0: ServerResult grew the ``resilience`` field and SimulationConfig
# the ``faults``/``client`` fields; the bump invalidates pre-fault cache
# entries so cached and recomputed results stay bit-identical.
# 1.2.0: SimulationConfig grew the ``telemetry`` field (serialized, hence
# part of every cache key); the bump invalidates pre-telemetry entries.
# 1.5.0: the version now also salts service job ids (repro.service), so
# the bump rolls every job id along with every cache key.
__version__ = "1.5.0"

from repro.parallel import (  # noqa: E402 - needs __version__ for cache keys
    ResultCache,
    SweepOutcome,
    SweepPoint,
    SweepSpec,
    run_sweep,
)

__all__ = [
    "__version__",
    "SweepSpec",
    "SweepPoint",
    "SweepOutcome",
    "ResultCache",
    "run_sweep",
    "SystemKind",
    "SystemConfig",
    "SimulationConfig",
    "TelemetryConfig",
    "ClusterConfig",
    "HarvestTrigger",
    "FlushScope",
    "ReplacementKind",
    "PartitionConfig",
    "OptimizationFlags",
    "build_system",
    "all_systems",
    "noharvest",
    "harvest_term",
    "harvest_block",
    "hardharvest_term",
    "hardharvest_block",
    "run_server",
    "run_server_raw",
    "run_cluster",
    "run_systems",
    "ServerResult",
    "ClusterResult",
    "FaultKind",
    "FaultSpec",
    "FaultSchedule",
    "ClientPolicy",
    "get_scenario",
    "scenario_names",
]
