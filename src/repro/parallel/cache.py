"""Content-addressed on-disk result cache for sweep points.

Cache-key contract (also documented in ``docs/api.md``):

* The key is ``sha256(canonical_json(payload) + "\\n" + version)`` where
  ``payload`` is :meth:`SweepPoint.payload` — the *complete* serialized
  experiment description (system config, simulation config, batch job,
  server index) — and ``version`` is the ``repro`` package version.
* ``canonical_json`` sorts keys and uses compact separators, so two
  configs that compare equal always hash equal regardless of field
  declaration or dict insertion order.
* Any config field change, seed change, or package version bump therefore
  produces a *different* key: stale results are never returned, they are
  merely orphaned (and reclaimable with :meth:`ResultCache.prune_stale`).

Entries live under ``<root>/<key[:2]>/<key>.json`` and store the version
and payload alongside the result, so a cache directory is self-describing
and auditable.  Writes go to a temp file in the same directory followed by
:func:`os.replace`, so concurrent writers (e.g. two pytest workers racing
on the same point) can never leave a torn file — last writer wins, and
both wrote identical bytes anyway because runs are deterministic.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import repro

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


def canonical_json(obj: Any) -> str:
    """Stable serialization: sorted keys, compact separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=True)


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries dropped because they were unreadable or recorded under a
    #: different package version than the file location implies.
    invalidations: int = 0

    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate(),
        }


@dataclass
class ResultCache:
    """Content-addressed store mapping sweep-point payloads to result dicts."""

    root: str = DEFAULT_CACHE_DIR
    version: str = field(default_factory=lambda: repro.__version__)
    stats: CacheStats = field(default_factory=CacheStats)

    def key(self, payload: Dict[str, Any]) -> str:
        """The content address of a sweep-point payload under this version."""
        material = canonical_json(payload) + "\n" + self.version
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result dict for ``key``, or None on miss.

        A corrupted or version-mismatched entry counts as a miss (plus an
        invalidation) and is deleted so the recompute can overwrite it.
        """
        path = self._path(key)
        try:
            with open(path) as fh:
                entry = json.load(fh)
            if entry.get("version") != self.version or "result" not in entry:
                raise ValueError("stale or incomplete cache entry")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, OSError):
            self.stats.misses += 1
            self.stats.invalidations += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return entry["result"]

    def put(self, key: str, payload: Dict[str, Any], result: Dict[str, Any]) -> None:
        """Store a result atomically (write-to-temp + rename)."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {"version": self.version, "payload": payload, "result": result}
        fd, tmp = tempfile.mkstemp(
            prefix=key[:8] + ".", suffix=".tmp", dir=os.path.dirname(path)
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def prune_stale(self) -> int:
        """Delete entries recorded under a different package version.

        Because the version participates in the key, stale entries can
        never be *returned*; pruning just reclaims their disk space after
        a version bump.  Returns the number of entries removed.
        """
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            # "jobs" holds repro.service job records, not cache entries.
            if not os.path.isdir(shard_dir) or shard == "jobs":
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    with open(path) as fh:
                        entry = json.load(fh)
                    stale = entry.get("version") != self.version
                except (ValueError, OSError):
                    stale = True
                if stale:
                    try:
                        os.remove(path)
                        removed += 1
                        self.stats.invalidations += 1
                    except OSError:
                        pass
        return removed

    def disk_stats(self) -> Dict[str, Any]:
        """Walk the cache directory and summarize what is on disk.

        Returns ``entries`` / ``bytes`` / ``current`` / ``stale`` counts,
        a ``by_version`` breakdown (unreadable entries count under
        ``"<corrupt>"``), and the number of service job records under
        ``<root>/jobs`` — the payload behind ``python -m repro cache``.
        """
        stats: Dict[str, Any] = {
            "entries": 0, "bytes": 0, "current": 0, "stale": 0,
            "by_version": {}, "jobs": 0,
        }
        if not os.path.isdir(self.root):
            return stats
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir) or shard == "jobs":
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    stats["bytes"] += os.path.getsize(path)
                    with open(path) as fh:
                        version = json.load(fh).get("version", "<corrupt>")
                except (ValueError, OSError):
                    version = "<corrupt>"
                stats["entries"] += 1
                if version == self.version:
                    stats["current"] += 1
                else:
                    stats["stale"] += 1
                stats["by_version"][version] = (
                    stats["by_version"].get(version, 0) + 1
                )
        jobs_dir = os.path.join(self.root, "jobs")
        if os.path.isdir(jobs_dir):
            stats["jobs"] = sum(
                1 for n in os.listdir(jobs_dir)
                if n.endswith(".json")
                and not n.endswith((".result.json", ".trace.json"))
            )
        return stats

    def __len__(self) -> int:
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if os.path.isdir(shard_dir) and shard != "jobs":
                count += sum(1 for n in os.listdir(shard_dir) if n.endswith(".json"))
        return count
