"""Content-addressed on-disk result cache for sweep points.

Cache-key contract (also documented in ``docs/api.md``):

* The key is ``sha256(canonical_json(payload) + "\\n" + version)`` where
  ``payload`` is :meth:`SweepPoint.payload` — the *complete* serialized
  experiment description (system config, simulation config, batch job,
  server index) — and ``version`` is the ``repro`` package version.
* ``canonical_json`` sorts keys and uses compact separators, so two
  configs that compare equal always hash equal regardless of field
  declaration or dict insertion order.
* Any config field change, seed change, or package version bump therefore
  produces a *different* key: stale results are never returned, they are
  merely orphaned (and reclaimable with :meth:`ResultCache.prune_stale`).
* :meth:`ResultCache.key_json` accepts a pre-serialized canonical payload
  (e.g. :meth:`SweepPoint.payload_json`, the split-key fast path) and is
  exactly equivalent to :meth:`ResultCache.key` on the parsed dict.

Storage formats — both live under ``<root>/<key[:2]>/<key>.json``:

* **v2** (default): a ``repz2\\n`` magic marker followed by a
  zlib-compressed body laid out as ``version\\npayload_json\\nresult_json``.
  Compression shrinks the multi-KB config+result JSON ~5-10x on disk, and
  the line layout means :meth:`ResultCache.get` checks the version and
  parses *only* the result line — the payload tree (usually the larger
  half of the entry) is never re-parsed on a warm hit.
* **v1** (legacy): plain JSON text ``{"version", "payload", "result"}``.
  v2 readers handle v1 entries transparently, so an existing cache
  directory keeps hitting after an upgrade; ``store_format="v1"`` (or
  ``REPRO_DATAPLANE_SLOWPATH=1``) keeps writing the legacy format for
  benchmarking and migration tests.

On top of the disk store sits a bounded in-process LRU
(``memory_entries``; 0 disables) so repeated gets of the same key —
service result endpoints, sweep retries, epoch barriers — never re-open
or re-parse a file.  Writes go to a temp file in the same directory
followed by :func:`os.replace`, so concurrent writers (e.g. two pytest
workers racing on the same point) can never leave a torn file — last
writer wins, and both wrote identical bytes anyway because runs are
deterministic.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import repro

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: v2 entries start with this marker; everything after it is the
#: zlib-compressed ``version\npayload\nresult`` body.
V2_MAGIC = b"repz2\n"

#: zlib level for v2 entries: 6 is the sweet spot for JSON text (within a
#: few percent of level 9's ratio at a fraction of the CPU).
_V2_COMPRESSION_LEVEL = 6


def _build_zdict() -> bytes:
    """The shared zlib preset dictionary for v2 entries.

    A cache entry is mostly the canonical JSON of a config payload, and
    every payload is a near-copy of the preset configs — so priming the
    DEFLATE window with the presets' payload JSON (plus the common result
    field names) lets each ~5 KB entry compress to a few hundred bytes
    instead of the ~2 KB self-windowed zlib manages.

    The dictionary is a *deterministic function of the default configs*:
    the same package version always rebuilds the same bytes, so entries
    written by one process inflate in any other.  Editing config defaults
    or result field names changes the dictionary, which makes existing v2
    entries fail to inflate — they are then invalidated and recomputed,
    exactly as a config-schema change already orphans them via the key.
    zlib's dictionary checksum makes the failure loud, never silent.
    """
    from repro.config import SimulationConfig
    from repro.core.presets import all_systems
    from repro.parallel.sweep import SweepPoint
    from repro.workloads.batch import BATCH_JOBS

    sim = SimulationConfig()
    parts = [
        SweepPoint(
            label="zdict", system=system, sim=sim,
            batch_job=BATCH_JOBS[index % len(BATCH_JOBS)],
        ).payload_json()
        for index, (_, system) in enumerate(sorted(all_systems().items()))
    ]
    # Common result-dict vocabulary, so the result line benefits too.
    parts.append(
        '"avg_busy_cores":"avg_harvest_cores":"batch_units":"breakdown":'
        '"counters":"flush_us":"label":"p50_ms":"p99_ms":"queue_us":'
        '"reassign_us":"requests_completed":"requests_dropped":"service_us":'
        '"system":"frontend":"compose-post":"home-timeline":"user-timeline":'
        '"search-hotel":"recommend":"reserve":"geo":"profile":'
    )
    # zlib favors matches near the dictionary's end; the last 32 KiB win.
    return "\n".join(parts).encode("utf-8")[-32768:]


#: Lazily-built singleton (building it imports the preset configs).
_ZDICT: Optional[bytes] = None


def _zdict() -> bytes:
    global _ZDICT
    if _ZDICT is None:
        _ZDICT = _build_zdict()
    return _ZDICT


def _v2_compress(body: bytes) -> bytes:
    co = zlib.compressobj(
        _V2_COMPRESSION_LEVEL, zlib.DEFLATED, zlib.MAX_WBITS,
        zlib.DEF_MEM_LEVEL, zlib.Z_DEFAULT_STRATEGY, _zdict(),
    )
    return co.compress(body) + co.flush()


def _v2_decompress(data: bytes) -> bytes:
    do = zlib.decompressobj(zlib.MAX_WBITS, zdict=_zdict())
    out = do.decompress(data)
    out += do.flush()
    if not do.eof:
        raise ValueError("truncated v2 cache entry")
    return out


def _slowpath() -> bool:
    """True when the data-plane fast path is disabled via the environment.

    ``REPRO_DATAPLANE_SLOWPATH=1`` mirrors ``REPRO_MEM_SLOWPATH`` /
    ``REPRO_SCHED_SLOWPATH``: it keeps the pre-fast-path reference
    behavior in-tree (legacy full-payload keying in the runner, v1 cache
    entries, no memory layer) so benchmarks can measure the fast path
    against an honest baseline and CI can pin format-parity.
    """
    return os.environ.get("REPRO_DATAPLANE_SLOWPATH") == "1"


def canonical_json(obj: Any) -> str:
    """Stable serialization: sorted keys, compact separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=True)


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries dropped because they were unreadable or recorded under a
    #: different package version than the file location implies.
    invalidations: int = 0
    #: Subset of ``hits`` served by the in-process LRU layer (no file
    #: open, no JSON parse).
    memory_hits: int = 0

    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "memory_hits": self.memory_hits,
            "hit_rate": self.hit_rate(),
        }


@dataclass
class ResultCache:
    """Content-addressed store mapping sweep-point payloads to result dicts."""

    root: str = DEFAULT_CACHE_DIR
    version: str = field(default_factory=lambda: repro.__version__)
    stats: CacheStats = field(default_factory=CacheStats)
    #: On-disk entry format for *writes*: "v2" (compressed, default) or
    #: "v1" (legacy plain JSON).  Reads understand both regardless.
    store_format: str = field(
        default_factory=lambda: "v1" if _slowpath() else "v2"
    )
    #: Bound of the in-process LRU layer (entries); 0 disables it.
    memory_entries: int = field(
        default_factory=lambda: 0 if _slowpath() else 512
    )
    _memory: "OrderedDict[str, Dict[str, Any]]" = field(
        default_factory=OrderedDict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.store_format not in ("v1", "v2"):
            raise ValueError(
                f"unknown cache store_format {self.store_format!r}"
            )

    def key(self, payload: Dict[str, Any]) -> str:
        """The content address of a sweep-point payload under this version."""
        return self.key_json(canonical_json(payload))

    def key_json(self, payload_json: str) -> str:
        """:meth:`key` for an already-canonical payload string.

        The split-key fast path: :meth:`SweepPoint.payload_json` assembles
        the canonical string from memoized fragments, and this hashes it
        without ever materializing the payload dict.  Guaranteed equal to
        ``key(json.loads(payload_json))`` for canonical input.
        """
        material = payload_json + "\n" + self.version
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    # -- entry codec --------------------------------------------------

    def _encode(self, payload: Union[Dict[str, Any], str],
                result: Dict[str, Any]) -> bytes:
        if self.store_format == "v1":
            if isinstance(payload, str):
                payload = json.loads(payload)
            entry = {
                "version": self.version, "payload": payload, "result": result,
            }
            return json.dumps(entry).encode("utf-8")
        payload_json = (
            payload if isinstance(payload, str) else canonical_json(payload)
        )
        # The result line preserves dict insertion order (no sort_keys),
        # exactly as v1's json.dump did: downstream float reductions
        # (e.g. the cluster merge averaging p99 maps) iterate result
        # dicts, and reordering keys would perturb summation order — a
        # last-ulp digest change between warm and cold runs.
        result_json = json.dumps(
            result, separators=(",", ":"), allow_nan=True
        )
        body = self.version + "\n" + payload_json + "\n" + result_json
        return V2_MAGIC + _v2_compress(body.encode("utf-8"))

    @staticmethod
    def _decode_result(blob: bytes) -> Tuple[Optional[str], Dict[str, Any]]:
        """(version, result) from an entry blob; payload is not parsed."""
        if blob.startswith(V2_MAGIC):
            body = _v2_decompress(blob[len(V2_MAGIC):]).decode("utf-8")
            version, sep, rest = body.partition("\n")
            _, sep2, result_json = rest.partition("\n")
            if not sep or not sep2:
                raise ValueError("truncated v2 cache entry")
            return version, json.loads(result_json)
        entry = json.loads(blob.decode("utf-8"))
        if "result" not in entry:
            raise ValueError("incomplete cache entry")
        return entry.get("version"), entry["result"]

    @staticmethod
    def _decode_version(blob: bytes) -> Optional[str]:
        """Just the recorded version — cheapest possible decode."""
        if blob.startswith(V2_MAGIC):
            body = _v2_decompress(blob[len(V2_MAGIC):])
            version, sep, _ = body.partition(b"\n")
            if not sep:
                raise ValueError("truncated v2 cache entry")
            return version.decode("utf-8")
        entry = json.loads(blob.decode("utf-8"))
        if "result" not in entry:
            raise ValueError("incomplete cache entry")
        return entry.get("version")

    def read_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """The full stored entry (version/payload/result), either format.

        Audit/tooling path — :meth:`get` is the hot path and deliberately
        skips the payload parse this performs.  Returns None if absent.
        """
        try:
            with open(self._path(key), "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            return None
        if blob.startswith(V2_MAGIC):
            body = _v2_decompress(blob[len(V2_MAGIC):]).decode("utf-8")
            version, _, rest = body.partition("\n")
            payload_json, _, result_json = rest.partition("\n")
            return {
                "version": version,
                "payload": json.loads(payload_json),
                "result": json.loads(result_json),
            }
        return json.loads(blob.decode("utf-8"))

    # -- memory layer -------------------------------------------------

    def _remember(self, key: str, result: Dict[str, Any]) -> None:
        if not self.memory_entries:
            return
        mem = self._memory
        mem[key] = result
        mem.move_to_end(key)
        while len(mem) > self.memory_entries:
            mem.popitem(last=False)

    # -- core API -----------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result dict for ``key``, or None on miss.

        Served from the in-process LRU when possible; otherwise the disk
        entry (either format) is read and remembered.  A corrupted or
        version-mismatched entry counts as a miss (plus an invalidation)
        and is deleted so the recompute can overwrite it.
        """
        if self.memory_entries:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                return cached
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
            version, result = self._decode_result(blob)
            if version != self.version:
                raise ValueError("stale cache entry")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, OSError, zlib.error):
            self.stats.misses += 1
            self.stats.invalidations += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self._remember(key, result)
        return result

    def get_many(self, keys: Sequence[str]) -> Dict[str, Dict[str, Any]]:
        """Batch :meth:`get`: returns ``{key: result}`` for the hits only.

        Counter semantics are exactly N single gets (duplicates in
        ``keys`` are looked up — and counted — once each).
        """
        out: Dict[str, Dict[str, Any]] = {}
        for key in keys:
            hit = self.get(key)
            if hit is not None:
                out[key] = hit
        return out

    def put(self, key: str, payload: Union[Dict[str, Any], str],
            result: Dict[str, Any]) -> None:
        """Store a result atomically (write-to-temp + rename).

        ``payload`` may be the dict or its canonical JSON string — the
        runner passes the split-key string straight through so the
        payload tree is never re-parsed just to be stored.
        """
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        data = self._encode(payload, result)
        fd, tmp = tempfile.mkstemp(
            prefix=key[:8] + ".", suffix=".tmp", dir=os.path.dirname(path)
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self._remember(key, result)

    def put_many(
        self,
        entries: Iterable[Tuple[str, Union[Dict[str, Any], str], Dict[str, Any]]],
    ) -> int:
        """Batch :meth:`put`; returns the number of entries stored."""
        count = 0
        for key, payload, result in entries:
            self.put(key, payload, result)
            count += 1
        return count

    # -- maintenance --------------------------------------------------

    def _entry_paths(self) -> Iterable[str]:
        """Entry files on disk, tolerating concurrent pruners.

        A shard directory or entry removed between ``listdir`` and the
        caller's open/stat simply vanishes from the walk — a concurrently
        pruned file must never be misreported as corrupt.
        """
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            # "jobs" holds repro.service job records, not cache entries.
            if shard == "jobs" or not os.path.isdir(shard_dir):
                continue
            try:
                names = sorted(os.listdir(shard_dir))
            except FileNotFoundError:
                continue  # shard pruned mid-walk
            for name in names:
                if name.endswith(".json"):
                    yield os.path.join(shard_dir, name)

    def prune_stale(self) -> int:
        """Delete entries recorded under a different package version.

        Because the version participates in the key, stale entries can
        never be *returned*; pruning just reclaims their disk space after
        a version bump.  Returns the number of entries removed.
        """
        removed = 0
        for path in self._entry_paths():
            try:
                with open(path, "rb") as fh:
                    blob = fh.read()
                stale = self._decode_version(blob) != self.version
            except FileNotFoundError:
                continue  # entry pruned mid-walk: nothing to reclaim
            except (ValueError, OSError, zlib.error):
                stale = True
            if stale:
                try:
                    os.remove(path)
                    removed += 1
                    self.stats.invalidations += 1
                except OSError:
                    pass
        return removed

    def disk_stats(self) -> Dict[str, Any]:
        """Walk the cache directory and summarize what is on disk.

        Returns ``entries`` / ``bytes`` / ``current`` / ``stale`` counts,
        ``by_version`` and ``by_format`` breakdowns (unreadable entries
        count under ``"<corrupt>"``), and the number of service job
        records under ``<root>/jobs`` — the payload behind
        ``python -m repro cache``.  Entries deleted concurrently during
        the walk are skipped, not miscounted.
        """
        stats: Dict[str, Any] = {
            "entries": 0, "bytes": 0, "current": 0, "stale": 0,
            "by_version": {}, "by_format": {}, "jobs": 0,
        }
        for path in self._entry_paths():
            try:
                size = os.path.getsize(path)
                with open(path, "rb") as fh:
                    blob = fh.read()
            except FileNotFoundError:
                continue  # entry pruned mid-walk
            except OSError:
                # Present but unreadable (permissions, I/O error): it
                # occupies the cache, so count it — as corrupt.
                size, blob = 0, b""
            if blob:
                fmt = "v2" if blob.startswith(V2_MAGIC) else "v1"
            else:
                fmt = "<corrupt>"
            try:
                version = self._decode_version(blob)
                if version is None:
                    version = "<corrupt>"
            except (ValueError, OSError, zlib.error):
                version = "<corrupt>"
            stats["entries"] += 1
            stats["bytes"] += size
            if version == self.version:
                stats["current"] += 1
            else:
                stats["stale"] += 1
            stats["by_version"][version] = (
                stats["by_version"].get(version, 0) + 1
            )
            stats["by_format"][fmt] = stats["by_format"].get(fmt, 0) + 1
        jobs_dir = os.path.join(self.root, "jobs")
        try:
            stats["jobs"] = sum(
                1 for n in os.listdir(jobs_dir)
                if n.endswith(".json")
                and not n.endswith((".result.json", ".trace.json"))
            )
        except FileNotFoundError:
            pass
        return stats

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())
