"""Parallel sweep execution with content-addressed result caching.

The fan-out/cache substrate behind ``python -m repro sweep``, the
``workers=``/``cache=`` paths of :func:`repro.run_systems` and
:func:`repro.run_cluster`, and the figure benchmarks:

* :class:`SweepSpec` / :class:`SweepPoint` — declarative (system, seed,
  override) grids, enumerated in deterministic order.
* :func:`run_sweep` — process-pool execution with per-task timeout,
  per-point retry with capped exponential backoff (:class:`RetryPolicy`),
  broken-pool rebuild, optional quarantine of hopeless points, and
  collection keyed by point.
* :class:`ResultCache` — content-addressed on-disk cache under
  ``.repro_cache/`` keyed by config hash + package version, with
  zlib-compressed v2 entries (legacy v1 read transparently), batch
  ``get_many``/``put_many``, and a bounded in-process LRU layer.

``REPRO_DATAPLANE_SLOWPATH=1`` disables the data-plane fast path
(split-key hashing, v2 entries, LRU, worker memo, compressed chunk IPC)
and restores the pre-fast-path reference behavior for benchmarking.
"""

from repro.parallel.cache import (
    DEFAULT_CACHE_DIR,
    V2_MAGIC,
    CacheStats,
    ResultCache,
    canonical_json,
)
from repro.parallel.runner import (
    DeterminismError,
    RetryPolicy,
    SweepError,
    SweepOutcome,
    execute_payload,
    run_sweep,
)
from repro.parallel.sweep import SweepPoint, SweepSpec, parse_seeds

__all__ = [
    "SweepSpec",
    "SweepPoint",
    "parse_seeds",
    "run_sweep",
    "RetryPolicy",
    "SweepOutcome",
    "SweepError",
    "DeterminismError",
    "execute_payload",
    "ResultCache",
    "CacheStats",
    "canonical_json",
    "DEFAULT_CACHE_DIR",
    "V2_MAGIC",
]
