"""Parallel sweep execution with content-addressed result caching.

The fan-out/cache substrate behind ``python -m repro sweep``, the
``workers=``/``cache=`` paths of :func:`repro.run_systems` and
:func:`repro.run_cluster`, and the figure benchmarks:

* :class:`SweepSpec` / :class:`SweepPoint` — declarative (system, seed,
  override) grids, enumerated in deterministic order.
* :func:`run_sweep` — process-pool execution with per-task timeout,
  per-point retry with capped exponential backoff (:class:`RetryPolicy`),
  broken-pool rebuild, optional quarantine of hopeless points, and
  collection keyed by point.
* :class:`ResultCache` — content-addressed on-disk cache under
  ``.repro_cache/`` keyed by config hash + package version.
"""

from repro.parallel.cache import (
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
    canonical_json,
)
from repro.parallel.runner import (
    DeterminismError,
    RetryPolicy,
    SweepError,
    SweepOutcome,
    execute_payload,
    run_sweep,
)
from repro.parallel.sweep import SweepPoint, SweepSpec, parse_seeds

__all__ = [
    "SweepSpec",
    "SweepPoint",
    "parse_seeds",
    "run_sweep",
    "RetryPolicy",
    "SweepOutcome",
    "SweepError",
    "DeterminismError",
    "execute_payload",
    "ResultCache",
    "CacheStats",
    "canonical_json",
    "DEFAULT_CACHE_DIR",
]
