"""Process-pool sweep execution with caching and deterministic collection.

The simulator is fully deterministic (named RNG substreams seeded from the
config) and sweep points are independent, so a sweep is embarrassingly
parallel: :func:`run_sweep` fans points out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and collects results
*keyed by point*, never by completion order — the returned mapping is in
:meth:`SweepSpec.points` order no matter which worker finished first.

Worker safety: a point crosses the process boundary as its canonical JSON
payload (not as pickled live objects), and the worker rebuilds the frozen
config dataclasses through :mod:`repro.core.serialize` — the same
validated path the CLI uses for ``--config`` files.

Failure policy: a worker crash, a poisoned pool, or a per-task timeout
marks the point failed *for that attempt only*.  Ordinary exceptions are
caught per point inside the chunk, so one bad point never discards its
chunk-mates' first-attempt results; a hard worker crash (which loses the
whole chunk) is salvaged by retrying each affected point as its own
singleton chunk.  Failed points are retried under a
:class:`RetryPolicy` — capped exponential backoff between attempts, every
retry isolated in a singleton chunk so a poisoned point cannot take
neighbours down with it — and a broken pool is rebuilt (bounded by
``MAX_POOL_REBUILDS``) instead of failing the run.  Points that exhaust
their attempts raise :class:`SweepError` naming every failed label, or —
with ``quarantine=True`` — are recorded in
:attr:`SweepOutcome.quarantined` and excluded from the results instead of
sinking the sweep.

Determinism guard: with ``verify_cached=True``, every cache hit is
recomputed and the cached and fresh results must be *bit-identical*
(compared as canonical JSON).  A mismatch raises :class:`DeterminismError`
— this is the regression tripwire against hidden global-RNG use creeping
into :mod:`repro.cluster.server` workers.
"""

from __future__ import annotations

import json
import pickle
import time
import zlib
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.export import server_result_from_dict, server_result_to_dict
from repro.core.metrics import ServerResult
from repro.parallel.cache import (
    CacheStats,
    ResultCache,
    _slowpath,
    canonical_json,
)
from repro.parallel.sweep import SweepPoint, SweepSpec
from repro.workloads.batch import BatchJobProfile


class SweepError(RuntimeError):
    """One or more sweep points failed after exhausting retries."""


class DeterminismError(RuntimeError):
    """A cached result and its fresh recompute were not bit-identical."""


#: A broken process pool is rebuilt at most this many times per batch
#: before the surviving chunks are marked failed for the attempt.
MAX_POOL_REBUILDS = 3

#: Patchable sleep hook so tests can assert backoff without waiting it out.
_sleep = time.sleep

#: zlib level for chunk result transfer: 1 trades a little ratio for
#: speed — the point is shrinking IPC pickles, not archival storage.
_RESULT_COMPRESSION_LEVEL = 1

#: Per-worker memo: content key -> deserialized config object.  A chunk
#: of cluster-scale points shares its SystemConfig / SimulationConfig /
#: BatchJobProfile sub-trees; deserializing each distinct sub-tree once
#: per worker (instead of once per point) removes the dominant per-point
#: setup cost.  Safe because every memoized object is a frozen dataclass.
_WORKER_MEMO: Dict[str, Any] = {}
#: Clear-on-full bound — sweeps reuse a handful of configs; this only
#: guards a pathological grid of thousands of distinct sub-configs.
_WORKER_MEMO_MAX = 512


def _init_worker() -> None:
    """Process-pool initializer: reset the memo, pre-warm hot imports.

    Importing the simulator stack here (once per worker, before the
    first chunk lands) keeps the first task of every worker from paying
    the import cost inside its timed chunk.
    """
    _WORKER_MEMO.clear()
    import repro.core.experiment  # noqa: F401
    import repro.core.serialize  # noqa: F401


def _memoized_part(kind: str, part: Dict, build: Callable[[Dict], Any]) -> Any:
    """Deserialize ``part`` once per distinct content per process.

    The memo key is the canonical JSON of the already-parsed sub-dict —
    a pure content address, so two points whose system configs are equal
    share one frozen instance no matter how they were produced.
    """
    memo_key = kind + ":" + json.dumps(
        part, sort_keys=True, separators=(",", ":")
    )
    obj = _WORKER_MEMO.get(memo_key)
    if obj is None:
        if len(_WORKER_MEMO) >= _WORKER_MEMO_MAX:
            _WORKER_MEMO.clear()
        obj = build(part)
        _WORKER_MEMO[memo_key] = obj
    return obj


def _decode_chunk_result(result: Union[Dict, bytes, bytearray]) -> Dict:
    """Inverse of the worker-side result compression (no-op for dicts).

    Pickle (not JSON) under the zlib layer: result dicts may carry
    int-keyed counters, and a JSON round-trip would coerce those keys to
    strings — changing ``canonical_json`` sort order and therefore the
    digests that must stay bit-identical between the serial and pooled
    paths.  The bytes come from our own pool workers, the same trust
    domain whose task pickles we already execute.
    """
    if isinstance(result, (bytes, bytearray)):
        return pickle.loads(zlib.decompress(result))
    return result


@dataclass(frozen=True)
class RetryPolicy:
    """Per-point retry with capped exponential backoff.

    ``max_attempts`` counts every execution of a point (first try
    included), so the default allows two retries.  Between attempt ``n``
    and ``n+1`` the runner sleeps ``delay(n)`` — backoff is wall-clock
    only and never touches simulation state, so it cannot perturb
    results.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}"
            )

    def delay(self, attempt: int) -> float:
        """Seconds to wait after the ``attempt``-th failed execution."""
        raw = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        return min(raw, self.backoff_cap_s)


def execute_payload(payload_json: str) -> Dict:
    """Worker entry point: run one serialized sweep point to completion.

    Module-level (picklable) and JSON-in/dict-out so the process boundary
    never depends on pickling live simulator objects.
    """
    from repro.core.experiment import run_server
    from repro.core.serialize import from_dict

    payload = json.loads(payload_json)
    if _slowpath():
        system = from_dict(payload["system"])
        sim = from_dict(payload["simulation"])
        job = (
            BatchJobProfile(**payload["batch_job"])
            if payload.get("batch_job") is not None
            else None
        )
    else:
        system = _memoized_part("system", payload["system"], from_dict)
        sim = _memoized_part("simulation", payload["simulation"], from_dict)
        job_part = payload.get("batch_job")
        job = (
            _memoized_part(
                "batch_job", job_part, lambda p: BatchJobProfile(**p)
            )
            if job_part is not None
            else None
        )
    result = run_server(system, sim, job, server_index=payload["server_index"])
    return server_result_to_dict(result)


def execute_payload_chunk(
    tasks: Sequence[Tuple[str, str]],
) -> List[Tuple[str, Optional[Union[Dict, bytes]], Optional[str]]]:
    """Worker entry point: run a contiguous chunk of sweep points.

    Submitting one pool task per *chunk* rather than per point amortizes
    the per-task overhead (payload pickling, future bookkeeping, result
    transfer, worker wake-up) that made a two-worker sweep of short
    points slower than the serial loop.  Failures stay per-point — one
    crashed point reports its error without poisoning its chunk-mates.

    ``execute_payload`` is resolved through the module global at call
    time so test monkeypatching reaches the chunked path too.

    Successful results cross the process boundary as zlib-compressed
    canonical JSON bytes (decoded by :func:`_decode_chunk_result` on the
    parent side): result dicts are multi-KB of repetitive text, so
    compressing at level 1 shrinks the IPC pickle several-fold for
    negligible CPU.  ``REPRO_DATAPLANE_SLOWPATH=1`` ships plain dicts,
    preserving the pre-fast-path wire format for benchmarking.
    """
    compress = not _slowpath()
    out: List[Tuple[str, Optional[Union[Dict, bytes]], Optional[str]]] = []
    for label, payload_json in tasks:
        try:
            result = execute_payload(payload_json)
            if compress:
                result = zlib.compress(
                    pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
                    _RESULT_COMPRESSION_LEVEL,
                )
            out.append((label, result, None))
        except Exception as exc:  # noqa: BLE001 - uniform retry handling
            out.append((label, None, f"{type(exc).__name__}: {exc}"))
    return out


@dataclass
class SweepOutcome:
    """Everything a sweep produced, in spec order."""

    #: Point label -> result, in enumeration order (dicts preserve it).
    results: Dict[str, ServerResult]
    #: Cache counters for this run (None when run uncached).
    cache_stats: Optional[CacheStats]
    #: Points actually simulated this run (cache misses).
    computed: int = 0
    #: Points served from the cache.
    from_cache: int = 0
    #: Points that needed more than one attempt after a crash/timeout.
    retried: int = 0
    elapsed_s: float = 0.0
    #: Label -> error string for first-attempt failures that then succeeded.
    retry_errors: Dict[str, str] = field(default_factory=dict)
    #: Label -> last error for points that exhausted their attempts and
    #: were quarantined instead of failing the sweep (``quarantine=True``
    #: only; quarantined points are absent from :attr:`results`).
    quarantined: Dict[str, str] = field(default_factory=dict)
    #: Times a broken process pool was detected and rebuilt.
    pool_rebuilds: int = 0


def _execute_batch(
    tasks: Sequence[Tuple[str, str]],
    workers: int,
    task_timeout: Optional[float],
    chunk_size: Optional[int] = None,
) -> Tuple[Dict[str, Dict], Dict[str, str], int]:
    """Run (label, payload_json) tasks; return (results, failures,
    pool_rebuilds).

    One pool attempt: failures carry the error text and are left for the
    caller's retry logic.  Ordinary per-point exceptions are already
    isolated inside :func:`execute_payload_chunk`, so only hard events
    (worker crash, pool poisoning, chunk timeout) fail more than the
    guilty point.  A broken pool is detected, rebuilt (at most
    :data:`MAX_POOL_REBUILDS` times), and the not-yet-collected chunks
    are resubmitted to the fresh pool — a single dying worker degrades
    one chunk, not the whole batch.

    ``chunk_size`` overrides the default ~4-chunks-per-worker split; the
    retry path passes ``1`` so every retried point runs in isolation
    (poisoned-point containment and sibling salvage).
    """
    done: Dict[str, Dict] = {}
    failed: Dict[str, str] = {}
    rebuilds = 0
    if not tasks:
        return done, failed, rebuilds
    if workers <= 1 or len(tasks) == 1:
        for label, payload_json in tasks:
            try:
                done[label] = execute_payload(payload_json)
            except Exception as exc:  # noqa: BLE001 - uniform retry handling
                failed[label] = f"{type(exc).__name__}: {exc}"
        return done, failed, rebuilds
    if chunk_size is None:
        # Contiguous chunks, ~4 per worker: big enough to amortize pool
        # IPC, small enough that an uneven point mix still load-balances.
        chunk_size = max(1, -(-len(tasks) // (workers * 4)))
    chunks = [tasks[i:i + chunk_size] for i in range(0, len(tasks), chunk_size)]
    max_workers = min(workers, len(chunks))
    pool = ProcessPoolExecutor(max_workers=max_workers, initializer=_init_worker)
    try:
        futures = [(chunk, pool.submit(execute_payload_chunk, chunk))
                   for chunk in chunks]
        cursor = 0
        while cursor < len(futures):
            chunk, future = futures[cursor]
            cursor += 1
            timeout = task_timeout * len(chunk) if task_timeout is not None else None
            try:
                for label, result, err in future.result(timeout=timeout):
                    if err is None:
                        done[label] = _decode_chunk_result(result)
                    else:
                        failed[label] = err
            except FutureTimeout:
                future.cancel()
                for label, _ in chunk:
                    failed[label] = (
                        f"chunk of {len(chunk)} timed out after {timeout}s"
                    )
            except BrokenProcessPool as exc:
                # The chunk that broke the pool is lost; everything queued
                # behind it is resubmitted to a fresh pool.
                for label, _ in chunk:
                    failed[label] = f"{type(exc).__name__}: {exc}"
                remaining = futures[cursor:]
                pool.shutdown(wait=False, cancel_futures=True)
                if rebuilds >= MAX_POOL_REBUILDS:
                    for lost_chunk, _ in remaining:
                        for label, _ in lost_chunk:
                            failed[label] = (
                                "process pool broke "
                                f"{rebuilds + 1} times; giving up this "
                                "attempt"
                            )
                    futures = []
                    cursor = 0
                    break
                rebuilds += 1
                pool = ProcessPoolExecutor(
                    max_workers=max_workers, initializer=_init_worker
                )
                futures = [
                    (lost_chunk, pool.submit(execute_payload_chunk, lost_chunk))
                    for lost_chunk, _ in remaining
                ]
                cursor = 0
            except Exception as exc:  # noqa: BLE001 - crash inside future
                for label, _ in chunk:
                    failed[label] = f"{type(exc).__name__}: {exc}"
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return done, failed, rebuilds


def run_sweep(
    spec: Union[SweepSpec, Sequence[SweepPoint]],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    task_timeout: Optional[float] = None,
    verify_cached: bool = False,
    retry: Optional[RetryPolicy] = None,
    quarantine: bool = False,
) -> SweepOutcome:
    """Execute every point of ``spec``; return results in spec order.

    ``workers > 1`` fans cache misses out over a process pool; results are
    nevertheless collected per point, so the output is identical to the
    serial path.  With a ``cache``, previously-computed points are served
    from disk and fresh results are stored back.  ``verify_cached=True``
    additionally recomputes every hit and insists on bit-identical output
    (see :class:`DeterminismError`).

    ``retry`` (default :class:`RetryPolicy`) governs per-point retries:
    only the points that failed re-run, each as its own singleton chunk,
    with capped exponential backoff between attempts.  Points that
    exhaust every attempt raise :class:`SweepError` — unless
    ``quarantine=True``, which records them in
    :attr:`SweepOutcome.quarantined` (and omits them from the results)
    so one hopeless point cannot sink a million-point sweep.  Callers
    whose downstream digest covers *every* point (the cluster-scale
    runner) must keep quarantine off: silently missing servers would
    change results, not just slim them.
    """
    points: List[SweepPoint] = (
        list(spec.points()) if isinstance(spec, SweepSpec) else list(spec)
    )
    labels = [p.label for p in points]
    if len(set(labels)) != len(labels):
        dupes = sorted({x for x in labels if labels.count(x) > 1})
        raise ValueError(f"duplicate sweep point labels: {dupes}")

    started = time.monotonic()
    # Split-key fast path: payload_json() assembles each point's
    # canonical JSON from identity-memoized fragments of the shared
    # config instances (byte-identical output, so identical keys), and
    # key_json() hashes the string without re-materializing the dict.
    # REPRO_DATAPLANE_SLOWPATH=1 keeps the legacy full re-serialization
    # in-tree as the benchmark baseline.
    fast = not _slowpath()
    if fast:
        payloads = {p.label: p.payload_json() for p in points}
    else:
        payloads = {p.label: canonical_json(p.payload()) for p in points}
    raw: Dict[str, Dict] = {}
    keys: Dict[str, str] = {}

    if cache is not None:
        for point in points:
            if fast:
                keys[point.label] = cache.key_json(payloads[point.label])
            else:
                keys[point.label] = cache.key(json.loads(payloads[point.label]))
        hits = cache.get_many([keys[p.label] for p in points])
        for point in points:
            hit = hits.get(keys[point.label])
            if hit is not None:
                raw[point.label] = hit

    # ``is not None``, not truthiness: ResultCache defines __len__, so
    # ``if cache`` would walk the whole cache directory just to build the
    # outcome record.
    outcome = SweepOutcome(
        results={}, cache_stats=cache.stats if cache is not None else None
    )
    outcome.from_cache = len(raw)

    pending = [(p.label, payloads[p.label]) for p in points if p.label not in raw]
    if verify_cached and cache is not None:
        # Recompute hits alongside the misses; compare after collection.
        to_verify = [(lbl, payloads[lbl]) for lbl in raw]
    else:
        to_verify = []

    retry = retry or RetryPolicy()
    done, failures, rebuilds = _execute_batch(
        pending + to_verify, workers, task_timeout
    )
    outcome.pool_rebuilds += rebuilds
    first_errors = dict(failures)
    attempt = 1
    while failures and attempt < retry.max_attempts:
        delay = retry.delay(attempt)
        if delay > 0:
            _sleep(delay)
        attempt += 1
        # Singleton chunks: each retried point runs in isolation, so a
        # poisoned point cannot take healthy siblings down with it and
        # every sibling's success is banked the moment it completes.
        retry_done, failures, rebuilds = _execute_batch(
            [(lbl, payloads[lbl]) for lbl in failures],
            workers,
            task_timeout,
            chunk_size=1,
        )
        outcome.pool_rebuilds += rebuilds
        done.update(retry_done)
    if failures:
        if not quarantine:
            detail = "; ".join(f"{lbl}: {err}" for lbl, err in failures.items())
            raise SweepError(
                f"{len(failures)} sweep point(s) failed after "
                f"{retry.max_attempts} attempt(s): {detail}"
            )
        outcome.quarantined = dict(failures)
    recovered = {
        lbl: err for lbl, err in first_errors.items() if lbl not in failures
    }
    outcome.retried = len(recovered)
    outcome.retry_errors = recovered

    for label, _ in to_verify:
        if label in outcome.quarantined:
            continue  # recompute kept failing; the cached result stands
        fresh = done[label]
        if canonical_json(fresh) != canonical_json(raw[label]):
            raise DeterminismError(
                f"cached result for {label!r} is not bit-identical to a fresh "
                "recompute — a worker is consuming hidden non-deterministic "
                "state (global RNG, wall clock, ...)"
            )
    to_store: List[Tuple[str, Union[Dict, str], Dict]] = []
    for label, _ in pending:
        if label in outcome.quarantined:
            continue
        raw[label] = done[label]
        outcome.computed += 1
        if cache is not None:
            # Fast path hands the canonical string straight to the
            # store; the payload tree is never re-parsed just to be
            # re-serialized into the entry.
            payload = payloads[label] if fast else json.loads(payloads[label])
            to_store.append((keys[label], payload, done[label]))
    if cache is not None and to_store:
        cache.put_many(to_store)

    outcome.results = {
        lbl: server_result_from_dict(raw[lbl]) for lbl in labels if lbl in raw
    }
    outcome.elapsed_s = time.monotonic() - started
    return outcome
