"""Process-pool sweep execution with caching and deterministic collection.

The simulator is fully deterministic (named RNG substreams seeded from the
config) and sweep points are independent, so a sweep is embarrassingly
parallel: :func:`run_sweep` fans points out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and collects results
*keyed by point*, never by completion order — the returned mapping is in
:meth:`SweepSpec.points` order no matter which worker finished first.

Worker safety: a point crosses the process boundary as its canonical JSON
payload (not as pickled live objects), and the worker rebuilds the frozen
config dataclasses through :mod:`repro.core.serialize` — the same
validated path the CLI uses for ``--config`` files.

Failure policy: a worker crash, a poisoned pool, or a per-task timeout
marks the point failed for that attempt; failed points are retried once in
a fresh pool (or in-process when serial).  Points that fail twice raise
:class:`SweepError` naming every failed label.

Determinism guard: with ``verify_cached=True``, every cache hit is
recomputed and the cached and fresh results must be *bit-identical*
(compared as canonical JSON).  A mismatch raises :class:`DeterminismError`
— this is the regression tripwire against hidden global-RNG use creeping
into :mod:`repro.cluster.server` workers.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.export import server_result_from_dict, server_result_to_dict
from repro.core.metrics import ServerResult
from repro.parallel.cache import CacheStats, ResultCache, canonical_json
from repro.parallel.sweep import SweepPoint, SweepSpec
from repro.workloads.batch import BatchJobProfile


class SweepError(RuntimeError):
    """One or more sweep points failed after exhausting retries."""


class DeterminismError(RuntimeError):
    """A cached result and its fresh recompute were not bit-identical."""


def execute_payload(payload_json: str) -> Dict:
    """Worker entry point: run one serialized sweep point to completion.

    Module-level (picklable) and JSON-in/dict-out so the process boundary
    never depends on pickling live simulator objects.
    """
    from repro.core.experiment import run_server
    from repro.core.serialize import from_dict

    payload = json.loads(payload_json)
    system = from_dict(payload["system"])
    sim = from_dict(payload["simulation"])
    job = (
        BatchJobProfile(**payload["batch_job"])
        if payload.get("batch_job") is not None
        else None
    )
    result = run_server(system, sim, job, server_index=payload["server_index"])
    return server_result_to_dict(result)


def execute_payload_chunk(
    tasks: Sequence[Tuple[str, str]],
) -> List[Tuple[str, Optional[Dict], Optional[str]]]:
    """Worker entry point: run a contiguous chunk of sweep points.

    Submitting one pool task per *chunk* rather than per point amortizes
    the per-task overhead (payload pickling, future bookkeeping, result
    transfer, worker wake-up) that made a two-worker sweep of short
    points slower than the serial loop.  Failures stay per-point — one
    crashed point reports its error without poisoning its chunk-mates.

    ``execute_payload`` is resolved through the module global at call
    time so test monkeypatching reaches the chunked path too.
    """
    out: List[Tuple[str, Optional[Dict], Optional[str]]] = []
    for label, payload_json in tasks:
        try:
            out.append((label, execute_payload(payload_json), None))
        except Exception as exc:  # noqa: BLE001 - uniform retry handling
            out.append((label, None, f"{type(exc).__name__}: {exc}"))
    return out


@dataclass
class SweepOutcome:
    """Everything a sweep produced, in spec order."""

    #: Point label -> result, in enumeration order (dicts preserve it).
    results: Dict[str, ServerResult]
    #: Cache counters for this run (None when run uncached).
    cache_stats: Optional[CacheStats]
    #: Points actually simulated this run (cache misses).
    computed: int = 0
    #: Points served from the cache.
    from_cache: int = 0
    #: Points that needed a second attempt after a crash/timeout.
    retried: int = 0
    elapsed_s: float = 0.0
    #: Label -> error string for first-attempt failures that then succeeded.
    retry_errors: Dict[str, str] = field(default_factory=dict)


def _execute_batch(
    tasks: Sequence[Tuple[str, str]],
    workers: int,
    task_timeout: Optional[float],
) -> Tuple[Dict[str, Dict], Dict[str, str]]:
    """Run (label, payload_json) tasks; return (results, failures).

    One pool attempt: failures carry the error text and are left for the
    caller's retry logic.
    """
    done: Dict[str, Dict] = {}
    failed: Dict[str, str] = {}
    if not tasks:
        return done, failed
    if workers <= 1 or len(tasks) == 1:
        for label, payload_json in tasks:
            try:
                done[label] = execute_payload(payload_json)
            except Exception as exc:  # noqa: BLE001 - uniform retry handling
                failed[label] = f"{type(exc).__name__}: {exc}"
        return done, failed
    # Contiguous chunks, ~4 per worker: big enough to amortize pool IPC,
    # small enough that an uneven point mix still load-balances.
    chunk_size = max(1, -(-len(tasks) // (workers * 4)))
    chunks = [tasks[i:i + chunk_size] for i in range(0, len(tasks), chunk_size)]
    pool = ProcessPoolExecutor(max_workers=min(workers, len(chunks)))
    try:
        futures = [(chunk, pool.submit(execute_payload_chunk, chunk))
                   for chunk in chunks]
        for chunk, future in futures:
            timeout = task_timeout * len(chunk) if task_timeout is not None else None
            try:
                for label, result, err in future.result(timeout=timeout):
                    if err is None:
                        done[label] = result
                    else:
                        failed[label] = err
            except FutureTimeout:
                future.cancel()
                for label, _ in chunk:
                    failed[label] = (
                        f"chunk of {len(chunk)} timed out after {timeout}s"
                    )
            except Exception as exc:  # noqa: BLE001 - crash/broken pool
                for label, _ in chunk:
                    failed[label] = f"{type(exc).__name__}: {exc}"
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return done, failed


def run_sweep(
    spec: Union[SweepSpec, Sequence[SweepPoint]],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    task_timeout: Optional[float] = None,
    verify_cached: bool = False,
) -> SweepOutcome:
    """Execute every point of ``spec``; return results in spec order.

    ``workers > 1`` fans cache misses out over a process pool; results are
    nevertheless collected per point, so the output is identical to the
    serial path.  With a ``cache``, previously-computed points are served
    from disk and fresh results are stored back.  ``verify_cached=True``
    additionally recomputes every hit and insists on bit-identical output
    (see :class:`DeterminismError`).
    """
    points: List[SweepPoint] = (
        list(spec.points()) if isinstance(spec, SweepSpec) else list(spec)
    )
    labels = [p.label for p in points]
    if len(set(labels)) != len(labels):
        dupes = sorted({x for x in labels if labels.count(x) > 1})
        raise ValueError(f"duplicate sweep point labels: {dupes}")

    started = time.monotonic()
    payloads = {p.label: canonical_json(p.payload()) for p in points}
    raw: Dict[str, Dict] = {}
    keys: Dict[str, str] = {}

    if cache is not None:
        for point in points:
            key = cache.key(json.loads(payloads[point.label]))
            keys[point.label] = key
            hit = cache.get(key)
            if hit is not None:
                raw[point.label] = hit

    outcome = SweepOutcome(results={}, cache_stats=cache.stats if cache else None)
    outcome.from_cache = len(raw)

    pending = [(p.label, payloads[p.label]) for p in points if p.label not in raw]
    if verify_cached and cache is not None:
        # Recompute hits alongside the misses; compare after collection.
        to_verify = [(lbl, payloads[lbl]) for lbl in raw]
    else:
        to_verify = []

    done, failures = _execute_batch(pending + to_verify, workers, task_timeout)
    if failures:
        retry_done, still_failed = _execute_batch(
            [(lbl, payloads[lbl]) for lbl in failures], workers, task_timeout
        )
        if still_failed:
            detail = "; ".join(f"{lbl}: {err}" for lbl, err in still_failed.items())
            raise SweepError(f"{len(still_failed)} sweep point(s) failed twice: {detail}")
        outcome.retried = len(retry_done)
        outcome.retry_errors = dict(failures)
        done.update(retry_done)

    for label, _ in to_verify:
        fresh = done[label]
        if canonical_json(fresh) != canonical_json(raw[label]):
            raise DeterminismError(
                f"cached result for {label!r} is not bit-identical to a fresh "
                "recompute — a worker is consuming hidden non-deterministic "
                "state (global RNG, wall clock, ...)"
            )
    for label, _ in pending:
        raw[label] = done[label]
        outcome.computed += 1
        if cache is not None:
            cache.put(keys[label], json.loads(payloads[label]), done[label])

    outcome.results = {lbl: server_result_from_dict(raw[lbl]) for lbl in labels}
    outcome.elapsed_s = time.monotonic() - started
    return outcome
