"""Sweep enumeration: which (system, seed, config-override) points to run.

Every evaluation in the paper is a sweep — five systems x many seeds x
ablation knobs (Figures 11-19, Table 1).  A :class:`SweepSpec` describes
one such grid declaratively; :meth:`SweepSpec.points` enumerates it in a
*fixed, deterministic order* so that results can always be collected and
reported keyed by point, never by completion order.

A :class:`SweepPoint` is self-contained: it carries the full
:class:`~repro.config.SystemConfig` and :class:`~repro.config.SimulationConfig`
(plus the batch job and server index), so a worker process can execute it
from its serialized form alone, and the serialized form doubles as the
content-addressed cache key payload (see :mod:`repro.parallel.cache`).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.config import SimulationConfig, SystemConfig
from repro.core.serialize import to_dict
from repro.workloads.batch import BatchJobProfile


# --- split-key payload serialization ---------------------------------------
#
# A cluster-scale run hashes ~the same multi-KB config 128 x epochs times:
# every per-server point shares the SystemConfig / SimulationConfig /
# BatchJobProfile *instances* and differs only in a few scalar fields.
# ``canonical_json(to_dict(point.payload()))`` re-walks and re-serializes
# the whole tree per point.  The fragment memo below caches the canonical
# JSON of each frozen sub-object *by identity*, so the shared base is
# serialized once and each point only assembles its tiny delta around the
# memoized fragments.  The output is byte-identical to
# ``canonical_json(payload())`` — cache keys never change (pinned by the
# key-stability golden in tests/data/golden_cache_keys.json).

#: id(obj) -> (obj, canonical fragment).  The object reference keeps the
#: id alive so a recycled id can never alias a different object; the
#: sanity check ``memo[0] is obj`` guards the pathological case anyway.
_FRAGMENT_MEMO: Dict[int, Tuple[Any, str]] = {}
#: Same shape, for BatchJobProfile (``dataclasses.asdict`` encoding,
#: no ``__type__`` marker — kept separate so one object id can never be
#: served under the wrong encoding).
_ASDICT_MEMO: Dict[int, Tuple[Any, str]] = {}
#: Clear-on-full bound: a sweep reuses a handful of config instances, so
#: the memo stays tiny; the bound only guards pathological callers that
#: churn through thousands of distinct configs in one process.
_FRAGMENT_MEMO_MAX = 8192

#: (type, value) -> json text for scalar field values.  Keyed by type so
#: ``True``/``1``/``1.0`` (which compare equal) can never serve each
#: other's encoding.
_SCALAR_MEMO: Dict[Tuple[type, Any], str] = {}


def _scalar_json(value: Any) -> str:
    return json.dumps(value, allow_nan=True)


#: Per-dataclass serialization template: ``(prefix, field_name)`` pairs in
#: canonical (sorted-key) order, where ``prefix`` is the pre-quoted
#: ``"name":`` string — or the whole constant ``"__type__":"Cls"`` pair
#: (``field_name`` None).  Computed once per class, so the per-instance
#: miss path is just getattr + fragment + join, with no per-call dict
#: build, key quoting, or sort.
_CLASS_TEMPLATES: Dict[type, Tuple[Tuple[str, Optional[str]], ...]] = {}


def _class_template(cls: type) -> Tuple[Tuple[str, Optional[str]], ...]:
    names = [f.name for f in dataclasses.fields(cls)]
    entries = []
    for name in sorted(["__type__"] + names) if "__type__" not in names \
            else sorted(names):
        # A field literally named __type__ shadows the class marker, the
        # same way it would in ``{"__type__": ..., **fields}``.
        if name == "__type__" and name not in names:
            entries.append(
                (
                    _scalar_json(name) + ":" + _scalar_json(cls.__name__),
                    None,
                )
            )
        else:
            entries.append((_scalar_json(name) + ":", name))
    template = tuple(entries)
    _CLASS_TEMPLATES[cls] = template
    return template


def _json_fragment(obj: Any) -> str:
    """``canonical_json(to_dict(obj))``, memoized per frozen dataclass.

    Byte-identical to the slow path: keys sorted, compact separators,
    ``__type__`` markers on dataclasses, ``__enum__`` wrappers on enums.
    """
    cls = obj.__class__
    if cls is str or cls is int or cls is float or obj is None or cls is bool:
        # Compact separators only matter for containers, so plain dumps
        # emits the same bytes the canonical slow path would.
        if cls is float and obj == 0.0:
            # -0.0 == 0.0, so they'd share a memo slot despite distinct
            # encodings ("-0.0" vs "0.0"); dump zeros directly.
            return json.dumps(obj)
        memo_key = (cls, obj)
        hit = _SCALAR_MEMO.get(memo_key)
        if hit is None:
            hit = json.dumps(obj, allow_nan=True)
            if len(_SCALAR_MEMO) >= _FRAGMENT_MEMO_MAX:
                _SCALAR_MEMO.clear()
            _SCALAR_MEMO[memo_key] = hit
        return hit
    if dataclasses.is_dataclass(cls):
        hit = _FRAGMENT_MEMO.get(id(obj))
        if hit is not None and hit[0] is obj:
            return hit[1]
        template = _CLASS_TEMPLATES.get(cls)
        if template is None:
            template = _class_template(cls)
        frag = "{" + ",".join(
            prefix if name is None else prefix + _json_fragment(
                getattr(obj, name)
            )
            for prefix, name in template
        ) + "}"
        if len(_FRAGMENT_MEMO) >= _FRAGMENT_MEMO_MAX:
            _FRAGMENT_MEMO.clear()
        _FRAGMENT_MEMO[id(obj)] = (obj, frag)
        return frag
    if isinstance(obj, Enum):
        return (
            '{"__enum__":' + _scalar_json(type(obj).__name__)
            + ',"value":' + _json_fragment(obj.value) + "}"
        )
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(_json_fragment(v) for v in obj) + "]"
    if isinstance(obj, dict):
        if not all(isinstance(k, str) for k in obj):
            # json.dumps coerces non-str keys; defer to it for exactness.
            return json.dumps(
                to_dict(obj), sort_keys=True, separators=(",", ":"),
                allow_nan=True,
            )
        return "{" + ",".join(
            _scalar_json(k) + ":" + _json_fragment(v)
            for k, v in sorted(obj.items())
        ) + "}"
    # Scalars (None/bool/int/float/str); anything else raises the same
    # TypeError the slow path would.
    return json.dumps(
        to_dict(obj), sort_keys=True, separators=(",", ":"), allow_nan=True
    )


def _asdict_fragment(obj: Any) -> str:
    """Memoized ``canonical_json(dataclasses.asdict(obj))`` (batch jobs)."""
    hit = _ASDICT_MEMO.get(id(obj))
    if hit is not None and hit[0] is obj:
        return hit[1]
    frag = json.dumps(
        dataclasses.asdict(obj), sort_keys=True, separators=(",", ":"),
        allow_nan=True,
    )
    if len(_ASDICT_MEMO) >= _FRAGMENT_MEMO_MAX:
        _ASDICT_MEMO.clear()
    _ASDICT_MEMO[id(obj)] = (obj, frag)
    return frag


def clear_fragment_memo() -> None:
    """Drop the split-key fragment memos (benchmark/test isolation)."""
    _FRAGMENT_MEMO.clear()
    _ASDICT_MEMO.clear()
    _SCALAR_MEMO.clear()


def parse_seeds(text: str) -> Tuple[int, ...]:
    """Parse a seed set from CLI grammar.

    Accepts ``"0..7"`` (inclusive range), ``"3"``, or a comma list mixing
    both: ``"0,2,8..11"``.
    """
    seeds: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if ".." in part:
            lo_text, hi_text = part.split("..", 1)
            lo, hi = int(lo_text), int(hi_text)
            if hi < lo:
                raise ValueError(f"empty seed range {part!r}")
            seeds.extend(range(lo, hi + 1))
        else:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"no seeds in {text!r}")
    return tuple(seeds)


@dataclass(frozen=True)
class SweepPoint:
    """One fully-specified simulation in a sweep."""

    label: str
    system: SystemConfig
    sim: SimulationConfig
    batch_job: Optional[BatchJobProfile] = None
    server_index: int = 0

    def payload(self) -> Dict[str, Any]:
        """The complete, JSON-able description of this point.

        This is everything that determines the simulation's output — it is
        both what gets shipped to a worker process and what the result
        cache hashes (combined with the package version) to form the key.
        The ``label`` is deliberately excluded: renaming a point must not
        change its identity.
        """
        return {
            "system": to_dict(self.system),
            "simulation": to_dict(self.sim),
            "batch_job": (
                dataclasses.asdict(self.batch_job)
                if self.batch_job is not None
                else None
            ),
            "server_index": self.server_index,
        }

    def payload_json(self) -> str:
        """Canonical JSON of :meth:`payload`, via the split-key fast path.

        Byte-identical to ``canonical_json(self.payload())`` but assembled
        from identity-memoized fragments: the shared (system, simulation,
        batch-job) base serializes once per distinct *instance*, and each
        point contributes only its per-point delta (here ``server_index``
        plus whichever sub-config instances actually differ).  This is
        what :func:`repro.parallel.runner.run_sweep` feeds to
        :meth:`repro.parallel.cache.ResultCache.key_json`, so on-disk keys
        are unchanged.
        """
        job_frag = (
            "null" if self.batch_job is None
            else _asdict_fragment(self.batch_job)
        )
        # Top-level keys in sorted order, exactly as json.dumps emits them:
        # batch_job < server_index < simulation < system.
        return (
            '{"batch_job":' + job_frag
            + ',"server_index":' + _scalar_json(self.server_index)
            + ',"simulation":' + _json_fragment(self.sim)
            + ',"system":' + _json_fragment(self.system)
            + "}"
        )


@dataclass(frozen=True)
class SweepSpec:
    """A grid of simulations: systems x seeds x simulation-field overrides.

    ``overrides`` is an ordered mapping from an axis label to a dict of
    :class:`~repro.config.SimulationConfig` field overrides applied with
    :func:`dataclasses.replace` — e.g. ``{"load1.5": {"load_scale": 1.5}}``
    sweeps a load knob.  An empty mapping means a single unmodified axis.
    """

    systems: Mapping[str, SystemConfig]
    seeds: Sequence[int] = (2025,)
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    overrides: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    batch_job: Optional[BatchJobProfile] = None

    def __post_init__(self) -> None:
        if not self.systems:
            raise ValueError("SweepSpec needs at least one system")
        if not self.seeds:
            raise ValueError("SweepSpec needs at least one seed")
        for axis, fields in self.overrides.items():
            unknown = set(fields) - {
                f.name for f in dataclasses.fields(SimulationConfig)
            }
            if unknown:
                raise ValueError(
                    f"override axis {axis!r} sets unknown "
                    f"SimulationConfig fields {sorted(unknown)}"
                )

    def points(self) -> Iterator[SweepPoint]:
        """Enumerate the grid in deterministic order.

        Order: override axis (declaration order), then system (declaration
        order), then seed (given order).  Labels are unique and stable:
        ``"<system>/seed=<s>"`` plus ``"/<axis>"`` when an override applies.
        """
        axes: List[Tuple[str, Mapping[str, Any]]] = (
            list(self.overrides.items()) if self.overrides else [("", {})]
        )
        for axis, fields in axes:
            for name, system in self.systems.items():
                for seed in self.seeds:
                    sim = replace(self.sim, seed=seed, **dict(fields))
                    label = f"{name}/seed={seed}"
                    if axis:
                        label += f"/{axis}"
                    yield SweepPoint(
                        label=label,
                        system=system,
                        sim=sim,
                        batch_job=self.batch_job,
                    )

    def size(self) -> int:
        return (
            max(1, len(self.overrides)) * len(self.systems) * len(self.seeds)
        )
