"""Sweep enumeration: which (system, seed, config-override) points to run.

Every evaluation in the paper is a sweep — five systems x many seeds x
ablation knobs (Figures 11-19, Table 1).  A :class:`SweepSpec` describes
one such grid declaratively; :meth:`SweepSpec.points` enumerates it in a
*fixed, deterministic order* so that results can always be collected and
reported keyed by point, never by completion order.

A :class:`SweepPoint` is self-contained: it carries the full
:class:`~repro.config.SystemConfig` and :class:`~repro.config.SimulationConfig`
(plus the batch job and server index), so a worker process can execute it
from its serialized form alone, and the serialized form doubles as the
content-addressed cache key payload (see :mod:`repro.parallel.cache`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.config import SimulationConfig, SystemConfig
from repro.core.serialize import to_dict
from repro.workloads.batch import BatchJobProfile


def parse_seeds(text: str) -> Tuple[int, ...]:
    """Parse a seed set from CLI grammar.

    Accepts ``"0..7"`` (inclusive range), ``"3"``, or a comma list mixing
    both: ``"0,2,8..11"``.
    """
    seeds: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if ".." in part:
            lo_text, hi_text = part.split("..", 1)
            lo, hi = int(lo_text), int(hi_text)
            if hi < lo:
                raise ValueError(f"empty seed range {part!r}")
            seeds.extend(range(lo, hi + 1))
        else:
            seeds.append(int(part))
    if not seeds:
        raise ValueError(f"no seeds in {text!r}")
    return tuple(seeds)


@dataclass(frozen=True)
class SweepPoint:
    """One fully-specified simulation in a sweep."""

    label: str
    system: SystemConfig
    sim: SimulationConfig
    batch_job: Optional[BatchJobProfile] = None
    server_index: int = 0

    def payload(self) -> Dict[str, Any]:
        """The complete, JSON-able description of this point.

        This is everything that determines the simulation's output — it is
        both what gets shipped to a worker process and what the result
        cache hashes (combined with the package version) to form the key.
        The ``label`` is deliberately excluded: renaming a point must not
        change its identity.
        """
        return {
            "system": to_dict(self.system),
            "simulation": to_dict(self.sim),
            "batch_job": (
                dataclasses.asdict(self.batch_job)
                if self.batch_job is not None
                else None
            ),
            "server_index": self.server_index,
        }


@dataclass(frozen=True)
class SweepSpec:
    """A grid of simulations: systems x seeds x simulation-field overrides.

    ``overrides`` is an ordered mapping from an axis label to a dict of
    :class:`~repro.config.SimulationConfig` field overrides applied with
    :func:`dataclasses.replace` — e.g. ``{"load1.5": {"load_scale": 1.5}}``
    sweeps a load knob.  An empty mapping means a single unmodified axis.
    """

    systems: Mapping[str, SystemConfig]
    seeds: Sequence[int] = (2025,)
    sim: SimulationConfig = field(default_factory=SimulationConfig)
    overrides: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    batch_job: Optional[BatchJobProfile] = None

    def __post_init__(self) -> None:
        if not self.systems:
            raise ValueError("SweepSpec needs at least one system")
        if not self.seeds:
            raise ValueError("SweepSpec needs at least one seed")
        for axis, fields in self.overrides.items():
            unknown = set(fields) - {
                f.name for f in dataclasses.fields(SimulationConfig)
            }
            if unknown:
                raise ValueError(
                    f"override axis {axis!r} sets unknown "
                    f"SimulationConfig fields {sorted(unknown)}"
                )

    def points(self) -> Iterator[SweepPoint]:
        """Enumerate the grid in deterministic order.

        Order: override axis (declaration order), then system (declaration
        order), then seed (given order).  Labels are unique and stable:
        ``"<system>/seed=<s>"`` plus ``"/<axis>"`` when an override applies.
        """
        axes: List[Tuple[str, Mapping[str, Any]]] = (
            list(self.overrides.items()) if self.overrides else [("", {})]
        )
        for axis, fields in axes:
            for name, system in self.systems.items():
                for seed in self.seeds:
                    sim = replace(self.sim, seed=seed, **dict(fields))
                    label = f"{name}/seed={seed}"
                    if axis:
                        label += f"/{axis}"
                    yield SweepPoint(
                        label=label,
                        system=system,
                        sim=sim,
                        batch_job=self.batch_job,
                    )

    def size(self) -> int:
        return (
            max(1, len(self.overrides)) * len(self.systems) * len(self.seeds)
        )
