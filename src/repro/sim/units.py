"""Time and size units used throughout the simulator.

The simulation clock is an integer number of **nanoseconds**. Integer time
makes event ordering exact and runs reproducible: there is no accumulation of
floating-point error across the billions of nanoseconds a run covers.

All public APIs that accept a duration take integer nanoseconds; use these
constants to write readable call sites (``5 * MS``, ``250 * US``).
"""

from __future__ import annotations

#: One nanosecond (the base unit).
NS = 1
#: One microsecond in nanoseconds.
US = 1_000
#: One millisecond in nanoseconds.
MS = 1_000_000
#: One second in nanoseconds.
SEC = 1_000_000_000

#: Bytes per kilobyte / megabyte (binary, as used for cache sizes).
KB = 1024
MB = 1024 * 1024


def cycles_to_ns(cycles: float, freq_ghz: float) -> int:
    """Convert a cycle count at ``freq_ghz`` GHz to integer nanoseconds.

    Rounds half-up so that a 1-cycle operation at 3 GHz (0.33 ns) still
    advances time by at least zero ns but longer operations do not
    systematically under-count.
    """
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return int(round(cycles / freq_ghz))


def ns_to_cycles(ns: float, freq_ghz: float) -> float:
    """Convert nanoseconds to (fractional) cycles at ``freq_ghz`` GHz."""
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return ns * freq_ghz
