"""Discrete-event simulation engine.

This is the substrate that replaces SST's cycle-level engine in the paper's
evaluation. Events are callbacks scheduled at integer-nanosecond timestamps;
ties are broken by insertion order so runs are fully deterministic.

Typical use::

    sim = Simulator()
    sim.schedule(10 * US, lambda: print("fired at", sim.now))
    sim.run()

Components hold a reference to the simulator and schedule their own
continuations; there are no processes/coroutines, just plain callbacks, which
keeps the hot loop cheap enough for multi-second simulated horizons.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, List, Optional, Tuple

#: Environment switch selecting the pre-fast-path reference scheduler:
#: the one-event-at-a-time engine loop and the scan-based queue
#: implementations in ``hw/request_queue.py`` / ``cluster/vm.py``.
#: Results are bit-identical either way — the parity suite proves it — so
#: the slow path exists only as the baseline for
#: ``benchmarks/sched_speedup.py`` and as a live replica of the pre-PR
#: behavior.  Mirrors ``REPRO_MEM_SLOWPATH`` (``mem/cache.py``).
SCHED_SLOWPATH_ENV = "REPRO_SCHED_SLOWPATH"


def sched_slowpath_enabled() -> bool:
    """True when the reference (pre-fast-path) scheduler is requested.

    Read at *construction* time of each simulator/queue, so flipping the
    environment variable between runs in one process works.
    """
    return os.environ.get(SCHED_SLOWPATH_ENV, "") not in ("", "0")


#: Heap-compaction trigger: compact only past this many dead entries
#: (amortizes the O(n) sweep) and only when they are the majority of the
#: heap (so each sweep at least halves it).  Module-level so tests can
#: exercise compaction without scheduling hundreds of timers (override
#: per-instance via ``Simulator.compact_min_cancelled``).
COMPACT_MIN_CANCELLED = 512


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation.

    Cancellation is lazy: the event stays in the heap but is skipped when it
    reaches the front. This is O(1) and is the standard approach for
    calendar queues with rare cancellations.

    Handles double as cancellable timers (deadline timers, fault windows):
    :attr:`active` says whether the event can still fire, which lets
    bookkeeping code drop stale handles without tracking fire state itself.
    Cancelling from *within* another event at the same timestamp is safe —
    the cancelled event is skipped even though it is already in the heap's
    front region.
    """

    __slots__ = ("time", "cancelled", "fired", "_fn", "_args", "_sim")

    def __init__(
        self,
        time: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.cancelled = False
        self.fired = False
        self._fn = fn
        self._args = args
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call multiple times,
        including after the event already fired (then a no-op)."""
        if self.cancelled:
            return
        self.cancelled = True
        if not self.fired and self._sim is not None:
            self._sim._note_cancelled()

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not cancelled)."""
        return not self.cancelled and not self.fired

    def fire(self) -> None:
        self.fired = True
        self._fn(*self._args)


class Simulator:
    """A deterministic discrete-event simulator with an integer-ns clock."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Tuple[int, int, EventHandle]] = []
        self._seq = 0
        self._events_fired = 0
        self._running = False
        self._stop_requested = False
        #: Instance-level compaction trigger (tests lower it to exercise
        #: compaction cheaply; see module constant for the rationale).
        self.compact_min_cancelled = COMPACT_MIN_CANCELLED
        #: Fast/slow run-loop choice, made once at construction like the
        #: memory hierarchy's ``slowpath_enabled`` — the batched drain and
        #: the reference loop fire the same events in the same order.
        self._batched_run = not sched_slowpath_enabled()
        # Observation-only probe callbacks (telemetry). They live in a side
        # heap with their own sequence counter, so scheduling a probe never
        # touches ``_seq`` — the tie-breaking order, heap contents, and
        # ``pending_events`` of the *simulation* are bit-identical whether
        # probes exist or not.
        self._probes: List[Tuple[int, int, Callable[[], Any]]] = []
        self._probe_seq = 0
        # Cancelled-but-unpopped events currently sitting in the heap.
        # Tracked so ``pending_live_events`` is O(1) and so a
        # cancellation-heavy workload (deadline timers, fault windows)
        # triggers compaction instead of dragging dead weight through
        # every subsequent heap operation.
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now.

        ``delay`` must be a non-negative integer. Returns a handle that can
        cancel the event before it fires.
        """
        # Inlined schedule_at: this is the hottest scheduling entry point,
        # and delay >= 0 implies time >= now, so the past-check reduces to
        # a sign check on the delay.
        time = self.now + int(delay)
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: delay={delay} < 0")
        handle = EventHandle(time, fn, args, self)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle))
        return handle

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulation time ``time`` ns."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: t={time} < now={self.now}"
            )
        handle = EventHandle(time, fn, args, self)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle))
        return handle

    def schedule_probe(self, time: int, fn: Callable[[], Any]) -> None:
        """Schedule an observation-only callback at absolute time ``time``.

        Probes are the telemetry hook point: they fire in timestamp order
        interleaved with simulation events, but they are invisible to the
        simulation — they do not count toward ``max_events`` or
        :attr:`pending_events`, and they never consume a ``_seq`` slot, so
        tie-breaking among real events is unaffected. The contract is that
        a probe only *reads* simulator/component state (and may schedule
        the next probe); a probe that mutates state voids the
        telemetry-off/on bit-identity guarantee.

        A probe pending after the last simulation event simply never fires
        (the run is over); this is what bounds self-rescheduling probes.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule a probe in the past: t={time} < now={self.now}"
            )
        self._probe_seq += 1
        heapq.heappush(self._probes, (time, self._probe_seq, fn))

    def _fire_probes_until(self, time: int) -> None:
        """Fire every pending probe with timestamp <= ``time``."""
        while self._probes and self._probes[0][0] <= time:
            ptime, _pseq, pfn = heapq.heappop(self._probes)
            if ptime > self.now:
                self.now = ptime
            pfn()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events in timestamp order.

        Stops when the event heap is empty, when the next event is past
        ``until`` (clock is then advanced to ``until``), after
        ``max_events`` events, or when an event calls :meth:`stop`.
        Returns the number of events fired.

        Two implementations, selected at construction
        (``REPRO_SCHED_SLOWPATH=1`` keeps the reference): the fast path
        drains every event sharing a timestamp in one inner loop — the
        clock, the probe side-heap, and the ``until`` bound are consulted
        once per *timestamp batch* instead of once per event.  Pop order is
        the heap's ``(time, seq)`` order either way, so firing order (and
        therefore every simulation result) is bit-identical.
        """
        if self._batched_run:
            return self._run_batched(until, max_events)
        return self._run_reference(until, max_events)

    def _run_reference(
        self, until: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        """The kept pre-fast-path loop: one event per iteration."""
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        fired = 0
        # Hoisted locals: this loop runs once per event over multi-second
        # horizons, so each attribute lookup shaved here is millions saved.
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap and not self._stop_requested:
                time, _seq, handle = heap[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                if handle.cancelled:
                    self._cancelled_pending -= 1
                    continue
                if self._probes:
                    self._fire_probes_until(time)
                self.now = time
                handle.fire()
                fired += 1
                self._events_fired += 1
                if max_events is not None and fired >= max_events:
                    break
            if until is not None and self.now < until and not self._stop_requested:
                if self._probes:
                    self._fire_probes_until(until)
                self.now = until
        finally:
            self._running = False
        return fired

    def _run_batched(
        self, until: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        """Batched drain: apply every event stamped ``t`` before re-reading
        the clock or the side-heap.

        Invariants that keep this bit-identical to the reference loop:

        * cancelled *head* entries are skipped without advancing ``now``
          (a heap tail of dead timers must not move the clock);
        * probes fire once per timestamp batch, before its first live
          event — between batches they observe exactly the state the
          reference loop would have shown them, because only live events
          mutate state;
        * an event scheduled at the current timestamp from within the
          batch (``delay=0``) carries a higher ``seq`` and is picked up by
          the same drain, exactly where the reference loop would pop it;
        * ``stop()`` and ``max_events`` are honored between events inside
          a batch, not just between batches.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        fired = 0
        base_fired = self._events_fired
        heap = self._heap
        heappop = heapq.heappop
        done = False
        try:
            while heap and not done:
                time, _seq, handle = heap[0]
                if until is not None and time > until:
                    break
                if handle.cancelled:
                    heappop(heap)
                    self._cancelled_pending -= 1
                    continue
                if self._probes:
                    self._fire_probes_until(time)
                self.now = time
                # Drain every entry stamped `time`.  The heap local stays
                # valid across mid-batch compaction (`_compact` rewrites
                # the list in place), and `heap[0]` is re-read every
                # iteration so newly scheduled same-timestamp events join
                # the batch in seq order.
                while True:
                    heappop(heap)
                    if handle.cancelled:
                        self._cancelled_pending -= 1
                    else:
                        handle.fired = True
                        handle._fn(*handle._args)
                        fired += 1
                        if self._stop_requested or (
                            max_events is not None and fired >= max_events
                        ):
                            done = True
                            break
                    if not heap or heap[0][0] != time:
                        break
                    handle = heap[0][2]
                # Fold the batch's count back at the barrier so probes (and
                # anything else reading between batches) see a live total.
                self._events_fired = base_fired + fired
            if until is not None and self.now < until and not self._stop_requested:
                if self._probes:
                    self._fire_probes_until(until)
                self.now = until
        finally:
            self._events_fired = base_fired + fired
            self._running = False
        return fired

    def stop(self) -> None:
        """Request that the current :meth:`run` return after this event."""
        self._stop_requested = True

    def peek_next_time(self) -> Optional[int]:
        """Timestamp of the next pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_pending -= 1
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------------------
    # Cancellation accounting
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """A pending event was cancelled (called by its handle)."""
        n = self._cancelled_pending + 1
        self._cancelled_pending = n
        if n > self.compact_min_cancelled and 2 * n > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the heap.

        In-place (slice assignment + heapify) so that a ``run()`` loop
        holding a reference to the heap list keeps seeing the live queue.
        Firing order is untouched: entries keep their (time, seq) keys and
        cancelled events never fire anyway.
        """
        self._heap[:] = [e for e in self._heap if not e[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0

    @property
    def pending_events(self) -> int:
        """Number of scheduled events not yet fired (including cancelled).

        Probes are deliberately excluded: run loops that drain the heap
        must behave identically with and without telemetry attached.
        """
        return len(self._heap)

    @property
    def pending_live_events(self) -> int:
        """Number of pending events that can still fire (cancelled excluded).

        O(1): maintained by cancellation accounting rather than a heap scan.
        This is the right predicate for "is there work left" checks — a heap
        holding only cancelled timers is already drained.
        """
        return len(self._heap) - self._cancelled_pending

    @property
    def pending_probes(self) -> int:
        """Number of scheduled observation probes not yet fired."""
        return len(self._probes)

    @property
    def events_fired(self) -> int:
        """Total number of events executed since construction."""
        return self._events_fired
