"""Deterministic, named random-number streams.

Every stochastic component in the simulator (arrival processes, service-time
draws, footprint samplers, trace synthesis) pulls from its own named
substream so that:

* runs are reproducible given a master seed;
* adding a new consumer does not perturb the draws seen by existing ones
  (streams are independent, not interleaved);
* two systems under comparison (e.g. NoHarvest vs HardHarvest) can be driven
  by identical workload randomness while their internal randomness differs.

Streams are derived from the master seed and the stream name via
``numpy.random.SeedSequence`` with a stable hash of the name as spawn key.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


def _name_key(name: str) -> int:
    """Stable 32-bit key for a stream name (crc32; stable across runs)."""
    return zlib.crc32(name.encode("utf-8"))


#: Prime stride separating per-server seed spaces.  Documented as part of
#: the determinism contract: a server's entire RNG universe is a pure
#: function of ``(root seed, server_index)``, so any process — the serial
#: loop, a pool worker, a cluster-scale shard — reconstructs identical
#: streams from the config alone.
SERVER_SEED_STRIDE = 7919


def derive_server_seed(root_seed: int, server_index: int) -> int:
    """Seed for one simulated server's :class:`RngRegistry`.

    ``root_seed + SERVER_SEED_STRIDE * server_index`` — the historical
    formula used by :class:`repro.cluster.server.ServerSimulation` since
    the first release, now named so the cluster-scale sharding layer and
    the per-server engine provably agree on it.
    """
    return root_seed + SERVER_SEED_STRIDE * server_index


def derive_epoch_seed(root_seed: int, epoch: int) -> int:
    """Root seed for one epoch of a cluster-scale run.

    Epoch 0 is the *identity* (a one-epoch cluster-scale run reproduces
    the legacy :func:`repro.core.experiment.run_cluster` results
    bit-for-bit).  Later epochs re-key through
    :class:`numpy.random.SeedSequence` so each epoch draws fresh workload
    randomness that is still a pure function of ``(root seed, epoch)`` —
    independent of worker count, shard layout, and wall clock.
    """
    if epoch < 0:
        raise ValueError(f"epoch must be non-negative, got {epoch}")
    if epoch == 0:
        return root_seed
    seq = np.random.SeedSequence(
        entropy=root_seed, spawn_key=(_name_key("cluster_scale.epoch"), epoch)
    )
    return int(seq.generate_state(1, dtype=np.uint64)[0])


class RngRegistry:
    """Factory for named, independent ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object
        (so draws continue where they left off).
        """
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(_name_key(name),))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, restarting its sequence."""
        self._streams.pop(name, None)
        return self.stream(name)

    def __contains__(self, name: str) -> bool:
        return name in self._streams
