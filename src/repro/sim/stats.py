"""Measurement primitives: latency recorders, time-weighted utilization,
counters, and per-request breakdowns.

These replace the measurement side of the paper's harness: P50/P99 request
latency of Primary VMs, Harvest VM throughput, average busy cores, and the
per-request time breakdown of Figure 6.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

import numpy as np


class LatencyRecorder:
    """Accumulates latency samples (ns) and reports percentiles.

    Keeps all samples; experiment sizes here (10^4..10^5 requests) make that
    cheap, and exact percentiles beat sketch error for P99 comparisons.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: List[int] = []

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self._samples.append(latency_ns)

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        """Exact percentile (linear interpolation), ns. Requires samples."""
        if not self._samples:
            raise ValueError(f"no samples recorded in {self.name or 'recorder'}")
        return float(np.percentile(np.asarray(self._samples), p))

    def p50(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"no samples recorded in {self.name or 'recorder'}")
        return float(np.mean(self._samples))

    def max(self) -> int:
        if not self._samples:
            raise ValueError(f"no samples recorded in {self.name or 'recorder'}")
        return max(self._samples)

    def samples(self) -> np.ndarray:
        return np.asarray(self._samples, dtype=np.int64)


class UtilizationTracker:
    """Time-weighted tracking of how many units (cores) are busy.

    Components call :meth:`set_busy` on every transition; the tracker
    integrates ``busy_count`` over time. ``average(horizon)`` divides the
    integral by the horizon to give mean busy cores — the §6.7 metric.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._busy = 0
        self._last_time = 0
        self._integral = 0.0  # busy-count * ns

    @property
    def busy(self) -> int:
        return self._busy

    def set_busy(self, now: int, busy_count: int) -> None:
        """Record that from ``now`` onward, ``busy_count`` units are busy."""
        if not 0 <= busy_count <= self.capacity:
            raise ValueError(
                f"busy_count {busy_count} outside [0, {self.capacity}]"
            )
        if now < self._last_time:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        self._integral += self._busy * (now - self._last_time)
        self._last_time = now
        self._busy = busy_count

    def adjust(self, now: int, delta: int) -> None:
        """Convenience: change the busy count by ``delta`` at time ``now``."""
        self.set_busy(now, self._busy + delta)

    def average_busy(self, horizon: int) -> float:
        """Mean number of busy units over ``[0, horizon]`` ns."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        integral = self._integral + self._busy * max(0, horizon - self._last_time)
        return integral / horizon

    def average_utilization(self, horizon: int) -> float:
        """Mean fraction of capacity busy over ``[0, horizon]``."""
        return self.average_busy(horizon) / self.capacity


@dataclass
class Breakdown:
    """Per-request time breakdown (Figure 6): where did the time go?"""

    reassign_ns: int = 0
    flush_ns: int = 0
    execution_ns: int = 0
    queueing_ns: int = 0

    def total(self) -> int:
        return self.reassign_ns + self.flush_ns + self.execution_ns + self.queueing_ns

    def add(self, other: "Breakdown") -> None:
        self.reassign_ns += other.reassign_ns
        self.flush_ns += other.flush_ns
        self.execution_ns += other.execution_ns
        self.queueing_ns += other.queueing_ns


class BreakdownRecorder:
    """Aggregates :class:`Breakdown` records, e.g. per service."""

    def __init__(self) -> None:
        self._totals: Dict[str, Breakdown] = defaultdict(Breakdown)
        self._counts: Dict[str, int] = defaultdict(int)

    def record(self, key: str, breakdown: Breakdown) -> None:
        self._totals[key].add(breakdown)
        self._counts[key] += 1

    def mean(self, key: str) -> Breakdown:
        n = self._counts.get(key, 0)
        if n == 0:
            raise KeyError(f"no breakdowns recorded for {key!r}")
        t = self._totals[key]
        return Breakdown(
            reassign_ns=t.reassign_ns // n,
            flush_ns=t.flush_ns // n,
            execution_ns=t.execution_ns // n,
            queueing_ns=t.queueing_ns // n,
        )

    def keys(self) -> List[str]:
        return sorted(self._totals)


class Counter:
    """A named bag of monotonically increasing event counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def incr(self, name: str, by: int = 1) -> None:
        if by < 0:
            raise ValueError(f"counter increments must be non-negative, got {by}")
        self._counts[name] += by

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def get(self, name: str, default: int = 0) -> int:
        return self._counts.get(name, default)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)
