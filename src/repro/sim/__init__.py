"""Simulation substrate: event engine, RNG streams, units, statistics."""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.rng import RngRegistry
from repro.sim.stats import (
    Breakdown,
    BreakdownRecorder,
    Counter,
    LatencyRecorder,
    UtilizationTracker,
)
from repro.sim.units import KB, MB, MS, NS, SEC, US, cycles_to_ns, ns_to_cycles

__all__ = [
    "Simulator",
    "EventHandle",
    "RngRegistry",
    "LatencyRecorder",
    "UtilizationTracker",
    "Breakdown",
    "BreakdownRecorder",
    "Counter",
    "NS",
    "US",
    "MS",
    "SEC",
    "KB",
    "MB",
    "cycles_to_ns",
    "ns_to_cycles",
]
