"""Simulation-as-a-service: an async HTTP job API over the runners.

Submit a :class:`~repro.config.SimulationConfig` sweep or a
:class:`~repro.cluster_scale.spec.ClusterScaleConfig` run as JSON, get a
content-addressed job id back, poll it, download the result (digest-
identical to the CLI on the same config) and the Perfetto trace, scrape
Prometheus metrics.  ``python -m repro serve`` starts it; see
``docs/api.md`` for the endpoint contract.

* :mod:`repro.service.spec` — request parsing/validation + job identity;
* :mod:`repro.service.jobs` — persistent records, store, JobManager;
* :mod:`repro.service.executor` — bridges claimed jobs onto the runners;
* :mod:`repro.service.metrics` — Prometheus text exposition;
* :mod:`repro.service.http` — asyncio front end + graceful shutdown;
* :mod:`repro.service.client` — stdlib client used by tests and CI.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.http import JobService, ServiceHandle, start_in_thread
from repro.service.jobs import (
    JobManager,
    JobRecord,
    JobStore,
    QueueFullError,
    prune_job_records,
)
from repro.service.spec import (
    JobRequest,
    JobValidationError,
    job_content_id,
    parse_job_request,
    validate_simulation,
)

__all__ = [
    "JobManager",
    "JobRecord",
    "JobRequest",
    "JobService",
    "JobStore",
    "JobValidationError",
    "QueueFullError",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "job_content_id",
    "parse_job_request",
    "prune_job_records",
    "start_in_thread",
    "validate_simulation",
]
