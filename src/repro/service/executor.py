"""Job execution: bridge one claimed job onto the hardened runners.

This is plain synchronous code — the HTTP layer runs it on a worker
thread so the event loop never blocks.  Each job gets its *own*
:class:`ResultCache` instance over the shared cache root: the on-disk
store is concurrency-safe (atomic writes, content-addressed), but the
per-instance hit/miss counters are not, so per-job instances keep the
numbers exact and :meth:`JobManager.fold_cache_stats` aggregates them.

The result payload written for a sweep job carries the exact digest
``python -m repro sweep --stats-json`` reports
(:func:`repro.core.export.sweep_results_digest`); a cluster job carries
``ClusterScaleResult.digest()``, the same value ``python -m repro
cluster`` prints.  Digest equality across the service and CLI paths is
therefore equality *by construction*, and the tests/CI gate verify it
end to end.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.parallel.cache import ResultCache
from repro.service.jobs import JobRecord, JobStore
from repro.service.spec import JobRequest


def _telemetry_enabled(request: JobRequest) -> bool:
    return request.sim.telemetry is not None and request.sim.telemetry.enabled


def _export_trace(request: JobRequest, store: JobStore, job_id: str) -> int:
    """Re-run the job's first point with the live-object API and write a
    Perfetto trace next to the result.

    Telemetry is zero-perturbation (results are bit-identical on/off),
    so this extra serial run costs wall time but cannot change what the
    job returns; it exists because the process-pool runners only ship
    serialized results back, never live tracer objects.
    """
    from repro.core.experiment import run_server_raw
    from repro.telemetry.export import write_perfetto_json

    if request.kind == "sweep":
        point = request.points()[0]
        sim = run_server_raw(
            point.system, point.sim, batch_job=point.batch_job,
            server_index=point.server_index,
        )
    else:
        sim = run_server_raw(request.cluster_system(), request.sim)
    vm_names = {vm.vm_id: vm.name for vm in sim.primary_vms}
    for hvm in sim.harvest_vms:
        vm_names[hvm.vm_id] = hvm.name
    return write_perfetto_json(
        store.trace_path(job_id), sim.tracer.events(), vm_names, len(sim.cores)
    )


def _run_sweep_job(
    request: JobRequest,
    cache: Optional[ResultCache],
    progress: Callable[[str], None],
) -> Dict[str, Any]:
    from repro.core.export import server_result_to_dict, sweep_results_digest
    from repro.parallel.runner import run_sweep

    points = request.points()
    progress(f"sweep: {len(points)} point(s), workers={request.workers}")
    outcome = run_sweep(
        points, workers=request.workers, cache=cache, quarantine=False
    )
    return {
        "kind": "sweep",
        "digest": sweep_results_digest(outcome.results),
        "points": len(points),
        "computed": outcome.computed,
        "from_cache": outcome.from_cache,
        "retried": outcome.retried,
        "elapsed_s": outcome.elapsed_s,
        "results": {
            label: server_result_to_dict(r)
            for label, r in outcome.results.items()
        },
    }


def _run_cluster_job(
    request: JobRequest,
    cache: Optional[ResultCache],
    progress: Callable[[str], None],
) -> Dict[str, Any]:
    from repro.cluster_scale.runner import run_cluster_scale

    cfg = request.cluster
    started = time.monotonic()
    result = run_cluster_scale(
        request.cluster_system(),
        sim=request.sim,
        cfg=cfg,
        workers=request.workers,
        cache=cache,
        progress=progress,
    )
    return {
        "kind": "cluster",
        "digest": result.digest(),
        "servers": cfg.servers,
        "epochs": cfg.epochs,
        "summary": result.summary_dict(),
        "resilience_curve": result.resilience_curve(),
        "elapsed_s": time.monotonic() - started,
        "result": result.to_dict(),
    }


def execute_job(
    record: JobRecord,
    request: JobRequest,
    store: JobStore,
    cache_root: Optional[str],
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run one claimed job to completion; persist result (and trace).

    Returns a small summary for the metrics endpoint:
    ``{"digest", "kind", "elapsed_s", "avg_p99_ms", "avg_busy_cores",
    "trace_events", "cache_stats"}``.  Exceptions propagate to the
    caller, which marks the job failed.
    """
    notify = progress or (lambda message: None)
    cache = ResultCache(root=cache_root) if cache_root is not None else None
    if request.kind == "sweep":
        payload = _run_sweep_job(request, cache, notify)
        results = payload["results"]
        p99s = [
            p99 for r in results.values() for p99 in r["p99_ms"].values()
        ]
        avg_p99 = sum(p99s) / len(p99s) if p99s else 0.0
        busy = [r["avg_busy_cores"] for r in results.values()]
        avg_busy = sum(busy) / len(busy) if busy else 0.0
    else:
        payload = _run_cluster_job(request, cache, notify)
        avg_p99 = payload["summary"]["avg_p99_ms"]
        avg_busy = payload["summary"]["avg_busy_cores"]

    trace_events = 0
    if _telemetry_enabled(request):
        notify("exporting telemetry trace")
        trace_events = _export_trace(request, store, record.job_id)
    payload["trace_events"] = trace_events
    store.write_result(record.job_id, payload)
    return {
        "digest": payload["digest"],
        "kind": payload["kind"],
        "elapsed_s": payload["elapsed_s"],
        "avg_p99_ms": avg_p99,
        "avg_busy_cores": avg_busy,
        "trace_events": trace_events,
        "cache_stats": cache.stats if cache is not None else None,
    }
