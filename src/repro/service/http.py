"""The asyncio HTTP front end: routing, worker pool, graceful shutdown.

Stdlib only — a deliberately small HTTP/1.1 server over
:func:`asyncio.start_server` (request line + headers + Content-Length
body, ``Connection: close``), because the service's API surface is six
routes and a framework dependency would break the no-new-hard-deps rule.

Concurrency model
-----------------

* The event loop owns sockets and routing; it never simulates.
* ``service_workers`` asyncio tasks drain an :class:`asyncio.Queue` of
  job ids.  Each claimed job runs :func:`~repro.service.executor
  .execute_job` on a *daemon* thread, signalled back to the loop with an
  :class:`asyncio.Event` — daemon threads (rather than a
  ThreadPoolExecutor) so that when the shutdown grace period expires the
  process can actually exit instead of joining a stuck simulation.
* ``service_workers=0`` is a valid degenerate service: jobs queue and
  persist but nothing executes — the tests use it to freeze jobs in the
  ``queued`` state.

Graceful shutdown (SIGTERM/SIGINT): stop accepting new submissions
(503), let in-flight jobs finish within ``grace_s`` seconds, then mark
everything unfinished ``queued`` on disk so the next process resumes it
(:meth:`JobManager.requeue_unfinished` / :meth:`JobManager.recover`).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Any, Dict, Optional, Tuple

from repro.parallel.cache import DEFAULT_CACHE_DIR
from repro.service.executor import execute_job
from repro.service.jobs import JobManager, JobStore, QueueFullError
from repro.service.metrics import MetricsRegistry
from repro.service.spec import JobValidationError

#: Refuse request bodies larger than this (a config is a few KB).
MAX_BODY_BYTES = 4 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK", 201: "Created", 202: "Accepted", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class JobService:
    """One service instance: manager + store + metrics + asyncio server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8023,
        cache_dir: str = DEFAULT_CACHE_DIR,
        cache: bool = True,
        max_queue: int = 64,
        service_workers: int = 2,
        grace_s: float = 30.0,
        quiet: bool = False,
        job_ttl_s: Optional[float] = None,
    ):
        self.host = host
        self.port = port
        self.cache_root = cache_dir if cache else None
        self.store = JobStore(cache_dir)
        self.manager = JobManager(self.store, max_queue=max_queue)
        self.service_workers = service_workers
        self.grace_s = grace_s
        self.quiet = quiet
        #: Terminal job records older than this are evicted periodically
        #: (record + .result/.trace files); None disables eviction.
        self.job_ttl_s = job_ttl_s
        self.metrics = MetricsRegistry(self.manager, service_workers)
        self._queue: "asyncio.Queue[str]" = asyncio.Queue()
        self._draining = False
        self._stopped = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._worker_tasks: list = []
        self.bound_port: Optional[int] = None

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[repro.serve] {message}", flush=True)

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind, recover persisted jobs, and launch the worker pool."""
        resumed = self.manager.recover()
        for job_id in resumed:
            self._queue.put_nowait(job_id)
        if resumed:
            self._log(f"resumed {len(resumed)} persisted job(s)")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self._worker_tasks = [
            asyncio.ensure_future(self._worker_loop(i))
            for i in range(self.service_workers)
        ]
        if self.job_ttl_s is not None:
            # Rides in _worker_tasks so shutdown's cancel sweep stops it.
            self._worker_tasks.append(
                asyncio.ensure_future(self._evict_loop())
            )
        self._log(
            f"listening on http://{self.host}:{self.bound_port} "
            f"(workers={self.service_workers}, "
            f"cache={'on' if self.cache_root else 'off'}"
            + (
                f", job_ttl={self.job_ttl_s:.0f}s"
                if self.job_ttl_s is not None
                else ""
            )
            + ")"
        )

    async def shutdown(self, grace_s: Optional[float] = None) -> None:
        """Drain in-flight jobs, requeue the rest, release the socket."""
        if self._draining:
            return
        self._draining = True
        grace = self.grace_s if grace_s is None else grace_s
        self._log(f"shutting down (grace {grace:.0f}s)")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = asyncio.get_event_loop().time() + grace
        while (
            self.metrics.busy_workers > 0
            and asyncio.get_event_loop().time() < deadline
        ):
            await asyncio.sleep(0.05)
        for task in self._worker_tasks:
            task.cancel()
        for task in self._worker_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        requeued = self.manager.requeue_unfinished()
        if requeued:
            self._log(
                f"requeued {len(requeued)} unfinished job(s) for the next run"
            )
        self._stopped.set()

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    def run(self) -> None:
        """Blocking entry point used by ``python -m repro serve``."""
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start())

            def _signal(signum):
                self._log(f"received {signal.Signals(signum).name}")
                asyncio.ensure_future(self.shutdown())

            try:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    loop.add_signal_handler(signum, _signal, signum)
            except NotImplementedError:  # non-Unix event loops
                for signum in (signal.SIGTERM, signal.SIGINT):
                    signal.signal(
                        signum,
                        lambda s, f: loop.call_soon_threadsafe(_signal, s),
                    )
            loop.run_until_complete(self.serve_forever())
        finally:
            loop.close()

    # -- TTL eviction --------------------------------------------------
    async def _evict_loop(self) -> None:
        """Periodically drop terminal job records past their TTL.

        The interval is ttl/2 clamped to [1s, 60s] — frequent enough
        that nothing outlives ~1.5 TTLs, cheap enough to never matter.
        """
        interval = max(1.0, min(self.job_ttl_s / 2.0, 60.0))
        while True:
            await asyncio.sleep(interval)
            evicted = self.manager.evict_expired(self.job_ttl_s)
            if evicted:
                self._log(
                    f"evicted {len(evicted)} job record(s) past "
                    f"{self.job_ttl_s:.0f}s TTL"
                )

    # -- worker pool ---------------------------------------------------
    async def _worker_loop(self, slot: int) -> None:
        loop = asyncio.get_event_loop()
        while True:
            job_id = await self._queue.get()
            self.manager.pop_pending()
            claimed = self.manager.claim(job_id)
            if claimed is None:
                continue
            record, request = claimed
            self.metrics.busy_workers += 1
            done = asyncio.Event()
            outcome: Dict[str, Any] = {}

            def _run(record=record, request=request, outcome=outcome, done=done):
                try:
                    outcome["summary"] = execute_job(
                        record,
                        request,
                        self.store,
                        self.cache_root,
                        progress=lambda m: self.manager.set_progress(
                            record.job_id, m
                        ),
                    )
                except BaseException as exc:  # noqa: BLE001 - job isolation
                    outcome["error"] = f"{type(exc).__name__}: {exc}"
                finally:
                    loop.call_soon_threadsafe(done.set)

            thread = threading.Thread(
                target=_run, name=f"repro-job-{slot}", daemon=True
            )
            thread.start()
            try:
                await done.wait()
            finally:
                self.metrics.busy_workers -= 1
            if "summary" in outcome:
                summary = outcome["summary"]
                if summary["cache_stats"] is not None:
                    self.manager.fold_cache_stats(summary["cache_stats"])
                self.manager.finish(record.job_id, summary["digest"])
                self.metrics.last_job = summary
                self._log(
                    f"job {record.job_id[:12]} done "
                    f"({summary['kind']}, {summary['elapsed_s']:.2f}s)"
                )
            else:
                self.manager.fail(record.job_id, outcome["error"])
                self._log(f"job {record.job_id[:12]} failed: {outcome['error']}")

    # -- HTTP plumbing -------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            status, headers, body = await self._handle_request(reader)
        except Exception as exc:  # noqa: BLE001 - connection isolation
            status = 500
            headers = {"Content-Type": "application/json"}
            body = json.dumps({"error": f"internal error: {exc}"}).encode()
        try:
            head = (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            )
            headers.setdefault("Content-Type", "application/json")
            headers["Content-Length"] = str(len(body))
            headers["Connection"] = "close"
            for key, value in headers.items():
                head += f"{key}: {value}\r\n"
            writer.write(head.encode("latin-1") + b"\r\n" + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _handle_request(
        self, reader
    ) -> Tuple[int, Dict[str, str], bytes]:
        request_line = await reader.readline()
        if not request_line:
            return 400, {}, b'{"error": "empty request"}'
        try:
            method, target, _ = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            return 400, {}, b'{"error": "malformed request line"}'
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {}, b'{"error": "bad Content-Length"}'
        if content_length > MAX_BODY_BYTES:
            return 413, {}, b'{"error": "body too large"}'
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return self._route(method, target.split("?", 1)[0], body)

    # -- routes --------------------------------------------------------
    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, str], bytes]:
        def reply(status: int, payload: Any) -> Tuple[int, Dict[str, str], bytes]:
            return status, {}, (json.dumps(payload, indent=2) + "\n").encode()

        if path == "/healthz":
            if method != "GET":
                return reply(405, {"error": "method not allowed"})
            return reply(
                200,
                {
                    "status": "draining" if self._draining else "ok",
                    "queue_depth": self.manager.queue_depth(),
                },
            )
        if path == "/metrics":
            if method != "GET":
                return reply(405, {"error": "method not allowed"})
            return (
                200,
                {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
                self.metrics.render().encode("utf-8"),
            )
        if path == "/jobs":
            if method != "POST":
                return reply(405, {"error": "method not allowed"})
            return self._post_job(body, reply)
        if path.startswith("/jobs/"):
            if method != "GET":
                return reply(405, {"error": "method not allowed"})
            rest = path[len("/jobs/"):]
            job_id, _, sub = rest.partition("/")
            record = self.manager.get(job_id)
            if record is None:
                return reply(404, {"error": f"unknown job {job_id!r}"})
            if sub == "":
                return reply(200, record.status_dict())
            if sub == "result":
                return self._get_result(record, reply)
            if sub == "trace":
                return self._get_trace(record, reply)
            return reply(404, {"error": f"unknown sub-resource {sub!r}"})
        return reply(404, {"error": f"no route for {path!r}"})

    def _post_job(self, body: bytes, reply):
        if self._draining:
            return reply(503, {"error": "service is draining"})
        try:
            parsed = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as exc:
            return reply(400, {"error": f"body is not valid JSON: {exc}"})
        try:
            record, created = self.manager.submit(parsed)
        except JobValidationError as exc:
            return reply(400, {"error": str(exc), "field": exc.field})
        except QueueFullError as exc:
            return reply(429, {"error": str(exc)})
        if created:
            self._queue.put_nowait(record.job_id)
        return reply(
            201 if created else 200,
            {**record.status_dict(), "created": created},
        )

    def _get_result(self, record, reply):
        if record.state == "failed":
            return reply(409, {"error": record.error, "state": "failed"})
        if record.state != "done":
            return reply(
                202, {"state": record.state, "progress": record.progress}
            )
        payload = self.store.read_result(record.job_id)
        if payload is None:
            return reply(
                500, {"error": "result file missing or corrupt"}
            )
        return reply(200, payload)

    def _get_trace(self, record, reply):
        import os

        if record.state != "done":
            return reply(
                202 if record.state in ("queued", "running") else 409,
                {"state": record.state, "error": record.error},
            )
        path = self.store.trace_path(record.job_id)
        if not os.path.exists(path):
            return reply(
                404,
                {
                    "error": "no trace for this job "
                             "(submit with simulation.telemetry.enabled=true)"
                },
            )
        with open(path, "rb") as fh:
            return 200, {"Content-Type": "application/json"}, fh.read()


class ServiceHandle:
    """A started-in-thread service, for tests: ``port`` + ``stop()``."""

    def __init__(self, service: JobService, loop, thread):
        self.service = service
        self.port = service.bound_port
        self._loop = loop
        self._thread = thread

    def stop(self, grace_s: float = 10.0) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(grace_s), self._loop
        )
        future.result(timeout=grace_s + 30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()


def start_in_thread(**kwargs) -> ServiceHandle:
    """Start a :class:`JobService` on a daemon thread; returns once the
    socket is bound.  ``port=0`` picks an ephemeral port (read it off
    the returned handle)."""
    kwargs.setdefault("port", 0)
    kwargs.setdefault("quiet", True)
    loop = asyncio.new_event_loop()
    service = JobService(**kwargs)
    started = threading.Event()

    def _run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(service.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("service failed to start within 30s")
    return ServiceHandle(service, loop, thread)
