"""Minimal blocking client for the job service (stdlib ``http.client``).

Used by the tests, the CI smoke scripts, and anything that wants to
drive a running ``python -m repro serve`` without hand-rolling HTTP.
Raises :class:`ServiceError` (carrying the status code and decoded error
body) for any non-2xx response, except where a status is part of the
protocol (``wait`` polls through 202s).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, body: Any):
        self.status = status
        self.body = body
        message = body.get("error") if isinstance(body, dict) else str(body)
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """One service endpoint; a fresh connection per call (the server is
    ``Connection: close``)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8023,
                 timeout_s: float = 60.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- plumbing ------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            conn.request(
                method, path, body=payload,
                headers={"Content-Type": "application/json"} if payload else {},
            )
            response = conn.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if "json" in content_type:
                decoded: Any = json.loads(raw.decode("utf-8"))
            else:
                decoded = raw.decode("utf-8")
            return response.status, decoded
        finally:
            conn.close()

    def _checked(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 ok=(200, 201, 202)) -> Any:
        status, decoded = self._request(method, path, body)
        if status not in ok:
            raise ServiceError(status, decoded)
        return decoded

    # -- API -----------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._checked("GET", "/healthz")

    def metrics(self) -> str:
        return self._checked("GET", "/metrics")

    def submit(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """POST /jobs; returns the job status dict (with ``created``)."""
        return self._checked("POST", "/jobs", body=job, ok=(200, 201))

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._checked("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        """GET the result payload; raises if the job is not ``done``."""
        return self._checked("GET", f"/jobs/{job_id}/result", ok=(200,))

    def trace(self, job_id: str) -> str:
        """GET the Perfetto trace JSON text."""
        status, decoded = self._request("GET", f"/jobs/{job_id}/trace")
        if status != 200:
            raise ServiceError(status, decoded)
        return decoded if isinstance(decoded, str) else json.dumps(decoded)

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.2) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; return its status.

        Raises :class:`TimeoutError` if it does not settle in time and
        :class:`ServiceError` if it settles on ``failed``.
        """
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            status = self.status(job_id)
            if status["state"] == "done":
                return status
            if status["state"] == "failed":
                raise ServiceError(409, {"error": status["error"]})
            time.sleep(poll_s)
        raise TimeoutError(
            f"job {job_id} not done within {timeout_s}s "
            f"(last state: {status['state']})"
        )
