"""Prometheus text-format exposition for ``GET /metrics``.

Hand-rendered (stdlib only), following the exposition format spec:
``# HELP`` / ``# TYPE`` per family, then ``name{labels} value`` samples.
Families:

* ``repro_service_*`` — queue depth, jobs by state, submission /
  dedupe / rejection / completion counters, worker utilization, uptime;
* ``repro_cache_*`` — ResultCache hits/misses/stores/invalidations
  accumulated across every job the service has run;
* ``repro_last_job_*`` / ``repro_probe_*`` — gauges from the most
  recently completed job (wall time, mean p99, busy cores, telemetry
  trace-event count), the hook learned-policy consumers poll.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

import repro
from repro.service.jobs import JOB_STATES, JobManager


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class MetricsRegistry:
    """Snapshot-and-render facade over the manager's counters."""

    def __init__(self, manager: JobManager, service_workers: int):
        self.manager = manager
        self.service_workers = service_workers
        self.started_s = time.time()
        #: Worker slots currently executing a job (maintained by the
        #: HTTP layer's worker loops).
        self.busy_workers = 0
        #: Summary dict from :func:`execute_job` for the last finished job.
        self.last_job: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def render(self) -> str:
        lines: List[str] = []

        def family(name: str, kind: str, help_text: str, samples) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in samples:
                label_s = (
                    "{"
                    + ",".join(
                        f'{k}="{_escape(str(v))}"' for k, v in labels.items()
                    )
                    + "}"
                    if labels
                    else ""
                )
                lines.append(f"{name}{label_s} {value}")

        manager = self.manager
        counts = manager.counts()
        cache = manager.cache_totals()

        family(
            "repro_service_info", "gauge",
            "Static service metadata.",
            [({"version": repro.__version__}, 1)],
        )
        family(
            "repro_service_uptime_seconds", "gauge",
            "Seconds since the service process started.",
            [({}, time.time() - self.started_s)],
        )
        family(
            "repro_service_queue_depth", "gauge",
            "Jobs admitted but not yet claimed by a worker.",
            [({}, manager.queue_depth())],
        )
        family(
            "repro_service_jobs", "gauge",
            "Known jobs by lifecycle state.",
            [({"state": state}, counts[state]) for state in JOB_STATES],
        )
        family(
            "repro_service_submissions_total", "counter",
            "POST /jobs bodies admitted (including dedupes and retries).",
            [({}, manager.submitted + manager.deduped)],
        )
        family(
            "repro_service_deduped_total", "counter",
            "Submissions that deduped onto an existing job id.",
            [({}, manager.deduped)],
        )
        family(
            "repro_service_rejected_total", "counter",
            "Submissions rejected by admission control (queue full).",
            [({}, manager.rejected)],
        )
        family(
            "repro_service_jobs_completed_total", "counter",
            "Jobs that finished successfully.",
            [({}, manager.completed)],
        )
        family(
            "repro_service_jobs_failed_total", "counter",
            "Jobs that raised during execution.",
            [({}, manager.failed)],
        )
        family(
            "repro_service_jobs_resumed_total", "counter",
            "Queued/interrupted jobs re-enqueued from disk at startup.",
            [({}, manager.resumed)],
        )
        family(
            "repro_service_jobs_evicted_total", "counter",
            "Terminal job records evicted past the --job-ttl-s TTL.",
            [({}, manager.evicted)],
        )
        family(
            "repro_service_workers", "gauge",
            "Configured worker slots.",
            [({}, self.service_workers)],
        )
        family(
            "repro_service_workers_busy", "gauge",
            "Worker slots currently executing a job.",
            [({}, self.busy_workers)],
        )

        family(
            "repro_cache_hits_total", "counter",
            "ResultCache hits across all jobs run by this service.",
            [({}, cache.hits)],
        )
        family(
            "repro_cache_misses_total", "counter",
            "ResultCache misses across all jobs run by this service.",
            [({}, cache.misses)],
        )
        family(
            "repro_cache_stores_total", "counter",
            "ResultCache stores across all jobs run by this service.",
            [({}, cache.stores)],
        )
        family(
            "repro_cache_invalidations_total", "counter",
            "ResultCache entries dropped as corrupt or version-stale.",
            [({}, cache.invalidations)],
        )
        family(
            "repro_cache_memory_hits_total", "counter",
            "Subset of cache hits served by the in-process LRU layer.",
            [({}, cache.memory_hits)],
        )
        family(
            "repro_cache_hit_ratio", "gauge",
            "hits / (hits + misses) across all jobs; 0 before any lookup.",
            [({}, cache.hit_rate())],
        )

        last = self.last_job
        if last is not None:
            family(
                "repro_last_job_elapsed_seconds", "gauge",
                "Wall time of the most recently completed job.",
                [({"kind": last["kind"]}, last["elapsed_s"])],
            )
            family(
                "repro_last_job_avg_p99_ms", "gauge",
                "Mean per-service p99 latency of the last completed job.",
                [({}, last["avg_p99_ms"])],
            )
            family(
                "repro_last_job_avg_busy_cores", "gauge",
                "Mean busy cores of the last completed job.",
                [({}, last["avg_busy_cores"])],
            )
            family(
                "repro_probe_trace_events", "gauge",
                "Perfetto trace events exported for the last job "
                "(0 when telemetry was off).",
                [({}, last["trace_events"])],
            )
        return "\n".join(lines) + "\n"
