"""Job request parsing and validation for the simulation service.

A job is one of two shapes, mirroring the two heavy CLI paths:

* ``{"kind": "sweep", ...}`` — a (systems x seeds) grid executed through
  :func:`repro.parallel.runner.run_sweep`;
* ``{"kind": "cluster", ...}`` — a sharded cluster-scale run executed
  through :func:`repro.cluster_scale.runner.run_cluster_scale`.

Parsing is strict: unknown fields, unknown system names, and values that
fail :class:`~repro.config.SimulationConfig` /
:class:`~repro.cluster_scale.spec.ClusterScaleConfig` validation raise
:class:`JobValidationError` carrying the *name of the offending field*,
which the HTTP layer returns in the 400 body and ``python -m repro run
--config`` prints before exiting 2.

Identity contract
-----------------

:meth:`JobRequest.identity` is the canonical, JSON-able description of
everything that determines the job's output — the fully-expanded sweep
point payloads (sweep) or the serialized system/simulation/cluster
configs plus batch-job roster (cluster).  The job id is the
:class:`~repro.parallel.cache.ResultCache` content hash of that identity
(``sha256(canonical_json(identity) + "\\n" + version)``), so:

* submitting the same configuration twice — from any number of
  concurrent clients — dedupes to the same job id and one underlying run;
* ``workers`` is *excluded*: results are bit-identical at any worker
  count, so a resubmission that only changes parallelism must hit the
  same job;
* a package version bump rolls every job id, exactly as it rolls every
  result-cache key.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.config import SimulationConfig, TelemetryConfig

#: Fields a plain (non-``__type__``) simulation object may set.
SIM_FIELDS = {f.name: f for f in dataclasses.fields(SimulationConfig)}

JOB_KINDS = ("sweep", "cluster")

#: Upper bound on per-job process-pool workers a client may request.
MAX_JOB_WORKERS = 32


class JobValidationError(ValueError):
    """A job payload (or ``--config`` file) failed validation.

    ``field`` names the offending field when it can be determined —
    the HTTP layer surfaces it in the 400 error body.
    """

    def __init__(self, field: Optional[str], message: str):
        self.field = field
        super().__init__(message)


def _blame_field(message: str, candidates) -> Optional[str]:
    """Best-effort field attribution for a config ``ValueError``: the
    first known field name that appears in the message."""
    for name in sorted(candidates, key=len, reverse=True):
        if name in message:
            return name
    return None


def validate_simulation(sim: SimulationConfig) -> None:
    """Field-level sanity checks the frozen dataclass does not enforce.

    Raises :class:`JobValidationError` naming the offending field — the
    friendly alternative to a traceback from deep inside the arrival
    generator.
    """
    if not isinstance(sim.seed, int) or isinstance(sim.seed, bool):
        raise JobValidationError("seed", f"seed must be an integer, got {sim.seed!r}")
    if sim.seed < 0:
        raise JobValidationError("seed", f"seed must be non-negative, got {sim.seed}")
    if sim.horizon_ms <= 0:
        raise JobValidationError(
            "horizon_ms", f"horizon_ms must be positive, got {sim.horizon_ms}"
        )
    if not 0 <= sim.warmup_ms < sim.horizon_ms:
        raise JobValidationError(
            "warmup_ms",
            f"warmup_ms must be in [0, horizon_ms), got {sim.warmup_ms} "
            f"with horizon_ms={sim.horizon_ms}",
        )
    if sim.accesses_per_segment <= 0:
        raise JobValidationError(
            "accesses_per_segment",
            f"accesses_per_segment must be positive, got {sim.accesses_per_segment}",
        )
    if sim.load_scale <= 0:
        raise JobValidationError(
            "load_scale", f"load_scale must be positive, got {sim.load_scale}"
        )
    if sim.servers_to_simulate <= 0:
        raise JobValidationError(
            "servers_to_simulate",
            f"servers_to_simulate must be positive, got {sim.servers_to_simulate}",
        )
    if sim.requests_per_service is not None and sim.requests_per_service <= 0:
        raise JobValidationError(
            "requests_per_service",
            f"requests_per_service must be positive, got {sim.requests_per_service}",
        )
    if sim.trace_interval_ms <= 0:
        raise JobValidationError(
            "trace_interval_ms",
            f"trace_interval_ms must be positive, got {sim.trace_interval_ms}",
        )


def _coerce_numeric(fields: Dict[str, Any], dataclass_fields) -> None:
    """JSON has one number type; the configs have two.  Cast ints posted
    for float-typed fields so the rebuilt config serializes exactly as
    the CLI-built one (``40`` vs ``40.0`` must not split cache keys)."""
    for name, value in list(fields.items()):
        f = dataclass_fields.get(name)
        if f is None:
            continue
        if f.type in ("float", float) and isinstance(value, int) and not isinstance(value, bool):
            fields[name] = float(value)


def build_simulation(data: Optional[Dict[str, Any]],
                     servers: int = 1) -> SimulationConfig:
    """Build a :class:`SimulationConfig` from a POSTed object.

    Accepts either the full serialized form (``{"__type__":
    "SimulationConfig", ...}`` as written by ``--dump-config``) or a
    plain field dict.  The plain form applies the CLI's warmup rule when
    ``warmup_ms`` is omitted (``min(horizon_ms / 5, 100)``), so a job
    posting only ``horizon_ms`` digests identically to the equivalent
    ``python -m repro`` invocation.
    """
    from repro.core.serialize import from_dict

    if data is None:
        data = {}
    if not isinstance(data, dict):
        raise JobValidationError(
            "simulation", f"simulation must be an object, got {type(data).__name__}"
        )
    if "__type__" in data:
        try:
            sim = from_dict(data)
        except (ValueError, KeyError, TypeError) as exc:
            raise JobValidationError(
                _blame_field(str(exc), SIM_FIELDS), f"bad simulation config: {exc}"
            ) from exc
        if not isinstance(sim, SimulationConfig):
            raise JobValidationError(
                "simulation", "serialized simulation is not a SimulationConfig"
            )
    else:
        unknown = sorted(set(data) - set(SIM_FIELDS))
        if unknown:
            raise JobValidationError(
                unknown[0],
                f"unknown SimulationConfig field(s) {unknown}; "
                f"valid fields: {sorted(SIM_FIELDS)}",
            )
        fields = dict(data)
        for key in ("faults", "client", "telemetry"):
            value = fields.get(key)
            if isinstance(value, dict):
                if "__type__" in value:
                    try:
                        fields[key] = from_dict(value)
                    except (ValueError, KeyError, TypeError) as exc:
                        raise JobValidationError(key, f"bad {key}: {exc}") from exc
                elif key == "telemetry":
                    tele_fields = {
                        f.name for f in dataclasses.fields(TelemetryConfig)
                    }
                    bad = sorted(set(value) - tele_fields)
                    if bad:
                        raise JobValidationError(
                            bad[0], f"unknown TelemetryConfig field(s) {bad}"
                        )
                    try:
                        fields[key] = TelemetryConfig(**value)
                    except (ValueError, TypeError) as exc:
                        raise JobValidationError("telemetry", str(exc)) from exc
                else:
                    raise JobValidationError(
                        key,
                        f"{key} must use the serialized form "
                        f'({{"__type__": ...}}) or be null',
                    )
        _coerce_numeric(fields, SIM_FIELDS)
        if "warmup_ms" not in fields:
            horizon = fields.get("horizon_ms", SimulationConfig().horizon_ms)
            fields["warmup_ms"] = min(float(horizon) / 5, 100.0)
        fields.setdefault("servers_to_simulate", servers)
        try:
            sim = SimulationConfig(**fields)
        except (TypeError, ValueError) as exc:
            raise JobValidationError(
                _blame_field(str(exc), SIM_FIELDS), f"bad simulation config: {exc}"
            ) from exc
    validate_simulation(sim)
    return sim


def _parse_seeds_value(value: Any) -> Tuple[int, ...]:
    from repro.parallel.sweep import parse_seeds

    if value is None:
        return (SimulationConfig().seed,)
    if isinstance(value, str):
        try:
            return parse_seeds(value)
        except ValueError as exc:
            raise JobValidationError("seeds", f"bad seeds: {exc}") from exc
    if isinstance(value, int) and not isinstance(value, bool):
        return (value,)
    if isinstance(value, list):
        if not value:
            raise JobValidationError("seeds", "seeds list is empty")
        bad = [s for s in value if not isinstance(s, int) or isinstance(s, bool)]
        if bad:
            raise JobValidationError("seeds", f"non-integer seed(s): {bad}")
        return tuple(value)
    raise JobValidationError(
        "seeds", f'seeds must be a string ("0..7"), integer, or list, '
                 f"got {type(value).__name__}"
    )


def _parse_workers(value: Any) -> int:
    if value is None:
        return 1
    if not isinstance(value, int) or isinstance(value, bool):
        raise JobValidationError(
            "workers", f"workers must be an integer, got {value!r}"
        )
    if not 1 <= value <= MAX_JOB_WORKERS:
        raise JobValidationError(
            "workers", f"workers must be in [1, {MAX_JOB_WORKERS}], got {value}"
        )
    return value


@dataclass(frozen=True)
class JobRequest:
    """One validated, fully-resolved job submission."""

    kind: str
    workers: int
    sim: SimulationConfig
    #: Sweep: preset system names, in submission order.
    systems: Tuple[str, ...] = ()
    seeds: Tuple[int, ...] = ()
    #: Cluster: the single system name and the datacenter-layer config.
    system: str = ""
    cluster: Optional[Any] = None  # ClusterScaleConfig; Any avoids import cycle
    #: Canned fault plan name a cluster job asked for (None = nominal).
    fault_plan: Optional[str] = None

    # ------------------------------------------------------------------
    def points(self) -> List[Any]:
        """Sweep only: the fully-specified SweepPoints, in grid order."""
        from repro.core.presets import all_systems
        from repro.parallel.sweep import SweepSpec

        presets = all_systems()
        systems = {name: presets[name] for name in self.systems}
        return list(
            SweepSpec(systems=systems, seeds=self.seeds, sim=self.sim).points()
        )

    def cluster_system(self):
        """Cluster only: the resolved :class:`SystemConfig`."""
        from repro.config import SystemKind
        from repro.core.presets import build_system

        kind = next(k for k in SystemKind if k.value == self.system)
        return build_system(kind)

    # ------------------------------------------------------------------
    def identity(self) -> Dict[str, Any]:
        """Everything that determines this job's output (see module doc).

        ``workers`` is deliberately absent: parallelism never changes
        results, so it must never split job ids.
        """
        from repro.core.serialize import to_dict

        if self.kind == "sweep":
            return {
                "service_job": "sweep",
                "points": [p.payload() for p in self.points()],
            }
        from repro.workloads.batch import BATCH_JOBS

        return {
            "service_job": "cluster",
            "system": to_dict(self.cluster_system()),
            "simulation": to_dict(self.sim),
            "cluster_scale": self.cluster.to_dict(),
            "batch_jobs": [dataclasses.asdict(job) for job in BATCH_JOBS],
        }

    def to_request_dict(self) -> Dict[str, Any]:
        """A normalized request body that re-parses to an equal request.

        This is what the job store persists, so a restarted service can
        rebuild and resume any queued job.
        """
        from repro.core.serialize import to_dict

        out: Dict[str, Any] = {
            "kind": self.kind,
            "workers": self.workers,
            "simulation": to_dict(self.sim),
        }
        if self.kind == "sweep":
            out["systems"] = list(self.systems)
            out["seeds"] = list(self.seeds)
        else:
            out["system"] = self.system
            cluster = self.cluster.to_dict()
            cluster.pop("fault_plan", None)
            out["cluster"] = cluster
            out["fault_plan"] = self.fault_plan
        return out


def _parse_sweep(body: Dict[str, Any], workers: int) -> JobRequest:
    from repro.core.presets import all_systems

    presets = all_systems()
    systems_value = body.get("systems", "all")
    if systems_value == "all":
        names = list(presets)
    elif isinstance(systems_value, str):
        names = [n.strip() for n in systems_value.split(",") if n.strip()]
    elif isinstance(systems_value, list):
        names = list(systems_value)
    else:
        raise JobValidationError(
            "systems", f'systems must be "all", a comma string, or a list, '
                       f"got {type(systems_value).__name__}"
        )
    unknown = [n for n in names if n not in presets]
    if unknown:
        raise JobValidationError(
            "systems", f"unknown system(s) {unknown}; choose from {list(presets)}"
        )
    if not names:
        raise JobValidationError("systems", "no systems selected")
    seeds = _parse_seeds_value(body.get("seeds"))
    sim = build_simulation(body.get("simulation"))
    return JobRequest(
        kind="sweep", workers=workers, sim=sim,
        systems=tuple(names), seeds=seeds,
    )


def _parse_cluster(body: Dict[str, Any], workers: int) -> JobRequest:
    from repro.cluster_scale.resilience import cluster_plan_names, get_cluster_plan
    from repro.cluster_scale.spec import (
        ROUTING_POLICY_NAMES,
        ClusterScaleConfig,
        RoutingPolicy,
    )
    from repro.config import SystemKind

    system_name = body.get("system", "HardHarvest-Block")
    if system_name not in [k.value for k in SystemKind]:
        raise JobValidationError(
            "system", f"unknown system {system_name!r}; choose from "
                      f"{[k.value for k in SystemKind]}"
        )
    cluster_data = body.get("cluster") or {}
    if not isinstance(cluster_data, dict):
        raise JobValidationError(
            "cluster", f"cluster must be an object, got {type(cluster_data).__name__}"
        )
    cluster_fields = {f.name: f for f in dataclasses.fields(ClusterScaleConfig)}
    unknown = sorted(set(cluster_data) - set(cluster_fields) - {"fault_plan"})
    if unknown:
        raise JobValidationError(
            unknown[0],
            f"unknown ClusterScaleConfig field(s) {unknown}; "
            f"valid fields: {sorted(cluster_fields)}",
        )
    fields = {k: v for k, v in cluster_data.items() if k != "fault_plan"}
    _coerce_numeric(fields, cluster_fields)
    routing = fields.get("routing")
    if routing is not None:
        if routing not in ROUTING_POLICY_NAMES:
            raise JobValidationError(
                "routing", f"unknown routing policy {routing!r}; choose from "
                           f"{list(ROUTING_POLICY_NAMES)}"
            )
        fields["routing"] = RoutingPolicy(routing)

    servers = fields.get("servers", ClusterScaleConfig().servers)
    sim = build_simulation(body.get("simulation"), servers=servers)
    fields.setdefault("epoch_ms", sim.horizon_ms)
    fields.setdefault("warmup_ms", sim.warmup_ms)

    plan_name = body.get("fault_plan", cluster_data.get("fault_plan"))
    if plan_name is not None:
        if not isinstance(plan_name, str):
            raise JobValidationError(
                "fault_plan", "fault_plan must be a canned plan name"
            )
        try:
            fields["fault_plan"] = get_cluster_plan(
                plan_name, servers, fields.get("epochs", ClusterScaleConfig().epochs)
            )
        except KeyError:
            raise JobValidationError(
                "fault_plan", f"unknown fault plan {plan_name!r}; choose from "
                              f"{cluster_plan_names()}"
            ) from None
    try:
        cfg = ClusterScaleConfig(**fields)
    except (TypeError, ValueError) as exc:
        raise JobValidationError(
            _blame_field(str(exc), cluster_fields), f"bad cluster config: {exc}"
        ) from exc
    request = JobRequest(
        kind="cluster", workers=workers, sim=sim,
        system=system_name, cluster=cfg, fault_plan=plan_name,
    )
    # Core-budget check the runner would otherwise raise mid-job.
    from repro.cluster_scale.runner import _validate

    try:
        _validate(request.cluster_system(), cfg)
    except ValueError as exc:
        raise JobValidationError("harvest_max_cores", str(exc)) from exc
    return request


def parse_job_request(body: Any) -> JobRequest:
    """Parse and validate one POSTed job body; raises
    :class:`JobValidationError` with the offending field named."""
    if not isinstance(body, dict):
        raise JobValidationError(
            None, f"job body must be a JSON object, got {type(body).__name__}"
        )
    kind = body.get("kind")
    if kind not in JOB_KINDS:
        raise JobValidationError(
            "kind", f"kind must be one of {list(JOB_KINDS)}, got {kind!r}"
        )
    workers = _parse_workers(body.get("workers"))
    if kind == "sweep":
        return _parse_sweep(body, workers)
    return _parse_cluster(body, workers)


def job_content_id(request: JobRequest, cache=None) -> str:
    """The job id: the :class:`ResultCache` content hash of the job's
    identity payload (duplicate submissions collide by construction)."""
    from repro.parallel.cache import ResultCache

    return (cache or ResultCache()).key(request.identity())
