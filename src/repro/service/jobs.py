"""Persistent job records, the on-disk job store, and the JobManager.

Layout mirrors the result cache: everything lives under
``<cache_root>/jobs/`` with atomic temp-plus-rename writes, so a crashed
or SIGTERM'd service never leaves a torn record and a restarted one can
pick up exactly where it stopped:

* ``<job_id>.json`` — the :class:`JobRecord` (normalized request body,
  state, timestamps, error);
* ``<job_id>.result.json`` — the result payload, written once when the
  job completes (completed work survives restarts for free);
* ``<job_id>.trace.json`` — the Perfetto trace, when telemetry was on.

State machine: ``queued -> running -> done | failed``.  On startup
:meth:`JobManager.recover` folds any ``running`` record back to
``queued`` (the process died mid-job) and re-enqueues all queued work in
original submission order.  :meth:`JobManager.requeue_unfinished` does
the same at shutdown so jobs still in flight when the grace period
expires are resumed by the next process rather than lost.

Dedupe contract: the job id *is* the content hash of the job's identity
(:func:`repro.service.spec.job_content_id`), so concurrent clients
posting the same configuration race benignly — whoever arrives first
creates the record, everyone else gets the same id back and exactly one
underlying run happens.  A ``failed`` job is the one exception:
resubmitting it resets the record to ``queued`` for another attempt.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.ioutil import atomic_open
from repro.parallel.cache import DEFAULT_CACHE_DIR, CacheStats
from repro.service.spec import JobRequest, job_content_id, parse_job_request

JOB_STATES = ("queued", "running", "done", "failed")


class QueueFullError(RuntimeError):
    """Admission control rejected a submission (queue at capacity)."""


@dataclass
class JobRecord:
    """One job's persistent state (everything but the result payload)."""

    job_id: str
    kind: str
    request: Dict[str, Any]
    state: str = "queued"
    workers: int = 1
    submitted_s: float = 0.0
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    #: Last progress line from the runner (in-memory only; not persisted
    #: because it would mean a disk write per epoch).
    progress: str = field(default="", compare=False)
    error: Optional[str] = None
    digest: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out.pop("progress")
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        known = {f for f in cls.__dataclass_fields__ if f != "progress"}
        return cls(**{k: v for k, v in data.items() if k in known})

    def status_dict(self) -> Dict[str, Any]:
        """What ``GET /jobs/{id}`` returns."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "workers": self.workers,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "progress": self.progress,
            "error": self.error,
            "digest": self.digest,
        }


class JobStore:
    """Atomic on-disk persistence for job records and result payloads."""

    def __init__(self, cache_root: str = DEFAULT_CACHE_DIR):
        self.root = os.path.join(cache_root, "jobs")

    def job_path(self, job_id: str) -> str:
        return os.path.join(self.root, f"{job_id}.json")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.root, f"{job_id}.result.json")

    def trace_path(self, job_id: str) -> str:
        return os.path.join(self.root, f"{job_id}.trace.json")

    def save(self, record: JobRecord) -> None:
        os.makedirs(self.root, exist_ok=True)
        with atomic_open(self.job_path(record.job_id)) as fh:
            json.dump(record.to_dict(), fh, indent=2)

    def load(self, job_id: str) -> Optional[JobRecord]:
        try:
            with open(self.job_path(job_id)) as fh:
                return JobRecord.from_dict(json.load(fh))
        except (OSError, ValueError, TypeError, KeyError):
            return None

    def load_all(self) -> List[JobRecord]:
        """Every readable job record, oldest submission first."""
        if not os.path.isdir(self.root):
            return []
        records = []
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".json") or name.endswith(
                (".result.json", ".trace.json")
            ):
                continue
            record = self.load(name[: -len(".json")])
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: (r.submitted_s, r.job_id))
        return records

    def write_result(self, job_id: str, payload: Dict[str, Any]) -> None:
        os.makedirs(self.root, exist_ok=True)
        with atomic_open(self.result_path(job_id)) as fh:
            json.dump(payload, fh, indent=2)

    def read_result(self, job_id: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self.result_path(job_id)) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def delete(self, job_id: str) -> bool:
        """Remove a job record and its ``.result``/``.trace`` siblings.

        Returns True when the record file itself existed.  Used by TTL
        eviction; the underlying simulation results stay in the
        ResultCache, so a re-submitted job re-serves from cache rather
        than re-simulating.
        """
        removed = False
        for path in (
            self.job_path(job_id),
            self.result_path(job_id),
            self.trace_path(job_id),
        ):
            try:
                os.remove(path)
            except OSError:
                continue
            if path == self.job_path(job_id):
                removed = True
        return removed


class JobManager:
    """Thread-safe job table with bounded admission and content dedupe.

    The manager owns all state transitions; the HTTP layer and the worker
    pool only ever call its methods.  Every mutation persists the record
    through the :class:`JobStore` before returning, so the on-disk view
    is never newer than the in-memory one.
    """

    def __init__(self, store: JobStore, max_queue: int = 64):
        self.store = store
        self.max_queue = max_queue
        self._lock = threading.Lock()
        self.jobs: Dict[str, JobRecord] = {}
        self._pending: Deque[str] = deque()
        # Service-lifetime counters (exported by /metrics).
        self.submitted = 0
        self.deduped = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.resumed = 0
        self.evicted = 0
        #: Job ids actually executed by this process — the concurrency
        #: tests assert one execution per unique config.
        self.executions: List[str] = []
        self._cache_totals = CacheStats()

    # -- submission ----------------------------------------------------
    def submit(self, body: Any) -> Tuple[JobRecord, bool]:
        """Validate + admit one job body.

        Returns ``(record, created)``; ``created`` is False when the
        submission deduped onto an existing job.  Raises
        :class:`~repro.service.spec.JobValidationError` on a bad body and
        :class:`QueueFullError` when admission control rejects it.
        """
        request = parse_job_request(body)
        job_id = job_content_id(request)
        with self._lock:
            existing = self.jobs.get(job_id)
            if existing is not None and existing.state != "failed":
                self.deduped += 1
                return existing, False
            if len(self._pending) >= self.max_queue:
                self.rejected += 1
                raise QueueFullError(
                    f"submission queue full ({self.max_queue} job(s) pending)"
                )
            if existing is not None:  # failed -> retry from scratch
                record = existing
                record.state = "queued"
                record.error = None
                record.started_s = None
                record.finished_s = None
                record.submitted_s = time.time()
            else:
                record = JobRecord(
                    job_id=job_id,
                    kind=request.kind,
                    request=request.to_request_dict(),
                    workers=request.workers,
                    submitted_s=time.time(),
                )
                self.jobs[job_id] = record
            self.submitted += 1
            self._pending.append(job_id)
            self.store.save(record)
            return record, True

    # -- worker-side transitions --------------------------------------
    def claim(self, job_id: str) -> Optional[Tuple[JobRecord, JobRequest]]:
        """Move a queued job to ``running``; None if it is not claimable
        (already ran, or its persisted request no longer parses)."""
        with self._lock:
            record = self.jobs.get(job_id)
            if record is None or record.state != "queued":
                return None
            try:
                request = parse_job_request(record.request)
            except ValueError as exc:
                record.state = "failed"
                record.error = f"persisted request no longer valid: {exc}"
                record.finished_s = time.time()
                self.failed += 1
                self.store.save(record)
                return None
            record.state = "running"
            record.started_s = time.time()
            record.progress = ""
            self.executions.append(job_id)
            self.store.save(record)
            return record, request

    def finish(self, job_id: str, digest: str) -> None:
        with self._lock:
            record = self.jobs[job_id]
            record.state = "done"
            record.digest = digest
            record.finished_s = time.time()
            self.completed += 1
            self.store.save(record)

    def fail(self, job_id: str, error: str) -> None:
        with self._lock:
            record = self.jobs.get(job_id)
            if record is None:
                return
            record.state = "failed"
            record.error = error
            record.finished_s = time.time()
            self.failed += 1
            self.store.save(record)

    def set_progress(self, job_id: str, message: str) -> None:
        record = self.jobs.get(job_id)
        if record is not None:
            record.progress = message

    def fold_cache_stats(self, stats: CacheStats) -> None:
        """Accumulate one job's ResultCache counters into the service
        totals (each job runs with its own cache instance over the shared
        root, so counters never race across worker threads)."""
        with self._lock:
            self._cache_totals.hits += stats.hits
            self._cache_totals.misses += stats.misses
            self._cache_totals.stores += stats.stores
            self._cache_totals.invalidations += stats.invalidations
            self._cache_totals.memory_hits += stats.memory_hits

    # -- TTL eviction --------------------------------------------------
    def evict_expired(self, ttl_s: float, now: Optional[float] = None) -> List[str]:
        """Drop terminal (done/failed) jobs older than ``ttl_s`` seconds.

        Age is measured from ``finished_s``.  Eviction removes the job
        record and its ``.result``/``.trace`` files and forgets the id,
        so a later identical submission runs as a fresh job — but its
        simulation results still hit the ResultCache, so eviction never
        costs recomputation, only job-table memory and job-store disk.
        Returns the evicted ids (oldest first).
        """
        now = time.time() if now is None else now
        evicted: List[str] = []
        with self._lock:
            for job_id, record in sorted(
                self.jobs.items(),
                key=lambda kv: kv[1].finished_s or kv[1].submitted_s,
            ):
                if record.state not in ("done", "failed"):
                    continue
                finished = record.finished_s or record.submitted_s
                if now - finished < ttl_s:
                    continue
                self.store.delete(job_id)
                del self.jobs[job_id]
                self.evicted += 1
                evicted.append(job_id)
        return evicted

    # -- recovery ------------------------------------------------------
    def recover(self) -> List[str]:
        """Load persisted jobs at startup; return ids needing execution.

        ``running`` records mean a previous process died mid-job: they
        fold back to ``queued``.  Completed/failed records are kept so
        their results stay servable and dedupe keeps working.
        """
        to_run: List[str] = []
        with self._lock:
            for record in self.store.load_all():
                self.jobs[record.job_id] = record
                if record.state == "running":
                    record.state = "queued"
                    self.store.save(record)
                if record.state == "queued":
                    self._pending.append(record.job_id)
                    to_run.append(record.job_id)
                    self.resumed += 1
        return to_run

    def requeue_unfinished(self) -> List[str]:
        """Mark every non-terminal job ``queued`` on disk (shutdown path:
        the next service process resumes them)."""
        requeued = []
        with self._lock:
            for record in self.jobs.values():
                if record.state in ("queued", "running"):
                    record.state = "queued"
                    self.store.save(record)
                    requeued.append(record.job_id)
        return requeued

    # -- introspection -------------------------------------------------
    def pop_pending(self) -> Optional[str]:
        with self._lock:
            return self._pending.popleft() if self._pending else None

    def get(self, job_id: str) -> Optional[JobRecord]:
        return self.jobs.get(job_id)

    def queue_depth(self) -> int:
        return len(self._pending)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for record in self.jobs.values():
                counts[record.state] += 1
            return counts

    def cache_totals(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._cache_totals.hits,
                misses=self._cache_totals.misses,
                stores=self._cache_totals.stores,
                invalidations=self._cache_totals.invalidations,
                memory_hits=self._cache_totals.memory_hits,
            )


def prune_job_records(
    store: JobStore, ttl_s: float, now: Optional[float] = None
) -> int:
    """Offline TTL sweep over a job store (``repro cache --prune-jobs``).

    Same policy as :meth:`JobManager.evict_expired`, but driven from the
    on-disk records so it works without a running service.  Only terminal
    (done/failed) records are touched; queued/running jobs belong to a
    live or resumable service and are left alone.  Returns the number of
    records removed.
    """
    now = time.time() if now is None else now
    removed = 0
    for record in store.load_all():
        if record.state not in ("done", "failed"):
            continue
        finished = record.finished_s or record.submitted_s or 0.0
        if now - finished >= ttl_s and store.delete(record.job_id):
            removed += 1
    return removed
