#!/usr/bin/env python3
"""Scenario: drive the server with Alibaba-style production traces.

The paper mimics 8 Alibaba production services with DeathStarBench
services, replaying real invocation rates (Section 5). This example does
the same pipeline end to end with the synthetic trace generator:

1. sample a population of microservice instances calibrated to the
   published utilization statistics (Figure 2's anchors);
2. expand per-instance bursty utilization time series (Figure 3's shape);
3. convert utilization to per-service request rates and simulate NoHarvest
   vs HardHarvest-Block under the trace-driven load;
4. export the per-request latency samples to CSV for further analysis.

Run:  python examples/alibaba_trace_replay.py
"""

import os
import tempfile

import numpy as np

from repro import SimulationConfig, SystemKind, build_system
from repro.analysis.plots import sparkline
from repro.core.experiment import run_server_raw, summarize
from repro.core.export import write_samples_csv
from repro.workloads.alibaba import (
    representative_instance,
    sample_instances,
    utilization_timeseries,
)


def main() -> None:
    rng = np.random.default_rng(1)

    print("Synthetic Alibaba population (30k instances):")
    instances = sample_instances(rng, 30_000)
    avg = np.array([i.avg for i in instances])
    mx = np.array([i.max for i in instances])
    print(f"  median(avg util) = {np.median(avg):.3f}  (published: 0.161)")
    print(f"  p90(max util)    = {np.percentile(mx, 90):.3f}  (published: 0.407)")

    inst = representative_instance()
    series = utilization_timeseries(rng, inst, duration_s=510)
    print("\nA representative VM's utilization over 510 s "
          f"(avg {inst.avg:.2f}, max {inst.max:.2f}):")
    print("  " + sparkline(series, width=60))

    simcfg = SimulationConfig(
        horizon_ms=250, warmup_ms=40, seed=21, trace_driven=True
    )
    print("\nReplaying trace-driven load through the simulator...")
    base_sim = run_server_raw(build_system(SystemKind.NOHARVEST), simcfg)
    hh_sim = run_server_raw(build_system(SystemKind.HARDHARVEST_BLOCK), simcfg)
    base, hh = summarize(base_sim), summarize(hh_sim)

    print(f"  NoHarvest:         P99 {base.avg_p99_ms():5.2f} ms, "
          f"busy {base.avg_busy_cores:4.1f}/36")
    print(f"  HardHarvest-Block: P99 {hh.avg_p99_ms():5.2f} ms, "
          f"busy {hh.avg_busy_cores:4.1f}/36, "
          f"batch x{hh.batch_units_per_s / base.batch_units_per_s:.1f}")

    out = os.path.join(tempfile.gettempdir(), "hardharvest_samples.csv")
    n = write_samples_csv(out, hh_sim)
    print(f"\nWrote {n} per-request latency samples to {out}")


if __name__ == "__main__":
    main()
