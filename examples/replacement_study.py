#!/usr/bin/env python3
"""Scenario: studying cache replacement under harvesting churn.

Uses the library's cache substrate directly — no full-system simulation —
to explore the paper's Algorithm 1: a way-partitioned cache serving an
interleaved stream of Primary-request accesses (shared + private pages) and
Harvest-VM batch accesses, with the harvest region flushed at every
transition. Compares LRU, RRIP, Algorithm 1, and offline Belady, then
sweeps the eviction-candidate window M (Figure 19's knob).

Run:  python examples/replacement_study.py
"""

import numpy as np

from repro.analysis.belady import belady_hit_rate
from repro.mem.cache import SetAssocArray
from repro.mem.partition import full_mask
from repro.mem.replacement import HardHarvestPolicy, LruPolicy, RripPolicy

SETS, WAYS = 64, 8
HARVEST = 0b00001111  # low 4 ways are the harvest region


def make_stream(rounds=120, seed=5):
    """Alternating primary/batch phases with per-phase region flushes."""
    rng = np.random.default_rng(seed)
    phases = []
    for r in range(rounds):
        primary = []
        shared = (rng.random(1400) ** 2.5 * 450).astype(int)
        private = 450 + (r % 4) * 2200 + (rng.random(900) ** 1.5 * 2200).astype(int)
        for line in shared:
            primary.append((int(line) % SETS, int(line), True))
        for line in private:
            primary.append((int(line) % SETS, int(line), False))
        rng.shuffle(primary)
        phases.append(("primary", primary))
        batch = 450 + 8 * 2200 + (rng.random(1200) * 4000).astype(int)
        phases.append(("batch", [(int(l) % SETS, int(l), False) for l in batch]))
    return phases


def run(policy, phases):
    arr = SetAssocArray("L2", SETS, WAYS, policy)
    hits = accesses = 0
    for kind, stream in phases:
        allowed = full_mask(WAYS) if kind == "primary" else HARVEST
        for s, tag, shared in stream:
            hit = arr.access(s, tag, shared, allowed)
            if kind == "primary":
                accesses += 1
                hits += hit
        arr.flush_ways(HARVEST)
    return hits / accesses


def main() -> None:
    phases = make_stream()
    print("Primary-side L2 hit rate under harvesting churn:")
    print(f"  {'vanilla LRU':16s} {run(LruPolicy(), phases) * 100:5.1f}%")
    print(f"  {'RRIP':16s} {run(RripPolicy(), phases) * 100:5.1f}%")
    print(f"  {'Algorithm 1':16s} "
          f"{run(HardHarvestPolicy(HARVEST, 0.75), phases) * 100:5.1f}%")
    primary = [a for k, s in phases if k == "primary" for a in s]
    print(f"  {'Belady (offline)':16s} {belady_hit_rate(primary, WAYS) * 100:5.1f}%")

    print()
    print("Eviction-candidate window sweep (Algorithm 1's M, Figure 19):")
    for m in (0.25, 0.5, 0.75, 1.0):
        rate = run(HardHarvestPolicy(HARVEST, m), phases)
        print(f"  M = {int(m * 100):3d}% of ways  ->  {rate * 100:5.1f}% hit rate")
    print()
    print("Small M cannot preserve shared lines (hit rate drops). Large M")
    print("maximizes raw hit rate on this stream but, in the full system,")
    print("M = 100% keeps evicting hot *private* lines of the running")
    print("request and raises tail latency (see benchmarks/test_fig19) —")
    print("which is why the paper lands on 75%.")


if __name__ == "__main__":
    main()
