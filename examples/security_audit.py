#!/usr/bin/env python3
"""Scenario: auditing HardHarvest's isolation guarantees.

The paper's design rests on three security invariants (Sections 2.3,
4.2.1): Harvest VMs are confined to the harvest region of a loaned core's
private structures, the harvest region is flushed on every transition, and
the flush wait is worst-case-constant (no timing side channel). This
example runs the simulator, audits all three invariants structurally, and
then demonstrates the audit catching a deliberately broken configuration.

Run:  python examples/security_audit.py
"""

from dataclasses import replace

from repro import SimulationConfig
from repro.analysis.security import (
    audit_flush_on_idle,
    audit_partition_isolation,
    audit_timing_gate,
)
from repro.config import FlushScope
from repro.core.experiment import run_server_raw
from repro.core.presets import harvest_block, hardharvest_block
from repro.harvest.costs import CostModel


def main() -> None:
    simcfg = SimulationConfig(horizon_ms=150, warmup_ms=20, seed=77)

    print("Running HardHarvest-Block and auditing partition isolation...")
    sim = run_server_raw(hardharvest_block(), simcfg)
    report = audit_partition_isolation(sim)
    print(f"  entries checked: {report.entries_checked}")
    print(f"  violations:      {len(report.violations)}  "
          f"({'CLEAN' if report.clean else 'LEAKY'})")

    print("\nTiming-side-channel gate (lend flush wait is occupancy-independent):")
    ok = audit_timing_gate(CostModel(hardharvest_block()))
    print(f"  constant worst-case flush wait: {'YES' if ok else 'NO'}")

    print("\nSoftware baseline (full flush on every transition):")
    sw_sim = run_server_raw(harvest_block(), simcfg)
    sw_report = audit_flush_on_idle(sw_sim)
    print(f"  idle-core residue check: "
          f"{'CLEAN' if sw_report.clean else 'LEAKY'} "
          f"({sw_report.entries_checked} entries)")

    print("\nNegative control — disable flushing entirely (insecure!):")
    broken = replace(harvest_block(), flush_scope=FlushScope.NONE, name="Broken")
    broken_sim = run_server_raw(broken, simcfg)
    broken_report = audit_flush_on_idle(broken_sim)
    print(f"  audit verdict: {'CLEAN (bad: audit blind!)' if broken_report.clean else 'LEAKY — caught it'}")
    if not broken_report.clean:
        v = broken_report.violations[0]
        print(f"  e.g. core {v.core_id} {v.structure} way {v.way}: {v.detail}")


if __name__ == "__main__":
    main()
