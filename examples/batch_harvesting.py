#!/usr/bin/env python3
"""Scenario: which batch workloads benefit most from harvested cores?

Runs the paper's eight batch applications (GraphBIG graph kernels,
FunctionBench ML training, CloudSuite Hadoop, BioBench MUMmer) in the
Harvest VM under HardHarvest-Block and reports throughput normalized to a
NoHarvest server (Figure 17's view). It also runs the *actual* mini-kernels
to show where the footprint/locality parameters of each job model come from.

Run:  python examples/batch_harvesting.py
"""

from repro import SimulationConfig, SystemKind, build_system, run_server
from repro.workloads.batch import BATCH_JOBS
from repro.workloads.kernels import KERNELS, derive_batch_profile


def main() -> None:
    simcfg = SimulationConfig(horizon_ms=150, warmup_ms=30, seed=3)
    noharvest = build_system(SystemKind.NOHARVEST)
    hardharvest = build_system(SystemKind.HARDHARVEST_BLOCK)

    print("Profiling the batch kernels (real executions):")
    print(f"  {'job':10s} {'pages touched':>14s} {'skew':>6s} {'accesses/unit':>14s}")
    for job in BATCH_JOBS:
        profile = derive_batch_profile(KERNELS[job.name]())
        print(
            f"  {job.name:10s} {profile['data_pages']:14d} "
            f"{profile['skew']:6.2f} {profile['accesses_per_unit']:14.1f}"
        )

    print()
    print("Simulating each job in the Harvest VM (one per server):")
    print(f"  {'job':10s} {'NoHarvest u/s':>14s} {'HardHarvest u/s':>16s} {'gain':>7s}")
    gains = []
    for i, job in enumerate(BATCH_JOBS):
        base = run_server(noharvest, simcfg, batch_job=job, server_index=i)
        hh = run_server(hardharvest, simcfg, batch_job=job, server_index=i)
        gain = hh.batch_units_per_s / base.batch_units_per_s
        gains.append((job.name, gain))
        print(
            f"  {job.name:10s} {base.batch_units_per_s:14.0f} "
            f"{hh.batch_units_per_s:16.0f} {gain:6.2f}x"
        )

    gains.sort(key=lambda kv: kv[1])
    print()
    print(f"Least gain: {gains[0][0]} ({gains[0][1]:.2f}x) — memory-intensive "
          "jobs feel the harvest-region cache limit most.")
    print(f"Most gain:  {gains[-1][0]} ({gains[-1][1]:.2f}x).")


if __name__ == "__main__":
    main()
