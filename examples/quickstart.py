#!/usr/bin/env python3
"""Quickstart: compare HardHarvest against NoHarvest on one server.

Simulates 300 ms of an 8-Primary-VM server (the paper's Section 5 setup)
under the conventional NoHarvest system and under HardHarvest-Block, and
prints the three headline metrics: Primary P99 tail latency, Harvest VM
throughput, and core utilization.

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, SystemKind, build_system, run_server


def main() -> None:
    simcfg = SimulationConfig(
        horizon_ms=300,   # simulated wall-clock
        warmup_ms=50,     # excluded from latency statistics
        seed=42,
    )

    print("Simulating NoHarvest (conventional) ...")
    baseline = run_server(build_system(SystemKind.NOHARVEST), simcfg)
    print("Simulating HardHarvest-Block (the paper's proposal) ...")
    hardharvest = run_server(build_system(SystemKind.HARDHARVEST_BLOCK), simcfg)

    print()
    print(f"{'metric':34s} {'NoHarvest':>12s} {'HardHarvest':>12s} {'change':>9s}")
    rows = [
        ("Primary P99 tail latency (ms)",
         baseline.avg_p99_ms(), hardharvest.avg_p99_ms(), "lower"),
        ("Primary median latency (ms)",
         baseline.avg_p50_ms(), hardharvest.avg_p50_ms(), "lower"),
        ("Harvest VM throughput (units/s)",
         baseline.batch_units_per_s, hardharvest.batch_units_per_s, "higher"),
        ("Busy cores (of 36)",
         baseline.avg_busy_cores, hardharvest.avg_busy_cores, "higher"),
    ]
    for label, base, hh, direction in rows:
        change = hh / base if base else float("nan")
        print(f"{label:34s} {base:12.2f} {hh:12.2f} {change:8.2f}x")

    print()
    lends = hardharvest.counters.get("lends", 0)
    print(f"HardHarvest performed {lends} in-hardware core reassignments "
          f"in {hardharvest.simulated_seconds * 1000:.0f} ms of simulated time —")
    print("each one costs tens of nanoseconds instead of the milliseconds a "
          "hypervisor-based reassignment takes.")


if __name__ == "__main__":
    main()
