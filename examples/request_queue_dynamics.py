#!/usr/bin/env python3
"""Scenario: Request Queue chunk dynamics as VMs come and go.

Drives the hardware controller through a day of VM churn while traffic
flows, visualizing how the 32-chunk Request Queue is re-divided among
subqueues (Section 4.1.2's RQ-Maps), when entries spill to the In-memory
Overflow Subqueue, and how a core's instruction stream (spin/dequeue/
complete) interacts with it all.

Run:  python examples/request_queue_dynamics.py
"""

from repro.config import ControllerConfig
from repro.hw.controller import HardHarvestController
from repro.hw.isa import CoreIsa


def chunk_bar(ctrl, total=32):
    """One character per chunk, labeled by owning VM."""
    owner = {}
    for vm_id, qm in ctrl.qms.items():
        for c in qm.subqueue.rq_map:
            owner[c] = str(vm_id % 10)
    return "".join(owner.get(c, ".") for c in range(total))


def show(ctrl, label):
    print(f"{label:44s} [{chunk_bar(ctrl)}]")
    for vm_id, qm in sorted(ctrl.qms.items()):
        sq = qm.subqueue
        if sq.total_pending():
            print(f"    VM {vm_id}: {sq.hw_occupancy} in hardware, "
                  f"{len(sq.overflow)} in overflow "
                  f"(capacity {sq.capacity})")


def main() -> None:
    ctrl = HardHarvestController(
        ControllerConfig(num_chunks=32, entries_per_chunk=4), num_cores=36
    )
    print("Chunk map legend: digit = owning VM id, '.' = free chunk\n")

    ctrl.register_vm(0, True, 8)
    show(ctrl, "VM 0 arrives (8 cores): takes everything")

    ctrl.register_vm(1, True, 8)
    show(ctrl, "VM 1 arrives (8 cores): takes half from VM 0's tail")

    # Traffic builds up on VM 0 beyond its hardware capacity.
    for i in range(80):
        ctrl.deliver(0, f"r{i}")
    show(ctrl, "80 requests arrive for VM 0: overflow engages")

    ctrl.register_vm(2, True, 8)
    show(ctrl, "VM 2 arrives: VM 0/1 shed tail chunks, entries spill")

    # A core drains VM 0 through the instruction surface.
    isa = CoreIsa(ctrl, core_id=0, my_manager=0)
    drained = 0
    while True:
        req = isa.dequeue()
        if req is None:
            break
        isa.complete(req)
        drained += 1
    show(ctrl, f"core 0 drains VM 0 ({drained} dequeue+complete pairs)")
    print(f"    instruction stats: {isa.stats}")

    ctrl.deregister_vm(0)
    show(ctrl, "VM 0 departs: its chunks join the tails of VM 1/2")

    print("\nInvariant held throughout:",
          "every chunk owned by exactly one subqueue or the free pool ->",
          ctrl.rq.chunk_owner_invariant())


if __name__ == "__main__":
    main()
