#!/usr/bin/env python3
"""Scenario: the HardHarvest controller, step by step.

Drives the hardware substrate directly — Request Queue chunks, Queue
Managers, VM State Register Sets, the Request Context Memory — through the
paper's Figure 8 event paths: request arrival, core re-assignment, and core
reclamation, printing the controller state at each step.

Run:  python examples/controller_walkthrough.py
"""

from repro.config import ControllerConfig
from repro.hw.context import SavedContext
from repro.hw.controller import HardHarvestController
from repro.hw.storage_cost import compute_storage_report
from repro.config import HierarchyConfig


def show(ctrl, label):
    print(f"--- {label}")
    for vm_id, qm in sorted(ctrl.qms.items()):
        kind = "Primary" if qm.is_primary else "Harvest"
        print(
            f"  VM {vm_id} ({kind:7s}): {len(qm.subqueue.rq_map):2d} chunks, "
            f"{qm.subqueue.hw_occupancy} queued, bound cores {sorted(qm.bound_cores)}, "
            f"on loan {sorted(qm.on_loan)}"
        )


def main() -> None:
    ctrl = HardHarvestController(ControllerConfig(), num_cores=36)

    # VM creation: QM + VM State Register Set + proportional RQ chunks.
    primary = ctrl.register_vm(0, is_primary=True, num_cores=4)
    for core in range(4):
        primary.bind_core(core)
    harvest = ctrl.register_vm(8, is_primary=False, num_cores=4)
    for core in range(32, 36):
        harvest.bind_core(core)
    show(ctrl, "after VM registration (chunks split by core share)")
    print(f"  VM 0 CR3 register: {primary.state_registers.read('CR3'):#x}; "
          f"VM 8 CR3: {harvest.state_registers.read('CR3'):#x}")

    # Figure 8(a): request arrival — NIC deposits payload, QM queues pointer.
    for i in range(3):
        ctrl.deliver(0, f"request-{i}")
    show(ctrl, "after 3 arrivals for VM 0")

    # A core dequeues work (the user-level dequeue instruction).
    req = primary.dequeue()
    print(f"  core 0 dequeued {req!r} "
          f"(control-tree latency {ctrl.control_latency_ns()} ns)")

    # Figure 8(b): core re-assignment — core 1 finds no work and is lent.
    primary.lend_core(1)
    show(ctrl, "after core 1 is lent to the Harvest VM")

    # The Harvest VM's process state is saved/restored via the Request
    # Context Memory on preemption.
    slot = ctrl.context_memory.save(
        SavedContext(request="batch-unit-17", vm_id=8, program_counter=0xF00)
    )
    print(f"  Harvest context saved to slot {slot} "
          f"(occupancy {ctrl.context_memory.occupancy})")

    # Figure 8(c): reclamation — a Primary request arrives; the QM sees all
    # cores busy and one on loan, interrupts it, and the context swaps.
    ctrl.deliver(0, "request-3")
    ctx = ctrl.context_memory.restore(slot)
    primary.reclaim_core(1)
    print(f"  core 1 reclaimed; Harvest context {ctx.request!r} returned to "
          "the vCPU queue")
    show(ctrl, "after reclamation")

    # What all this hardware costs (Section 6.8).
    report = compute_storage_report(ControllerConfig(), HierarchyConfig(), 36)
    print(f"\nController storage: {report.controller_bytes / 1024:.1f} KB; "
          f"Shared bits: {report.shared_bit_bytes_total / 1024:.1f} KB/server; "
          f"area overhead {report.area_overhead_fraction * 100:.2f}%")


if __name__ == "__main__":
    main()
