#!/usr/bin/env python3
"""Scenario: capacity planning for harvesting with queueing theory.

Before running heavyweight simulations, an operator can reason about
harvesting headroom analytically: a Primary VM is roughly an M/G/c queue,
so Erlang-C tells you how many cores a service *actually* needs for a
latency target — the rest is harvestable. This example sizes each SocialNet
service analytically, then cross-checks the prediction against the
simulator, and finally prints the energy-proportionality gain HardHarvest
extracts from the reclaimed headroom.

Run:  python examples/capacity_planning.py
"""

from repro import SimulationConfig, SystemKind, build_system
from repro.analysis.energy import energy_per_batch_unit, estimate_energy
from repro.analysis.queueing import mgc_mean_wait, utilization
from repro.core.experiment import run_server_raw
from repro.workloads.microservices import SERVICES


def cores_needed(profile, wait_budget_us=100.0, cores_max=4):
    """Smallest core count whose predicted mean wait fits the budget."""
    rate = profile.rps_per_core * cores_max  # offered load of the VM
    service_s = profile.mean_exec_us / 1e6
    for c in range(1, cores_max + 1):
        if utilization(rate, service_s, c) >= 1.0:
            continue
        wait = mgc_mean_wait(rate, service_s, c, profile.exec_cv)
        if wait * 1e6 <= wait_budget_us:
            return c, wait * 1e6
    return cores_max, float("nan")


def main() -> None:
    print("Analytic sizing (M/G/c, 100 µs mean-wait budget, 4-core VMs):")
    print(f"  {'service':10s} {'rho(4 cores)':>12s} {'cores needed':>13s} "
          f"{'pred wait':>10s} {'harvestable':>12s}")
    total_harvestable = 0
    for p in SERVICES:
        rate = p.rps_per_core * 4
        rho = utilization(rate, p.mean_exec_us / 1e6, 4)
        c, wait = cores_needed(p)
        total_harvestable += 4 - c
        print(f"  {p.name:10s} {rho:12.3f} {c:13d} {wait:9.1f}u "
              f"{4 - c:12d}")
    print(f"  analytically harvestable: {total_harvestable} of 32 Primary cores "
          f"(plus blocked-on-I/O time)")

    print("\nCross-check against the simulator:")
    simcfg = SimulationConfig(horizon_ms=250, warmup_ms=40, seed=5)
    base = run_server_raw(build_system(SystemKind.NOHARVEST), simcfg)
    hh = run_server_raw(build_system(SystemKind.HARDHARVEST_BLOCK), simcfg)
    primary_busy = base.average_busy_cores() - 4  # minus batch base cores
    print(f"  measured Primary busy cores: {primary_busy:.1f} "
          f"(sizing said ~{32 - total_harvestable} needed)")
    print(f"  HardHarvest actually harvested its way to "
          f"{hh.average_busy_cores():.1f}/36 busy cores")

    print("\nWhat the reclaimed headroom buys (energy proportionality):")
    for name, sim in (("NoHarvest", base), ("HardHarvest-Block", hh)):
        report = estimate_energy(sim)
        print(f"  {name:18s} {report.average_power_w:6.1f} W avg, "
              f"{energy_per_batch_unit(sim) * 1000:6.1f} mJ per batch unit")


if __name__ == "__main__":
    main()
