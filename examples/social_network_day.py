#!/usr/bin/env python3
"""Scenario: a social-network application weathering traffic bursts.

The paper's motivating workload: the eight SocialNet services (Figure 1's
ComposePost pipeline and friends) run in Primary VMs, each sized for its
peak, while a batch ML-training job harvests idle cores. Bursts are
*correlated* across services — one user-traffic surge fans out through the
whole composition — which is exactly the moment a Primary VM wants its
harvested cores back.

This example runs all five evaluated architectures on the identical burst
pattern and prints the per-service P99 (Figure 11's view), so you can see
where software harvesting hurts (burst-sensitive services) and how
HardHarvest removes the penalty.

Run:  python examples/social_network_day.py
"""

from repro import SimulationConfig, all_systems, run_systems
from repro.workloads.batch import BATCH_BY_NAME
from repro.workloads.microservices import SERVICE_NAMES


def main() -> None:
    simcfg = SimulationConfig(horizon_ms=400, warmup_ms=60, seed=11)
    job = BATCH_BY_NAME["LRTrain"]  # ML training in the Harvest VM

    print("Running the five evaluated architectures on the same bursty day...")
    results = run_systems(all_systems(), simcfg, batch_job=job)

    print()
    header = f"{'service':10s}" + "".join(f"{name:>19s}" for name in results)
    print(header)
    for svc in SERVICE_NAMES:
        row = f"{svc:10s}"
        for res in results.values():
            row += f"{res.p99_ms[svc]:15.2f} ms "
        print(row)
    print("-" * len(header))
    row = f"{'Avg P99':10s}"
    for res in results.values():
        row += f"{res.avg_p99_ms():15.2f} ms "
    print(row)

    print()
    base = results["NoHarvest"]
    for name, res in results.items():
        if name == "NoHarvest":
            continue
        print(
            f"{name:18s}: P99 {res.avg_p99_ms() / base.avg_p99_ms():5.2f}x "
            f"NoHarvest | LRTrain throughput "
            f"{res.batch_units_per_s / base.batch_units_per_s:5.2f}x | "
            f"busy cores {res.avg_busy_cores:5.1f}/36"
        )

    print()
    print("Reading: software harvesting (Harvest-*) trades tail latency for")
    print("utilization; HardHarvest gets the utilization without the tail.")


if __name__ == "__main__":
    main()
