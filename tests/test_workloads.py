"""Tests for workload generation: profiles, memory sampling, load, traces."""

import numpy as np
import pytest

from repro.mem.address import AddressSpace
from repro.workloads.alibaba import (
    MEDIAN_AVG_UTILIZATION,
    P90_MAX_UTILIZATION,
    representative_instance,
    sample_instances,
    utilization_cdf,
    utilization_timeseries,
)
from repro.workloads.batch import BATCH_BY_NAME, BATCH_JOBS, BATCH_NAMES
from repro.workloads.loadgen import (
    generate_arrivals,
    generate_arrivals_correlated,
    generate_arrivals_span,
    generate_burst_schedule,
    mean_rate,
)
from repro.workloads.memory_profile import BatchMemory, ServiceMemory
from repro.workloads.microservices import (
    SERVICE_BY_NAME,
    SERVICE_NAMES,
    SERVICES,
    draw_blocking_calls,
    draw_exec_time_us,
    draw_io_time_us,
)


class TestServiceProfiles:
    def test_eight_services_in_paper_order(self):
        assert SERVICE_NAMES == (
            "Text", "SGraph", "User", "PstStr",
            "UsrMnt", "HomeT", "CPost", "UrlShort",
        )

    def test_characters_match_paper(self):
        # User blocks on I/O most; HomeT is shared-page heavy; UrlShort tiny.
        assert SERVICE_BY_NAME["User"].blocking_calls == max(
            p.blocking_calls for p in SERVICES
        )
        assert SERVICE_BY_NAME["HomeT"].shared_ref_fraction == max(
            p.shared_ref_fraction for p in SERVICES
        )
        assert SERVICE_BY_NAME["UrlShort"].mean_exec_us == min(
            p.mean_exec_us for p in SERVICES
        )
        assert SERVICE_BY_NAME["UrlShort"].blocking_calls == 0

    def test_exec_draw_matches_mean(self):
        rng = np.random.default_rng(0)
        p = SERVICE_BY_NAME["Text"]
        draws = [draw_exec_time_us(p, rng) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(p.mean_exec_us, rel=0.05)

    def test_io_draw_zero_for_urlshort(self):
        rng = np.random.default_rng(0)
        assert draw_io_time_us(SERVICE_BY_NAME["UrlShort"], rng) == 0.0

    def test_blocking_draw_bounds(self):
        rng = np.random.default_rng(0)
        p = SERVICE_BY_NAME["User"]
        draws = [draw_blocking_calls(p, rng) for _ in range(1000)]
        assert min(draws) >= 0
        assert np.mean(draws) == pytest.approx(p.blocking_calls, abs=0.2)

    def test_rates_in_paper_range(self):
        """The paper drives 65-250 RPS per Primary VM core... our calibrated
        values stay within a 2x envelope of that range."""
        for p in SERVICES:
            assert 30 <= p.rps_per_core <= 500


class TestServiceMemory:
    def test_sample_mix(self):
        space = AddressSpace(0)
        p = SERVICE_BY_NAME["Text"]
        mem = ServiceMemory(space, p)
        rng = np.random.default_rng(1)
        region = mem.new_invocation()
        accesses = mem.sample(rng, 2000, region)
        assert len(accesses) == 2000
        instr = sum(1 for _, _, i, _ in accesses if i)
        shared = sum(1 for _, s, _, _ in accesses if s)
        assert 0.2 < instr / 2000 < 0.4
        # All instruction accesses are shared pages.
        for _, s, i, w in accesses:
            if i:
                assert s and not w  # instruction fetches never write

    def test_private_regions_cycle(self):
        space = AddressSpace(0)
        mem = ServiceMemory(space, SERVICE_BY_NAME["Text"])
        regions = [mem.new_invocation() for _ in range(8)]
        # The pool cycles: region 0 reappears.
        assert regions[0] is regions[4]

    def test_regions_do_not_overlap(self):
        space = AddressSpace(0)
        mem = ServiceMemory(space, SERVICE_BY_NAME["Text"])
        spans = [(mem.instr.start_page, mem.instr.num_pages),
                 (mem.shared.start_page, mem.shared.num_pages)]
        for r in mem.private_pool:
            spans.append((r.start_page, r.num_pages))
        spans.sort()
        for (s1, n1), (s2, _n2) in zip(spans, spans[1:]):
            assert s1 + n1 <= s2

    def test_zero_samples(self):
        space = AddressSpace(0)
        mem = ServiceMemory(space, SERVICE_BY_NAME["Text"])
        batch = mem.sample(np.random.default_rng(0), 0, mem.new_invocation())
        assert len(batch) == 0
        assert list(batch) == []


class TestBatchProfiles:
    def test_eight_jobs_in_figure_order(self):
        assert BATCH_NAMES == (
            "BFS", "CC", "DC", "PRank", "LRTrain", "RndFTrain", "Hadoop", "MUMmer",
        )

    def test_memory_intensive_jobs_have_big_footprints(self):
        # RndFTrain is the paper's memory-bound outlier.
        assert BATCH_BY_NAME["RndFTrain"].data_pages == max(
            b.data_pages for b in BATCH_JOBS
        )

    def test_batch_memory_sampling(self):
        space = AddressSpace(8)
        job = BATCH_BY_NAME["BFS"]
        mem = BatchMemory(space, job.code_pages, job.data_pages, job.skew)
        accesses = mem.sample(np.random.default_rng(0), 500)
        assert len(accesses) == 500
        # Mostly data (private) accesses.
        private = sum(1 for _, s, _, _ in accesses if not s)
        assert private > 300

    def test_bad_skew_rejected(self):
        space = AddressSpace(8)
        with pytest.raises(ValueError):
            BatchMemory(space, 10, 10, skew=0.5)


class TestLoadGeneration:
    def test_fixed_count(self):
        rng = np.random.default_rng(0)
        arrivals = generate_arrivals(rng, SERVICES[0], 4, 200)
        assert len(arrivals) == 200
        assert arrivals == sorted(arrivals)

    def test_span_mode_covers_horizon(self):
        rng = np.random.default_rng(0)
        horizon = 200_000_000  # 200 ms
        arrivals = generate_arrivals_span(rng, SERVICES[0], 4, horizon)
        assert arrivals[-1] < horizon
        assert arrivals[-1] > horizon * 0.8

    def test_span_mode_rate_close_to_nominal(self):
        rng = np.random.default_rng(0)
        p = SERVICES[0]
        horizon = 2_000_000_000
        arrivals = generate_arrivals_span(rng, p, 4, horizon)
        # Mean rate is between base and burst rate.
        base = p.rps_per_core * 4
        assert base * 0.8 < mean_rate(arrivals) < base * p.burst_multiplier

    def test_max_count_cap(self):
        rng = np.random.default_rng(0)
        arrivals = generate_arrivals_span(
            rng, SERVICES[0], 4, 10_000_000_000, max_count=50
        )
        assert len(arrivals) == 50

    def test_burst_schedule_windows_ordered_disjoint(self):
        rng = np.random.default_rng(3)
        windows = generate_burst_schedule(rng, 5_000_000_000)
        assert windows
        for (s1, e1), (s2, _e2) in zip(windows, windows[1:]):
            assert s1 < e1 <= s2

    def test_correlated_arrivals_burstier_inside_windows(self):
        rng = np.random.default_rng(4)
        horizon = 4_000_000_000
        windows = [(1_000_000_000, 1_500_000_000)]
        arrivals = generate_arrivals_correlated(
            np.random.default_rng(5), SERVICES[0], 4, horizon, windows
        )
        in_burst = sum(1 for t in arrivals if 1_000_000_000 <= t < 1_500_000_000)
        burst_rate = in_burst / 0.5
        out_rate = (len(arrivals) - in_burst) / 3.5
        assert burst_rate > 2 * out_rate

    def test_load_scale(self):
        p = SERVICES[0]
        a1 = generate_arrivals_span(np.random.default_rng(7), p, 4, 10**9, 1.0)
        a2 = generate_arrivals_span(np.random.default_rng(7), p, 4, 10**9, 2.0)
        assert len(a2) > 1.5 * len(a1)

    def test_non_positive_load_scale_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="load_scale must be positive"):
            generate_arrivals(rng, SERVICES[0], 4, 10, load_scale=0.0)
        with pytest.raises(ValueError, match="load_scale must be positive"):
            generate_arrivals(rng, SERVICES[0], 4, 10, load_scale=-1.0)


class TestAlibabaTraces:
    def test_published_anchors(self):
        """Fig 2: 50% of instances avg < 16.1%; 90% max < 40.7%."""
        rng = np.random.default_rng(42)
        instances = sample_instances(rng, 20_000)
        avg = np.array([i.avg for i in instances])
        mx = np.array([i.max for i in instances])
        assert np.median(avg) == pytest.approx(MEDIAN_AVG_UTILIZATION, abs=0.03)
        assert np.percentile(mx, 90) == pytest.approx(P90_MAX_UTILIZATION, abs=0.06)

    def test_max_at_least_avg(self):
        instances = sample_instances(np.random.default_rng(0), 1000)
        for inst in instances:
            assert 0 < inst.avg <= inst.max <= 1.0

    def test_cdf_monotone(self):
        instances = sample_instances(np.random.default_rng(0), 500)
        xs, ys = utilization_cdf([i.avg for i in instances])
        assert (np.diff(ys) >= 0).all()
        assert ys[-1] == pytest.approx(1.0)

    def test_timeseries_bursty_shape(self):
        inst = representative_instance()
        series = utilization_timeseries(np.random.default_rng(1), inst)
        assert len(series) == 17  # 510 s at 30 s granularity
        assert series.max() <= inst.max + 1e-9
        assert series.min() >= 0
        # Bursts exist: the max clearly exceeds the mean.
        assert series.max() > 1.5 * series.mean()
