"""Tests for remaining substrate pieces: units, RNG, addresses, DRAM, NIC."""

import numpy as np
import pytest

from repro.cluster.nic import ARRIVAL_PATH_NS, PAYLOAD_LINES, Nic
from repro.config import HierarchyConfig, MemoryConfig
from repro.mem.address import PAGE_BYTES, AddressSpace, Region
from repro.mem.dram import DramModel
from repro.mem.hierarchy import build_llc
from repro.sim.rng import RngRegistry
from repro.sim.units import KB, MB, MS, SEC, US, cycles_to_ns, ns_to_cycles


class TestUnits:
    def test_constants(self):
        assert US == 1_000 and MS == 1_000_000 and SEC == 1_000_000_000
        assert MB == 1024 * KB

    def test_cycles_round_trip(self):
        assert cycles_to_ns(3, 3.0) == 1
        assert cycles_to_ns(1000, 3.0) == 333
        assert ns_to_cycles(1, 3.0) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            cycles_to_ns(1, 0.0)


class TestRngRegistry:
    def test_streams_independent_and_stable(self):
        reg1 = RngRegistry(1)
        reg2 = RngRegistry(1)
        a1 = reg1.stream("a").random(5)
        a2 = reg2.stream("a").random(5)
        assert np.allclose(a1, a2)  # reproducible
        b = reg1.stream("b").random(5)
        assert not np.allclose(a1, b)  # independent streams

    def test_stream_continues(self):
        reg = RngRegistry(1)
        first = reg.stream("x").random()
        second = reg.stream("x").random()
        assert first != second

    def test_fresh_restarts(self):
        reg = RngRegistry(1)
        first = reg.stream("x").random()
        restarted = reg.fresh("x").random()
        assert restarted == first

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("a").random(4)
        b = RngRegistry(2).stream("a").random(4)
        assert not np.allclose(a, b)

    def test_seed_type_checked(self):
        with pytest.raises(TypeError):
            RngRegistry("seed")


class TestAddressSpace:
    def test_regions_disjoint_within_vm(self):
        space = AddressSpace(3)
        r1 = space.alloc(10, shared=True)
        r2 = space.alloc(5, shared=False)
        assert r1.start_page + r1.num_pages <= r2.start_page

    def test_vm_namespaces_never_collide(self):
        a = AddressSpace(1).alloc(4, True)
        b = AddressSpace(2).alloc(4, True)
        assert a.addr(0) != b.addr(0)
        # High bits carry the VM id.
        assert a.addr(0) >> 44 == 1
        assert b.addr(0) >> 44 == 2

    def test_bounds_checked(self):
        region = AddressSpace(0).alloc(2, True)
        with pytest.raises(IndexError):
            region.addr(2)
        with pytest.raises(IndexError):
            region.addr(0, PAGE_BYTES)

    def test_line_addr_wraps(self):
        region = AddressSpace(0).alloc(1, True)
        assert region.line_addr(0, 0) == region.addr(0)
        assert region.line_addr(0, 64) == region.addr(0)  # wraps at 64

    def test_validation(self):
        with pytest.raises(ValueError):
            AddressSpace(-1)
        with pytest.raises(ValueError):
            Region(0, 0, 0, True)


class TestDram:
    def test_relaxed_latency_is_base(self):
        dram = DramModel(MemoryConfig(access_ns=90))
        # Sparse accesses: no pressure.
        lat = [dram.access_latency(i * 1_000_000) for i in range(10)]
        assert lat[-1] == 90

    def test_saturation_inflates_latency(self):
        dram = DramModel(MemoryConfig(access_ns=90, bandwidth_gbps=10.0))
        # Hammer with back-to-back accesses (gap 0-1 ns << 6.4 ns saturation).
        last = 90
        for i in range(3000):
            last = dram.access_latency(i)
        assert last > 90
        assert dram.accesses == 3000


class TestNic:
    def test_deliver_warms_llc_and_counts(self):
        nic = Nic()
        llc = build_llc("llc", HierarchyConfig(), 4)
        called = []
        lat = nic.deliver(llc, 0x5000, lambda: called.append(1))
        assert lat == ARRIVAL_PATH_NS
        assert called == [1]
        assert nic.packets_received == 1
        # Payload lines are resident (DDIO).
        from repro.mem.partition import full_mask

        assert llc.probe(0x5000, full_mask(llc.array.ways))
        assert llc.probe(0x5000 + 64 * (PAYLOAD_LINES - 1), full_mask(llc.array.ways))
