"""Tests: the Request Context Memory and VM State Registers are genuinely
exercised by the hardware engine (Sections 4.1.4/4.1.8)."""

from repro.config import SimulationConfig
from repro.core.experiment import run_server_raw
from repro.core.presets import harvest_block, hardharvest_block, hardharvest_term

FAST = SimulationConfig(horizon_ms=90, warmup_ms=15, accesses_per_segment=8, seed=13)


def test_blocked_requests_park_in_context_memory():
    sim = run_server_raw(hardharvest_block(), FAST)
    mem = sim.controller.context_memory
    # Every blocking call saved a context; every resume restored one. Any
    # residue belongs to batch partial units awaiting resumption when the
    # run stopped.
    leftover = sum(
        1 for u in sim.harvest_vm.partial_units if u.context_slot is not None
    )
    assert mem.saves > 100
    assert mem.saves == mem.restores + leftover
    assert mem.occupancy == leftover
    assert mem.highwater >= 2


def test_preempted_batch_units_round_trip_contexts():
    sim = run_server_raw(hardharvest_term(), FAST)
    mem = sim.controller.context_memory
    assert sim.harvest_vm.preemptions > 0
    assert mem.saves == mem.restores + len(
        [u for u in sim.harvest_vm.partial_units if u.context_slot is not None]
    )


def test_software_systems_do_not_use_context_memory():
    sim = run_server_raw(harvest_block(), FAST)
    assert sim.controller is None
    # Requests never carry context slots in software mode.
    for vm in sim.primary_vms:
        assert vm.queue.pending() == 0


def test_vm_state_registers_follow_core_ownership():
    sim = run_server_raw(hardharvest_block(), FAST)
    for core in sim.cores:
        if core.loaded_cr3 is None:
            continue  # never transitioned
        expected = sim.controller.qm_for(core.running_vm_id).state_registers.read("CR3")
        assert core.loaded_cr3 == expected
