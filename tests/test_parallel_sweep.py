"""Tests for sweep enumeration and the parallel runner.

The load-bearing guarantees:

* enumeration order is deterministic and results are keyed by point;
* the parallel path is *bit-identical* to the serial path;
* a second cached invocation is served >= 90% from cache (the acceptance
  criterion of the sweep substrate);
* the determinism guard catches a cached result that disagrees with a
  fresh recompute;
* crashes are retried per point with backoff, then surface as
  :class:`SweepError` (or as quarantine records when opted in).

Configs here are tiny (about 12 simulated ms) — these tests exercise the
orchestration, not the simulator's statistics.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.config import SimulationConfig, SystemKind
from repro.core.experiment import run_cluster, run_systems
from repro.core.export import server_result_to_dict
from repro.core.presets import all_systems, build_system
from repro.parallel import (
    DeterminismError,
    ResultCache,
    SweepError,
    SweepPoint,
    SweepSpec,
    canonical_json,
    parse_seeds,
    run_sweep,
)
from repro.workloads.batch import BATCH_JOBS

TINY = SimulationConfig(horizon_ms=12.0, warmup_ms=2.0, accesses_per_segment=3)


def tiny_spec(n_systems=2, seeds=(0, 1)) -> SweepSpec:
    systems = dict(list(all_systems().items())[:n_systems])
    return SweepSpec(systems=systems, seeds=seeds, sim=TINY)


def fingerprints(results) -> dict:
    return {
        label: canonical_json(server_result_to_dict(r))
        for label, r in results.items()
    }


# ---------------------------------------------------------------------------
# Enumeration
# ---------------------------------------------------------------------------
def test_parse_seeds_grammar():
    assert parse_seeds("0..7") == tuple(range(8))
    assert parse_seeds("3") == (3,)
    assert parse_seeds("0,2,8..11") == (0, 2, 8, 9, 10, 11)
    with pytest.raises(ValueError):
        parse_seeds("5..2")
    with pytest.raises(ValueError):
        parse_seeds(",")


def test_spec_enumeration_order_and_labels():
    spec = tiny_spec(n_systems=2, seeds=(7, 3))
    labels = [p.label for p in spec.points()]
    assert labels == [
        "NoHarvest/seed=7", "NoHarvest/seed=3",
        "Harvest-Term/seed=7", "Harvest-Term/seed=3",
    ]
    assert spec.size() == len(labels)
    seeds = [p.sim.seed for p in spec.points()]
    assert seeds == [7, 3, 7, 3]


def test_spec_override_axes():
    spec = SweepSpec(
        systems={"NoHarvest": build_system(SystemKind.NOHARVEST)},
        seeds=(1,),
        sim=TINY,
        overrides={"load1.5": {"load_scale": 1.5}, "hot": {"accesses_per_segment": 6}},
    )
    points = list(spec.points())
    assert [p.label for p in points] == [
        "NoHarvest/seed=1/load1.5", "NoHarvest/seed=1/hot",
    ]
    assert points[0].sim.load_scale == 1.5
    assert points[1].sim.accesses_per_segment == 6
    with pytest.raises(ValueError):
        SweepSpec(
            systems={"NoHarvest": build_system(SystemKind.NOHARVEST)},
            sim=TINY,
            overrides={"bad": {"not_a_field": 1}},
        )


def test_payload_excludes_label_and_is_canonical():
    base = tiny_spec(n_systems=1, seeds=(5,))
    point = next(iter(base.points()))
    renamed = SweepPoint(
        label="other-name", system=point.system, sim=point.sim,
        batch_job=point.batch_job, server_index=point.server_index,
    )
    assert canonical_json(point.payload()) == canonical_json(renamed.payload())


def test_configs_pickle_for_process_pool_workers():
    """Everything that crosses the worker boundary must pickle cleanly."""
    for obj in (build_system(SystemKind.HARDHARVEST_BLOCK), TINY, BATCH_JOBS[0]):
        assert pickle.loads(pickle.dumps(obj)) == obj


def test_duplicate_labels_rejected():
    point = next(iter(tiny_spec(1, (0,)).points()))
    with pytest.raises(ValueError, match="duplicate"):
        run_sweep([point, point])


# ---------------------------------------------------------------------------
# Parallel execution parity and caching
# ---------------------------------------------------------------------------
def test_parallel_results_bit_identical_to_serial_and_cache_serves_rerun(tmp_path):
    spec = tiny_spec(n_systems=2, seeds=(0, 1))
    serial = run_sweep(spec, workers=1)
    assert serial.computed == 4 and serial.from_cache == 0
    assert serial.cache_stats is None

    cache = ResultCache(root=str(tmp_path))
    parallel = run_sweep(spec, workers=2, cache=cache)
    assert list(parallel.results) == list(serial.results)  # point order
    assert fingerprints(parallel.results) == fingerprints(serial.results)
    assert cache.stats.misses == 4 and cache.stats.stores == 4

    rerun = run_sweep(spec, workers=2, cache=ResultCache(root=str(tmp_path)))
    assert rerun.computed == 0 and rerun.from_cache == 4
    assert fingerprints(rerun.results) == fingerprints(serial.results)


def test_acceptance_all_systems_sweep_second_run_90pct_cached(tmp_path):
    """The ISSUE acceptance criterion at test scale: all five systems,
    multi-seed grid, workers=4 — parallel == serial bit-for-bit, and the
    second invocation is served >= 90% from cache (here: 100%)."""
    spec = SweepSpec(systems=all_systems(), seeds=(0, 1), sim=TINY)
    serial = run_sweep(spec, workers=1)
    cold = run_sweep(spec, workers=4, cache=ResultCache(root=str(tmp_path)))
    assert fingerprints(cold.results) == fingerprints(serial.results)

    warm_cache = ResultCache(root=str(tmp_path))
    warm = run_sweep(spec, workers=4, cache=warm_cache)
    assert warm.from_cache == spec.size() == 10
    assert warm_cache.stats.hits / spec.size() >= 0.90
    assert fingerprints(warm.results) == fingerprints(serial.results)


def test_verify_cached_accepts_honest_cache(tmp_path):
    spec = tiny_spec(n_systems=1, seeds=(0,))
    run_sweep(spec, workers=1, cache=ResultCache(root=str(tmp_path)))
    out = run_sweep(
        spec, workers=1, cache=ResultCache(root=str(tmp_path)), verify_cached=True
    )
    assert out.from_cache == 1


def test_verify_cached_trips_on_tampered_result(tmp_path):
    """Regression guard: if a cached result and a fresh recompute of the
    same point ever diverge (e.g. hidden global-RNG use in the server
    workers), the runner must refuse to serve the cache."""
    spec = tiny_spec(n_systems=1, seeds=(0,))
    cache = ResultCache(root=str(tmp_path))
    run_sweep(spec, workers=1, cache=cache)
    point = next(iter(spec.points()))
    key = cache.key(point.payload())
    entry = cache.read_entry(key)
    entry["result"]["avg_busy_cores"] += 1.0  # simulate nondeterminism
    cache.put(key, entry["payload"], entry["result"])
    with pytest.raises(DeterminismError, match="bit-identical"):
        run_sweep(
            spec, workers=1, cache=ResultCache(root=str(tmp_path)),
            verify_cached=True,
        )


# ---------------------------------------------------------------------------
# Failure policy
# ---------------------------------------------------------------------------
def test_crashed_point_is_retried_once(monkeypatch):
    import repro.parallel.runner as runner_mod

    real = runner_mod.execute_payload
    calls = {"n": 0}

    def flaky(payload_json):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("simulated worker crash")
        return real(payload_json)

    monkeypatch.setattr(runner_mod, "execute_payload", flaky)
    out = run_sweep(tiny_spec(n_systems=1, seeds=(0,)), workers=1)
    assert out.retried == 1
    assert "simulated worker crash" in next(iter(out.retry_errors.values()))
    assert list(out.results) == ["NoHarvest/seed=0"]


def test_point_exhausting_attempts_raises_sweep_error(monkeypatch):
    import repro.parallel.runner as runner_mod

    def always_broken(payload_json):
        raise RuntimeError("hopeless")

    monkeypatch.setattr(runner_mod, "execute_payload", always_broken)
    monkeypatch.setattr(runner_mod, "_sleep", lambda s: None)
    with pytest.raises(SweepError, match=r"failed after 3 attempt\(s\).*hopeless"):
        run_sweep(tiny_spec(n_systems=1, seeds=(0,)), workers=1)


def test_retry_policy_delay_is_capped_exponential():
    from repro.parallel import RetryPolicy

    policy = RetryPolicy(backoff_base_s=0.05, backoff_multiplier=2.0,
                         backoff_cap_s=0.15)
    assert policy.delay(1) == pytest.approx(0.05)
    assert policy.delay(2) == pytest.approx(0.10)
    assert policy.delay(3) == pytest.approx(0.15)  # capped, not 0.20
    assert policy.delay(10) == pytest.approx(0.15)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_multiplier=0.5)


def test_backoff_sleeps_between_retry_rounds(monkeypatch):
    import repro.parallel.runner as runner_mod

    def always_broken(payload_json):
        raise RuntimeError("hopeless")

    delays = []
    monkeypatch.setattr(runner_mod, "execute_payload", always_broken)
    monkeypatch.setattr(runner_mod, "_sleep", delays.append)
    with pytest.raises(SweepError):
        run_sweep(tiny_spec(n_systems=1, seeds=(0,)), workers=1)
    # max_attempts=3 => two retry rounds, exponential from the base.
    assert delays == [pytest.approx(0.05), pytest.approx(0.10)]


def test_retry_recomputes_only_failed_points(monkeypatch):
    """The retry granularity fix: siblings that succeeded on the first
    attempt are banked — retry rounds re-run the failed points alone."""
    import repro.parallel.runner as runner_mod

    real = runner_mod.execute_payload
    calls: dict = {}

    def flaky(payload_json):
        calls[payload_json] = calls.get(payload_json, 0) + 1
        if json.loads(payload_json)["simulation"]["seed"] == 1 \
                and calls[payload_json] == 1:
            raise RuntimeError("first-attempt crash")
        return real(payload_json)

    monkeypatch.setattr(runner_mod, "execute_payload", flaky)
    monkeypatch.setattr(runner_mod, "_sleep", lambda s: None)
    spec = tiny_spec(n_systems=2, seeds=(0, 1))
    out = run_sweep(spec, workers=1)
    assert out.retried == 2  # one seed=1 point per system
    by_seed = {
        json.loads(payload)["simulation"]["seed"]: n
        for payload, n in calls.items()
    }
    assert by_seed == {0: 1, 1: 2}  # seed-0 points never re-ran
    assert list(out.results) == [p.label for p in spec.points()]


def test_quarantine_keeps_partial_results(monkeypatch):
    import repro.parallel.runner as runner_mod

    real = runner_mod.execute_payload

    def poisoned(payload_json):
        if json.loads(payload_json)["simulation"]["seed"] == 1:
            raise RuntimeError("hopeless point")
        return real(payload_json)

    monkeypatch.setattr(runner_mod, "execute_payload", poisoned)
    monkeypatch.setattr(runner_mod, "_sleep", lambda s: None)
    out = run_sweep(tiny_spec(n_systems=1, seeds=(0, 1)), workers=1,
                    quarantine=True)
    assert list(out.results) == ["NoHarvest/seed=0"]
    assert list(out.quarantined) == ["NoHarvest/seed=1"]
    assert "hopeless point" in out.quarantined["NoHarvest/seed=1"]
    assert out.retried == 0  # it never recovered


def test_chunk_failure_is_isolated_to_guilty_point(monkeypatch):
    """Inside a multi-point chunk, one crashing point reports its error
    while chunk-mates' results survive (no chunk-wide failure)."""
    import repro.parallel.runner as runner_mod

    if __import__("multiprocessing").get_start_method() != "fork":
        pytest.skip("needs fork start method to inherit the monkeypatch")

    real = runner_mod.execute_payload

    def poisoned(payload_json):
        if json.loads(payload_json)["simulation"]["seed"] == 1:
            raise RuntimeError("guilty point")
        return real(payload_json)

    monkeypatch.setattr(runner_mod, "execute_payload", poisoned)
    spec = tiny_spec(n_systems=2, seeds=(0, 1))
    tasks = [(p.label, canonical_json(p.payload())) for p in spec.points()]
    done, failed, rebuilds = runner_mod._execute_batch(
        tasks, workers=2, task_timeout=None, chunk_size=2,
    )
    expected_failed = sorted(
        p.label for p in spec.points() if p.label.endswith("seed=1")
    )
    expected_done = sorted(
        p.label for p in spec.points() if p.label.endswith("seed=0")
    )
    assert sorted(failed) == expected_failed
    assert all("guilty point" in err for err in failed.values())
    assert sorted(done) == expected_done
    assert rebuilds == 0


def test_broken_pool_is_rebuilt_and_sweep_completes(monkeypatch, tmp_path):
    """A worker dying hard (os._exit, the SIGKILL/OOM shape) poisons the
    whole pool; the batch must rebuild it, resubmit the lost chunks, and
    still deliver every result bit-identically."""
    import repro.parallel.runner as runner_mod

    if __import__("multiprocessing").get_start_method() != "fork":
        pytest.skip("needs fork start method to inherit the monkeypatch")

    real = runner_mod.execute_payload
    bomb = tmp_path / "armed"
    bomb.write_text("armed")

    def kamikaze(payload_json):
        import os as _os

        if json.loads(payload_json)["simulation"]["seed"] == 1:
            try:
                _os.remove(str(bomb))  # detonate exactly once
            except FileNotFoundError:
                pass
            else:
                _os._exit(1)  # kills the pool worker: no exception, no result
        return real(payload_json)

    monkeypatch.setattr(runner_mod, "execute_payload", kamikaze)
    monkeypatch.setattr(runner_mod, "_sleep", lambda s: None)
    spec = tiny_spec(n_systems=1, seeds=(0, 1, 2, 3))
    out = run_sweep(spec, workers=2)
    assert out.pool_rebuilds >= 1
    assert out.retried >= 1  # the lost chunk's points came back via retry
    serial = run_sweep(spec, workers=1)
    assert fingerprints(out.results) == fingerprints(serial.results)


# ---------------------------------------------------------------------------
# Wiring: run_systems / run_cluster workers= / cache= paths
# ---------------------------------------------------------------------------
def test_run_systems_workers_path_matches_serial(tmp_path):
    systems = dict(list(all_systems().items())[:2])
    serial = run_systems(systems, TINY)
    fanned = run_systems(
        systems, TINY, workers=2, cache=ResultCache(root=str(tmp_path))
    )
    assert list(fanned) == list(serial)
    assert fingerprints(fanned) == fingerprints(serial)


def test_run_cluster_workers_path_matches_serial(tmp_path):
    system = build_system(SystemKind.NOHARVEST)
    simcfg = SimulationConfig(
        horizon_ms=12.0, warmup_ms=2.0, accesses_per_segment=3,
        servers_to_simulate=2,
    )
    serial = run_cluster(system, simcfg)
    fanned = run_cluster(
        system, simcfg, workers=2, cache=ResultCache(root=str(tmp_path))
    )
    assert [s.batch_job for s in fanned.servers] == [
        s.batch_job for s in serial.servers
    ]
    assert [server_result_to_dict(s) for s in fanned.servers] == [
        server_result_to_dict(s) for s in serial.servers
    ]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_sweep_command_cold_then_cached(tmp_path, capsys):
    from repro.__main__ import main

    argv = ["sweep", "--systems", "NoHarvest,HardHarvest-Block",
            "--seeds", "0..1", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--horizon-ms", "12", "--accesses", "3",
            "--json", str(tmp_path / "out.json"),
            "--csv", str(tmp_path / "out.csv")]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "Avg P99 across 2 seed(s)" in out
    assert "4 computed, 0 from cache" in out
    assert (tmp_path / "out.json").exists()
    assert (tmp_path / "out.csv").exists()

    assert main(argv[:-4]) == 0  # rerun without export flags
    out = capsys.readouterr().out
    assert "0 computed, 4 from cache" in out
    assert "100% hit rate" in out


def test_cli_sweep_rejects_unknown_system(capsys):
    from repro.__main__ import main

    assert main(["sweep", "--systems", "NotASystem", "--seeds", "0"]) == 2
    assert "unknown system" in capsys.readouterr().err
