"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.belady import belady_hit_rate, replay_policy
from repro.hw.request_queue import RequestQueue, Subqueue
from repro.mem.cache import SetAssocArray
from repro.mem.partition import WayPartition, full_mask
from repro.mem.replacement import (
    CacheSet,
    HardHarvestPolicy,
    LruPolicy,
    RripPolicy,
)
from repro.sim.engine import Simulator


# ---------------------------------------------------------------------------
# Event engine
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=60))
def test_engine_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda t=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


# ---------------------------------------------------------------------------
# Replacement policies: generic safety invariants
# ---------------------------------------------------------------------------
policy_strategy = st.sampled_from(
    [
        LruPolicy(),
        RripPolicy(),
        HardHarvestPolicy(0b0011, 0.75),
        HardHarvestPolicy(0b0110, 0.5),
        HardHarvestPolicy(0, 1.0),
    ]
)


@given(
    policy=policy_strategy,
    accesses=st.lists(
        st.tuples(st.integers(0, 30), st.booleans()), min_size=1, max_size=200
    ),
    allowed=st.sampled_from([0b1111, 0b0011, 0b1100, 0b0001]),
)
@settings(max_examples=120, deadline=None)
def test_policy_victim_always_in_allowed_mask(policy, accesses, allowed):
    """Whatever the access stream, victims stay inside the allowed ways and
    lookups after a fill always hit."""
    cset = CacheSet(4)
    for tag, shared in accesses:
        way = cset.find(tag, allowed)
        if way >= 0:
            policy.on_hit(cset, way)
            continue
        victim = policy.choose_victim(cset, shared, allowed)
        assert (allowed >> victim) & 1
        cset.tags[victim] = tag
        cset.valid[victim] = True
        cset.shared[victim] = shared
        policy.on_insert(cset, victim, shared)
        assert cset.find(tag, allowed) == victim


@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 50), st.booleans()), min_size=1, max_size=300
    )
)
@settings(max_examples=60, deadline=None)
def test_harvest_vm_fills_never_touch_non_harvest_ways(accesses):
    """Partitioning isolation: accesses restricted to the harvest mask can
    never install state outside it."""
    harvest = 0b0011
    arr = SetAssocArray("iso", 4, 4, HardHarvestPolicy(harvest, 0.75))
    for tag, shared in accesses:
        arr.access(tag % 4, tag, shared, harvest)
    arr.settle()
    for cset in arr.sets.values():
        for w in range(4):
            if cset.valid[w]:
                assert (harvest >> w) & 1


@given(
    accesses=st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 40), st.booleans()),
        min_size=1,
        max_size=300,
    ),
    ways=st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_belady_dominates_online_policies(accesses, ways):
    """Belady's MIN is an upper bound for every online policy on any trace."""
    trace = [(s, t, sh) for s, t, sh in accesses]
    opt = belady_hit_rate(trace, ways)
    mask = (1 << ways) - 1
    for policy in (LruPolicy(), RripPolicy(), HardHarvestPolicy(mask >> 1, 0.75)):
        assert replay_policy(trace, ways, policy) <= opt + 1e-9


@given(
    ways=st.integers(2, 16),
    frac=st.floats(0.05, 0.95),
)
def test_partition_masks_disjoint_and_complete(ways, frac):
    part = WayPartition.split(ways, frac)
    assert part.harvest & part.non_harvest == 0
    assert part.harvest | part.non_harvest == full_mask(ways)
    assert 1 <= part.harvest_way_count <= ways - 1


# ---------------------------------------------------------------------------
# Cache flush semantics
# ---------------------------------------------------------------------------
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("access"), st.integers(0, 3), st.integers(0, 20)),
            st.tuples(st.just("flush"), st.integers(0, 15), st.just(0)),
        ),
        min_size=1,
        max_size=120,
    )
)
@settings(max_examples=80, deadline=None)
def test_lazy_flush_matches_eager_model(ops):
    """The epoch-based lazy flush must be observationally equivalent to an
    eagerly-invalidated reference model."""
    arr = SetAssocArray("lazy", 4, 4, LruPolicy())
    reference = {}  # (set, tag) -> way, mirrored eagerly
    mask_all = full_mask(4)
    for op, a, b in ops:
        if op == "access":
            got = arr.access(a, b, False, mask_all)
            want = (a, b) in reference
            assert got == want
            if not want:
                # Mirror the fill and any eviction.
                arr_set = arr.sets[a]
                filled_way = arr_set.find(b, mask_all)
                # Remove whatever reference had in that way.
                for key, way in list(reference.items()):
                    if key[0] == a and way == filled_way:
                        del reference[key]
                reference[(a, b)] = filled_way
        else:
            way_mask = a & mask_all
            arr.flush_ways(way_mask)
            for key, way in list(reference.items()):
                if (way_mask >> way) & 1:
                    del reference[key]


# ---------------------------------------------------------------------------
# Request queue invariants
# ---------------------------------------------------------------------------
@given(
    n_vms=st.integers(1, 6),
    chunks=st.integers(8, 32),
)
def test_chunk_ownership_invariant_after_registrations(n_vms, chunks):
    rq = RequestQueue(chunks, 4)
    for vm in range(n_vms):
        rq.create_subqueue(vm, max(1, chunks // n_vms))
    assert rq.chunk_owner_invariant()
    # Tear down in reverse; invariant holds throughout.
    for vm in range(n_vms - 1, -1, -1):
        rq.destroy_subqueue(vm)
        assert rq.chunk_owner_invariant()


@given(st.lists(st.sampled_from(["enq", "deq", "block", "ready", "done"]), max_size=200))
@settings(max_examples=80, deadline=None)
def test_subqueue_state_machine_never_corrupts(script):
    """Drive the subqueue with arbitrary operation scripts; counts stay
    consistent and FIFO order among ready entries is preserved."""
    sq = Subqueue(0, entries_per_chunk=8)
    sq.grant_chunk(0)
    next_id = 0
    running = []
    blocked = []
    enqueued = []
    for op in script:
        if op == "enq":
            sq.enqueue(next_id)
            enqueued.append(next_id)
            next_id += 1
        elif op == "deq":
            got = sq.dequeue_ready()
            if got is not None:
                assert got == enqueued.pop(0)
                running.append(got)
        elif op == "block" and running:
            req = running.pop(0)
            sq.mark_blocked(req)
            blocked.append(req)
        elif op == "ready" and blocked:
            req = blocked.pop(0)
            sq.mark_ready(req)
            # Entries keep their original FIFO slot, so the ready order is
            # ascending id: re-insert in sorted position.
            import bisect

            bisect.insort(enqueued, req)
        elif op == "done" and running:
            sq.complete(running.pop())
    assert sq.total_pending() == len(enqueued) + len(running) + len(blocked)
