"""Unit tests for statistics primitives."""

import pytest

from repro.sim.stats import (
    Breakdown,
    BreakdownRecorder,
    Counter,
    LatencyRecorder,
    UtilizationTracker,
)


class TestLatencyRecorder:
    def test_percentiles_exact(self):
        rec = LatencyRecorder()
        for v in range(1, 101):
            rec.record(v)
        assert rec.p50() == pytest.approx(50.5)
        assert rec.percentile(99) == pytest.approx(99.01)
        assert rec.count == 100
        assert rec.max() == 100

    def test_empty_raises(self):
        rec = LatencyRecorder("empty")
        with pytest.raises(ValueError):
            rec.p99()
        with pytest.raises(ValueError):
            rec.mean()

    def test_negative_rejected(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.record(-1)

    def test_mean(self):
        rec = LatencyRecorder()
        for v in (10, 20, 30):
            rec.record(v)
        assert rec.mean() == pytest.approx(20.0)


class TestUtilizationTracker:
    def test_time_weighted_average(self):
        t = UtilizationTracker(4)
        t.set_busy(0, 2)
        t.set_busy(100, 4)
        t.set_busy(150, 0)
        # integral: 2*100 + 4*50 + 0*50 = 400 over 200
        assert t.average_busy(200) == pytest.approx(2.0)
        assert t.average_utilization(200) == pytest.approx(0.5)

    def test_extends_last_state_to_horizon(self):
        t = UtilizationTracker(2)
        t.set_busy(0, 1)
        assert t.average_busy(100) == pytest.approx(1.0)

    def test_rejects_overflow_and_time_travel(self):
        t = UtilizationTracker(2)
        with pytest.raises(ValueError):
            t.set_busy(0, 3)
        t.set_busy(50, 1)
        with pytest.raises(ValueError):
            t.set_busy(40, 1)

    def test_adjust(self):
        t = UtilizationTracker(4)
        t.adjust(0, 1)
        t.adjust(10, 1)
        assert t.busy == 2
        t.adjust(20, -2)
        assert t.busy == 0


class TestBreakdown:
    def test_total_and_add(self):
        b = Breakdown(reassign_ns=1, flush_ns=2, execution_ns=3, queueing_ns=4)
        assert b.total() == 10
        b2 = Breakdown(execution_ns=5)
        b.add(b2)
        assert b.execution_ns == 8

    def test_recorder_means(self):
        rec = BreakdownRecorder()
        rec.record("svc", Breakdown(execution_ns=10))
        rec.record("svc", Breakdown(execution_ns=30))
        assert rec.mean("svc").execution_ns == 20
        with pytest.raises(KeyError):
            rec.mean("other")
        assert rec.keys() == ["svc"]


class TestCounter:
    def test_incr_and_get(self):
        c = Counter()
        c.incr("x")
        c.incr("x", 4)
        assert c["x"] == 5
        assert c["missing"] == 0
        assert c.as_dict() == {"x": 5}

    def test_negative_rejected(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.incr("x", -1)
