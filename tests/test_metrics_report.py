"""Tests for result containers, normalization, and report formatting."""

import pytest

from repro.analysis.report import format_series, format_table, with_average
from repro.core.metrics import ClusterResult, ServerResult, normalize, speedup
from repro.sim.stats import Breakdown


def make_server_result(system="S", job="BFS", p99=2.0, busy=10.0, thr=100.0):
    services = {"Text": p99, "User": p99 * 2}
    return ServerResult(
        system=system,
        batch_job=job,
        p99_ms=dict(services),
        p50_ms={k: v / 2 for k, v in services.items()},
        mean_ms={k: v / 1.5 for k, v in services.items()},
        breakdown={k: Breakdown(execution_ns=1000) for k in services},
        avg_busy_cores=busy,
        batch_units_per_s=thr,
        l2_hit_rate=0.8,
        counters={},
        simulated_seconds=0.5,
    )


class TestServerResult:
    def test_averages(self):
        res = make_server_result(p99=2.0)
        assert res.avg_p99_ms() == pytest.approx(3.0)
        assert res.avg_p50_ms() == pytest.approx(1.5)


class TestClusterResult:
    def test_aggregation(self):
        cluster = ClusterResult("S")
        cluster.servers = [
            make_server_result(job="BFS", p99=2.0, busy=10, thr=100),
            make_server_result(job="CC", p99=4.0, busy=20, thr=300),
        ]
        assert cluster.avg_busy_cores() == pytest.approx(15.0)
        assert cluster.throughput_by_job() == {"BFS": 100.0, "CC": 300.0}
        assert cluster.p99_by_service()["Text"] == pytest.approx(3.0)
        assert cluster.avg_p99_ms() == pytest.approx((3.0 + 6.0) / 2)

    def test_per_server_reduction_is_mean_not_sum(self):
        # Aggregates must be means over servers; a third server shifts
        # them by exactly its own contribution.
        two = ClusterResult("S", servers=[
            make_server_result(p99=2.0, busy=12),
            make_server_result(p99=2.0, busy=12),
        ])
        three = ClusterResult("S", servers=two.servers + [
            make_server_result(p99=8.0, busy=36),
        ])
        assert three.avg_busy_cores() == pytest.approx(20.0)
        assert three.avg_p99_ms() == pytest.approx((3.0 + 3.0 + 12.0) / 3)
        # p99_by_service reduces per service, keyed off server 0's services.
        assert three.p99_by_service() == pytest.approx(
            {"Text": (2.0 + 2.0 + 8.0) / 3, "User": (4.0 + 4.0 + 16.0) / 3}
        )

    def test_throughput_last_server_wins_per_job(self):
        cluster = ClusterResult("S", servers=[
            make_server_result(job="BFS", thr=100),
            make_server_result(job="BFS", thr=300),
        ])
        assert cluster.throughput_by_job() == {"BFS": 300.0}

    def test_empty_cluster_aggregation_raises(self):
        empty = ClusterResult("S")
        with pytest.raises(ValueError, match="no servers"):
            empty.avg_p99_ms()
        with pytest.raises(ValueError, match="no servers"):
            empty.avg_busy_cores()
        with pytest.raises(ValueError, match="no servers"):
            empty.p99_by_service()
        # throughput_by_job has a natural empty value; it must not raise.
        assert empty.throughput_by_job() == {}


class TestHelpers:
    def test_normalize(self):
        out = normalize({"a": 4.0, "b": 9.0}, {"a": 2.0, "b": 3.0})
        assert out == {"a": 2.0, "b": 3.0}
        with pytest.raises(ValueError):
            normalize({"a": 1.0}, {})

    def test_speedup(self):
        assert speedup(6.0, 2.0) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_with_average(self):
        out = with_average({"x": 1.0, "y": 3.0})
        assert out["Avg"] == pytest.approx(2.0)


class TestFormatting:
    def test_format_table_layout(self):
        text = format_table("T", ["c1", "c2"], {"row": [1.0, 2.0]}, unit="ms")
        assert "== T [ms]" in text
        assert "row" in text and "1.00" in text and "2.00" in text

    def test_format_table_validates_row_length(self):
        with pytest.raises(ValueError):
            format_table("T", ["c1"], {"row": [1.0, 2.0]})

    def test_format_series(self):
        text = format_series("S", {"alpha": 1.2345})
        assert "alpha" in text and "1.234" in text
