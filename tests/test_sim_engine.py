"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_ties_broken_by_insertion_order():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.schedule(5, order.append, label)
    sim.run()
    assert order == ["a", "b", "c"]


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_cancellation():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10, lambda: fired.append(1))
    sim.schedule(5, handle.cancel)
    sim.run()
    assert fired == []


def test_run_until_advances_clock_without_firing_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(100, lambda: fired.append(1))
    sim.run(until=50)
    assert fired == []
    assert sim.now == 50
    sim.run()
    assert fired == [1]


def test_max_events_limits_execution():
    sim = Simulator()
    count = []
    for i in range(10):
        sim.schedule(i + 1, count.append, i)
    fired = sim.run(max_events=4)
    assert fired == 4
    assert len(count) == 4


def test_events_can_schedule_events():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 30


def test_stop_breaks_run_immediately():
    sim = Simulator()
    seen = []

    def tick(n):
        seen.append(n)
        if n == 2:
            sim.stop()
        sim.schedule(10, tick, n + 1)

    sim.schedule(0, tick, 0)
    sim.run()
    assert seen == [0, 1, 2]
    # Run can resume afterwards.
    sim.run(max_events=1)
    assert seen == [0, 1, 2, 3]


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    h1 = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    h1.cancel()
    assert sim.peek_next_time() == 9


def test_reentrant_run_rejected():
    sim = Simulator()

    def bad():
        sim.run()

    sim.schedule(1, bad)
    with pytest.raises(RuntimeError):
        sim.run()


def test_events_fired_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_fired == 5
