"""Tests for ASCII plots and config serialization."""

import pytest

from repro.analysis.plots import bar_chart, grouped_bar_chart, sparkline
from repro.config import (
    FlushScope,
    ReplacementKind,
    SimulationConfig,
)
from repro.core.presets import hardharvest_block, harvest_term, noharvest
from repro.core.serialize import dumps, from_dict, loads, to_dict


class TestBarChart:
    def test_basic_render(self):
        text = bar_chart("T", {"a": 1.0, "b": 2.0}, width=10, unit="ms")
        assert "== T [ms]" in text
        lines = text.splitlines()
        assert lines[2].count("█") == 10  # b is the max
        assert lines[1].count("█") == 5

    def test_baseline_gridline(self):
        text = bar_chart("T", {"base": 2.0, "x": 1.0}, width=10, baseline="base")
        x_line = text.splitlines()[2]
        assert "|" in x_line

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("T", {})
        with pytest.raises(ValueError):
            bar_chart("T", {"a": 0.0})

    def test_grouped(self):
        text = grouped_bar_chart(
            "G", {"svc": {"s1": 1.0, "s2": 3.0}, "svc2": {"s1": 2.0, "s2": 1.0}}
        )
        assert "svc:" in text and "svc2:" in text
        assert text.count("█") > 0

    def test_sparkline(self):
        line = sparkline([0, 1, 2, 3, 2, 1, 0])
        assert len(line) == 7
        assert line[3] == "█"
        line2 = sparkline(list(range(100)), width=20)
        assert len(line2) == 20
        with pytest.raises(ValueError):
            sparkline([])


class TestSerialization:
    def test_round_trip_every_preset(self):
        for preset in (noharvest(), harvest_term(), hardharvest_block()):
            text = dumps(preset, SimulationConfig(seed=7))
            system, simcfg = loads(text)
            assert system == preset
            assert simcfg.seed == 7

    def test_enums_preserved(self):
        system, _ = loads(dumps(hardharvest_block()))
        assert system.flush_scope is FlushScope.HARVEST_REGION
        assert system.partition.replacement is ReplacementKind.HARDHARVEST

    def test_validation_runs_on_load(self):
        text = dumps(hardharvest_block())
        corrupted = text.replace('"harvest_fraction": 0.5', '"harvest_fraction": 7.0')
        with pytest.raises(ValueError):
            loads(corrupted)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            from_dict({"__type__": "NotAConfig"})
        with pytest.raises(ValueError):
            from_dict({"__enum__": "NotAnEnum", "value": 1})

    def test_to_dict_rejects_unserializable(self):
        with pytest.raises(TypeError):
            to_dict(object())

    def test_loaded_config_runs(self):
        from repro.core.experiment import run_server

        system, _ = loads(dumps(noharvest()))
        res = run_server(
            system,
            SimulationConfig(horizon_ms=50, warmup_ms=10, accesses_per_segment=8),
        )
        assert res.avg_p99_ms() > 0
