"""Unit tests for the SmartHarvest software agent's decision logic."""

from dataclasses import replace

import pytest

from repro.config import HarvestTrigger, SimulationConfig, SmartHarvestConfig
from repro.core.experiment import run_server_raw
from repro.core.presets import harvest_block, harvest_term
from repro.harvest.software import SmartHarvestAgent

FAST = SimulationConfig(horizon_ms=100, warmup_ms=20, accesses_per_segment=8, seed=41)


class TestConstruction:
    def test_requires_trigger(self):
        with pytest.raises(ValueError):
            SmartHarvestAgent(HarvestTrigger.NEVER, SmartHarvestConfig())

    def test_cause_gating(self):
        term = SmartHarvestAgent(HarvestTrigger.ON_TERMINATION, SmartHarvestConfig())
        block = SmartHarvestAgent(HarvestTrigger.ON_BLOCK, SmartHarvestConfig())
        assert term.cause_allowed("term") and not term.cause_allowed("block")
        assert block.cause_allowed("term") and block.cause_allowed("block")

    def test_reactive_lending_disabled(self):
        agent = SmartHarvestAgent(HarvestTrigger.ON_BLOCK, SmartHarvestConfig())
        assert agent.on_core_idle(object(), "term") is False


class TestInSystem:
    def test_monitor_ticks_fire(self):
        sim = run_server_raw(harvest_term(), FAST)
        period_ms = sim.system.smartharvest.monitor_period_ns / 1e6
        expected = FAST.horizon_ms / period_ms
        assert sim.agent.ticks >= expected * 0.5

    def test_predictions_populated(self):
        sim = run_server_raw(harvest_term(), FAST)
        assert len(sim.agent._ewma) == len(sim.primary_vms)
        for vm in sim.primary_vms:
            assert sim.agent.predicted_busy(vm.vm_id) >= 0.0

    def test_emergency_buffer_limits_lending(self):
        """With the buffer set to the entire Primary allocation, nothing is
        ever lendable."""
        frozen = replace(
            harvest_block(),
            smartharvest=replace(
                harvest_block().smartharvest, emergency_buffer_cores=32
            ),
        )
        sim = run_server_raw(frozen, FAST)
        assert sim.counters.get("lends", 0) == 0

    def test_zero_buffer_lends_most(self):
        loose = replace(
            harvest_block(),
            smartharvest=replace(
                harvest_block().smartharvest, emergency_buffer_cores=0
            ),
        )
        tight = replace(
            harvest_block(),
            smartharvest=replace(
                harvest_block().smartharvest, emergency_buffer_cores=8
            ),
        )
        loose_sim = run_server_raw(loose, FAST)
        tight_sim = run_server_raw(tight, FAST)
        assert loose_sim.counters["lends"] >= tight_sim.counters["lends"]

    def test_min_attached_floor_respected(self):
        """At any instant, a VM with lent cores keeps at least MIN_ATTACHED
        cores attached (unlent) — sampled at the end of the run."""
        sim = run_server_raw(harvest_block(), FAST)
        for vm in sim.primary_vms:
            lent = sum(1 for c in vm.cores if c.on_loan)
            if lent:
                attached = len(vm.cores) - lent
                assert attached >= SmartHarvestAgent.MIN_ATTACHED
