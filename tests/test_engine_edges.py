"""Failure-injection and edge-case tests for the per-server engine."""

from dataclasses import replace


from repro.config import (
    ControllerConfig,
    HarvestTrigger,
    SimulationConfig,
    SoftwareCosts,
)
from repro.core.experiment import run_server, run_server_raw
from repro.core.presets import (
    fig5_flush,
    harvest_block,
    hardharvest_block,
    noharvest,
)

TINY = SimulationConfig(horizon_ms=50, warmup_ms=10, accesses_per_segment=6, seed=23)


def test_horizon_cap_catches_runaway_configs():
    """Inject pathological software costs (seconds per reclaim): the run
    hits the safety cap instead of hanging, and reports it."""
    broken = replace(
        harvest_block(),
        software_costs=SoftwareCosts(
            detach_attach_ns=2_000_000_000,  # 2 s per detach!
            context_switch_ns=2_000_000_000,
            dispatch_delay_ns=50_000,
            queue_access_ns=2_000,
            request_switch_ns=5_000,
            reclaim_detect_ns=1_000_000_000,
            rebalance_ns=30_000,
            resteer_ns=8_000_000,
        ),
    )
    res = run_server(broken, TINY)
    # Either everything completed (got lucky) or the cap tripped — the
    # run must terminate either way and say which.
    assert res.simulated_seconds < 30
    assert res.counters.get("horizon_cap_hit", 0) in (0, 1)


def test_tiny_rq_overflows_into_memory():
    """A deliberately undersized hardware RQ spills to the In-memory
    Overflow Subqueue rather than dropping requests."""
    small_rq = replace(
        hardharvest_block(),
        controller=ControllerConfig(num_chunks=9, entries_per_chunk=1),
    )
    sim = run_server_raw(small_rq, replace(TINY, load_scale=2.0))
    assert sim.counters["queue_overflow_spills"] > 0
    assert sim._completions == sim._target_completions  # nothing lost


def test_zero_block_service_never_blocks():
    sim = run_server_raw(noharvest(), TINY)
    urlshort = next(vm for vm in sim.primary_vms if vm.name == "UrlShort")
    rec = sim.latency["UrlShort"]
    assert rec.count > 0
    # UrlShort requests are single-segment: their breakdown has no
    # post-block queueing spikes and its cores idled only on termination.
    for core in urlshort.cores:
        assert core.idle_cause in (None, "term")


def test_flush_only_config_flushes_without_batch_work():
    sim = run_server_raw(fig5_flush(HarvestTrigger.ON_BLOCK), TINY)
    assert sim.counters["lends"] > 0
    assert sim.harvest_vm.units_completed == 0
    assert sim.batch_throughput_per_s() == 0.0


def test_extreme_load_still_terminates():
    res = run_server(noharvest(), replace(TINY, load_scale=6.0))
    assert res.avg_p99_ms() > 0


def test_single_access_fidelity_floor():
    res = run_server(noharvest(), replace(TINY, accesses_per_segment=1))
    assert res.avg_p99_ms() > 0


def test_guest_cores_always_returned():
    sim = run_server_raw(harvest_block(), replace(TINY, horizon_ms=80))
    assert all(c.guest_vm_id is None for c in sim.cores)
    borrows = sim.counters.get("buffer_borrows", 0)
    returns = sim.counters.get("buffer_returns", 0)
    assert returns <= borrows
    # Guest continuation means one borrow can serve several requests, but
    # every borrow eventually returns (none outstanding at the end).
    if borrows:
        assert returns > 0


def test_warmup_excludes_early_requests():
    full = run_server_raw(noharvest(), replace(TINY, warmup_ms=0.0))
    cut = run_server_raw(noharvest(), replace(TINY, warmup_ms=25.0))
    assert cut.latency_all.count < full.latency_all.count


def test_counters_internally_consistent():
    sim = run_server_raw(hardharvest_block(), TINY)
    lends = sim.counters["lends"]
    reclaims = sim.counters["reclaims"]
    still_loaned = sum(
        1 for c in sim.cores if c.on_loan and not c.reclaim_in_flight
    )
    assert lends == reclaims + still_loaned
