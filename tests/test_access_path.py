"""Golden behaviors of the per-core access path (latency ordering, policy
wiring, infinite mode, DRAM interaction)."""

import pytest

from repro.config import (
    HierarchyConfig,
    MemoryConfig,
    PartitionConfig,
    ReplacementKind,
)
from repro.mem.dram import DramModel
from repro.mem.hierarchy import CoreMemory, build_llc
from repro.mem.replacement import HardHarvestPolicy, LruPolicy, RripPolicy
from repro.sim.units import cycles_to_ns


@pytest.fixture()
def llc():
    return build_llc("llc", HierarchyConfig(), 4)


def make(kind=ReplacementKind.LRU, enabled=False):
    part = PartitionConfig(enabled=enabled, replacement=kind)
    return CoreMemory(HierarchyConfig(), part, DramModel(MemoryConfig()))


def test_latency_strictly_ordered_by_level(llc):
    """L1 hit < L2 hit < LLC hit < DRAM for the same address."""
    h = HierarchyConfig()
    mem = make()
    addr = 0x8000
    dram_lat = mem.access(addr, False, False, llc, True, 0)     # cold: DRAM
    l1_lat = mem.access(addr, False, False, llc, True, 0)       # L1 hit
    # Evict from L1 only: conflict addresses in the same L1 set.
    l1_sets = mem.l1d.array.num_sets
    for i in range(1, h.l1d.ways + 1):
        mem.access(addr + i * l1_sets * 64, False, False, llc, True, 0)
    l2_lat = mem.access(addr, False, False, llc, True, 0)       # L2 hit
    # Flush private caches: next access hits the (unflushed) LLC.
    mem.flush_private_full()
    llc_lat = mem.access(addr, False, False, llc, True, 0)
    assert l1_lat < l2_lat < llc_lat < dram_lat
    assert dram_lat >= MemoryConfig().access_ns


def test_policy_wiring_matches_replacement_kind():
    assert isinstance(make(ReplacementKind.LRU).l2.array.policy, LruPolicy)
    assert isinstance(make(ReplacementKind.RRIP).l2.array.policy, RripPolicy)
    hh = make(ReplacementKind.HARDHARVEST, enabled=True)
    policy = hh.l2.array.policy
    assert isinstance(policy, HardHarvestPolicy)
    assert policy.harvest_mask == hh.part_l2.harvest


def test_tlb_miss_pays_page_walk(llc):
    mem = make()
    h = HierarchyConfig()
    # Touch enough distinct pages to overflow both TLBs, then measure a
    # fresh page: the latency includes the page-walk cycles.
    walk_ns = cycles_to_ns(h.memory.page_walk_cycles, h.freq_ghz)
    lat = mem.access(0x100000, False, False, llc, True, 0)
    assert lat >= walk_ns


def test_infinite_mode_ignores_capacity(llc):
    from dataclasses import replace

    cfg = replace(HierarchyConfig(), infinite=True)
    mem = CoreMemory(cfg, PartitionConfig(), DramModel(MemoryConfig()))
    lats = {mem.access(i * 4096 * 97, False, False, llc, True, 0) for i in range(50)}
    assert len(lats) == 1  # constant latency regardless of footprint


def test_dram_counts_only_llc_misses(llc):
    mem = make()
    dram = mem.dram
    mem.access(0xA000, False, False, llc, True, 0)
    assert dram.accesses == 1
    mem.access(0xA000, False, False, llc, True, 0)
    assert dram.accesses == 1  # L1 hit: no memory traffic


def test_writes_propagate_dirty_to_l1(llc):
    mem = make()
    mem.access(0xB000, False, False, llc, True, 0, write=True)
    set_index, tag = mem.l1d.locate(0xB000)
    cset = mem.l1d.array.sets[set_index]
    way = cset.find(tag, (1 << mem.l1d.array.ways) - 1)
    assert cset.dirty[way]


def test_flush_then_llc_warm_restart_cheaper_than_dram(llc):
    mem = make()
    addr = 0xC000
    cold = mem.access(addr, False, False, llc, True, 0)
    mem.flush_private_full()
    warmish = mem.access(addr, False, False, llc, True, 0)
    assert warmish < cold  # LLC partition survived the private flush
