"""Data-plane fast path: split-key hashing, cache v2, worker state reuse.

Three invariants anchor this layer:

* **Key stability** — the split-key fast path
  (:meth:`SweepPoint.payload_json` + :meth:`ResultCache.key_json`) must
  reproduce the legacy full-payload keys *byte-for-byte*, pinned against
  ``tests/data/golden_cache_keys.json`` so existing on-disk caches keep
  hitting across the optimization.
* **Format migration** — v2 (compressed) readers serve legacy v1 entries
  transparently, and every maintenance surface (``disk_stats``,
  ``prune_stale``, the CLI) understands both formats side by side.
* **Result parity** — the fast path (split keys, v2 entries, LRU layer,
  worker memo, compressed chunk IPC) and the ``REPRO_DATAPLANE_SLOWPATH``
  reference produce bit-identical sweep fingerprints, warm or cold.

Plus the job-store TTL satellite: eviction of terminal job records via
the manager, the offline pruner, and the CLI.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import zlib

import pytest

from repro.config import SimulationConfig
from repro.core.export import server_result_to_dict
from repro.core.presets import all_systems
from repro.parallel import (
    CacheStats,
    ResultCache,
    SweepPoint,
    SweepSpec,
    V2_MAGIC,
    canonical_json,
    run_sweep,
)
from repro.parallel.sweep import clear_fragment_memo
from tests._cache_key_golden import GOLDEN_VERSION, all_cases, load_golden

TINY = SimulationConfig(horizon_ms=10.0, warmup_ms=2.0, accesses_per_segment=2)

PAYLOAD = {"system": {"name": "X"}, "simulation": {"seed": 3}, "server_index": 0}
RESULT = {"p99": 1.25, "counters": {"lends": 4}}


def tiny_spec(n_systems=2, seeds=(0, 1)) -> SweepSpec:
    systems = dict(list(all_systems().items())[:n_systems])
    return SweepSpec(systems=systems, seeds=seeds, sim=TINY)


def fingerprints(results) -> dict:
    return {
        label: canonical_json(server_result_to_dict(r))
        for label, r in results.items()
    }


# ---------------------------------------------------------------------------
# Split-key hashing
# ---------------------------------------------------------------------------
GOLDEN = load_golden()
CASES = list(all_cases())


@pytest.mark.parametrize(
    "label,point", CASES, ids=[label for label, _ in CASES]
)
def test_payload_json_is_byte_identical_to_canonical(label, point):
    clear_fragment_memo()
    cold = point.payload_json()  # memo empty: every fragment built fresh
    warm = point.payload_json()  # memo primed: fragments served by identity
    assert cold == canonical_json(point.payload())
    assert warm == cold


@pytest.mark.parametrize(
    "label,point", CASES, ids=[label for label, _ in CASES]
)
def test_split_keys_match_golden_pins(label, point):
    """Split-key keying reproduces the pinned legacy on-disk keys."""
    cache = ResultCache(root="/nonexistent", version=GOLDEN_VERSION)
    assert cache.key_json(point.payload_json()) == GOLDEN[label]
    assert cache.key(point.payload()) == GOLDEN[label]


def test_fragment_memo_shares_instances_across_points():
    """Points sharing config instances reuse fragments, and the shared
    base plus tiny delta assembles to distinct, correct payloads."""
    system = next(iter(all_systems().values()))
    points = [
        SweepPoint(label=f"s{i}", system=system, sim=TINY, server_index=i)
        for i in range(4)
    ]
    texts = [p.payload_json() for p in points]
    assert len(set(texts)) == len(points)  # server_index delta is keyed
    for p, text in zip(points, texts):
        assert text == canonical_json(p.payload())


# ---------------------------------------------------------------------------
# Cache v2: format, migration, LRU layer, batch APIs
# ---------------------------------------------------------------------------
def test_v1_entry_readable_under_v2(tmp_path):
    legacy = ResultCache(root=str(tmp_path), store_format="v1")
    key = legacy.key(PAYLOAD)
    legacy.put(key, PAYLOAD, RESULT)
    with open(legacy._path(key), "rb") as fh:
        assert not fh.read().startswith(V2_MAGIC)  # plain JSON on disk
    modern = ResultCache(root=str(tmp_path))
    assert modern.store_format == "v2"
    assert modern.get(key) == RESULT  # transparent read, no invalidation
    assert modern.stats == CacheStats(hits=1)
    assert modern.read_entry(key)["payload"] == PAYLOAD


def test_v2_entries_are_marked_and_compressed(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    big_result = {"rows": [{"i": i, "x": i * 0.5} for i in range(500)]}
    key = cache.key(PAYLOAD)
    cache.put(key, PAYLOAD, big_result)
    blob = open(cache._path(key), "rb").read()
    assert blob.startswith(V2_MAGIC)
    plain = len(json.dumps(
        {"version": cache.version, "payload": PAYLOAD, "result": big_result}
    ))
    assert len(blob) < plain / 2  # genuinely compressed
    fresh = ResultCache(root=str(tmp_path))
    assert fresh.get(key) == big_result


def test_mixed_format_disk_stats_and_prune(tmp_path):
    v1 = ResultCache(root=str(tmp_path), store_format="v1")
    v2 = ResultCache(root=str(tmp_path), store_format="v2")
    v1.put(v1.key(PAYLOAD), PAYLOAD, RESULT)
    other = {**PAYLOAD, "server_index": 1}
    v2.put(v2.key(other), other, RESULT)
    stale = ResultCache(root=str(tmp_path), version="0.0.1")
    stale_payload = {**PAYLOAD, "server_index": 2}
    stale.put(stale.key(stale_payload), stale_payload, RESULT)

    disk = v2.disk_stats()
    assert disk["entries"] == 3
    assert disk["by_format"] == {"v1": 1, "v2": 2}
    assert disk["current"] == 2 and disk["stale"] == 1
    assert disk["by_version"][v2.version] == 2
    assert disk["by_version"]["0.0.1"] == 1

    # prune_stale removes the stale v2 entry, keeps both current formats.
    assert v2.prune_stale() == 1
    disk = v2.disk_stats()
    assert disk["entries"] == 2 and disk["stale"] == 0
    assert disk["by_format"] == {"v1": 1, "v2": 1}


def test_memory_layer_is_bounded_lru(tmp_path):
    cache = ResultCache(root=str(tmp_path), memory_entries=2)
    payloads = [{**PAYLOAD, "server_index": i} for i in range(3)]
    keys = [cache.key(p) for p in payloads]
    for k, p in zip(keys, payloads):
        cache.put(k, p, {"i": p["server_index"]})
    assert len(cache._memory) == 2  # bound holds; oldest evicted
    assert keys[0] not in cache._memory
    # Evicted key still hits from disk (and is re-remembered).
    assert cache.get(keys[0]) == {"i": 0}
    assert cache.stats.memory_hits == 0
    assert cache.get(keys[0]) == {"i": 0}
    assert cache.stats.memory_hits == 1
    # memory_entries=0 disables the layer entirely.
    bare = ResultCache(root=str(tmp_path), memory_entries=0)
    assert bare.get(keys[0]) == {"i": 0}
    assert bare.get(keys[0]) == {"i": 0}
    assert bare.stats.memory_hits == 0 and bare._memory == {}


def test_get_many_counter_parity_with_single_gets(tmp_path):
    payloads = [{**PAYLOAD, "server_index": i} for i in range(4)]
    seed = ResultCache(root=str(tmp_path))
    keys = [seed.key(p) for p in payloads]
    for k, p in zip(keys[:2], payloads[:2]):  # 2 present, 2 missing
        seed.put(k, p, RESULT)

    loop_cache = ResultCache(root=str(tmp_path))
    batch_cache = ResultCache(root=str(tmp_path))
    singles = {}
    for k in keys:
        hit = loop_cache.get(k)
        if hit is not None:
            singles[k] = hit
    batched = batch_cache.get_many(keys)
    assert batched == singles
    assert batch_cache.stats == loop_cache.stats
    assert batch_cache.stats.hits == 2 and batch_cache.stats.misses == 2


def test_put_many_stores_and_counts(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    payloads = [{**PAYLOAD, "server_index": i} for i in range(3)]
    entries = [(cache.key(p), p, {"i": p["server_index"]}) for p in payloads]
    assert cache.put_many(entries) == 3
    assert cache.stats.stores == 3
    fresh = ResultCache(root=str(tmp_path))
    assert fresh.get_many([k for k, _, _ in entries]) == {
        k: r for k, _, r in entries
    }


def test_put_accepts_canonical_payload_string(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    point_json = canonical_json(PAYLOAD)
    key = cache.key_json(point_json)
    assert key == cache.key(PAYLOAD)
    cache.put(key, point_json, RESULT)
    assert cache.read_entry(key)["payload"] == PAYLOAD
    # v1 writers parse the string back so the entry stays plain JSON.
    v1 = ResultCache(root=str(tmp_path), store_format="v1")
    v1.put(key, point_json, RESULT)
    with open(v1._path(key)) as fh:
        assert json.load(fh)["payload"] == PAYLOAD


# ---------------------------------------------------------------------------
# TOCTOU tolerance: concurrent pruners mid-walk
# ---------------------------------------------------------------------------
def test_disk_stats_tolerates_entry_vanishing_mid_walk(tmp_path, monkeypatch):
    cache = ResultCache(root=str(tmp_path))
    payloads = [{**PAYLOAD, "server_index": i} for i in range(3)]
    keys = [cache.key(p) for p in payloads]
    for k, p in zip(keys, payloads):
        cache.put(k, p, RESULT)
    victim = cache._path(keys[0])

    real_getsize = os.path.getsize

    def racing_getsize(path):
        if os.path.samefile(os.path.dirname(path), os.path.dirname(victim)) \
                and os.path.basename(path) == os.path.basename(victim):
            os.remove(victim)
            raise FileNotFoundError(path)
        return real_getsize(path)

    monkeypatch.setattr(os.path, "getsize", racing_getsize)
    disk = cache.disk_stats()
    # The vanished entry is skipped — not counted, not "<corrupt>".
    assert disk["entries"] == 2
    assert "<corrupt>" not in disk["by_version"]


def test_prune_stale_tolerates_entry_vanishing_mid_walk(tmp_path, monkeypatch):
    cache = ResultCache(root=str(tmp_path))
    key = cache.key(PAYLOAD)
    cache.put(key, PAYLOAD, RESULT)
    victim = cache._path(key)
    real_open = open

    def racing_open(path, *args, **kwargs):
        if isinstance(path, str) and path == victim:
            os.remove(victim)
            raise FileNotFoundError(path)
        return real_open(path, *args, **kwargs)

    monkeypatch.setattr("builtins.open", racing_open)
    assert cache.prune_stale() == 0  # skipped, not miscounted as stale
    assert cache.stats.invalidations == 0


def test_walk_tolerates_shard_vanishing_mid_walk(tmp_path, monkeypatch):
    cache = ResultCache(root=str(tmp_path))
    key = cache.key(PAYLOAD)
    cache.put(key, PAYLOAD, RESULT)
    shard_dir = os.path.dirname(cache._path(key))
    real_listdir = os.listdir

    def racing_listdir(path):
        names = real_listdir(path)
        if os.path.samefile(path, str(tmp_path)) and os.path.isdir(shard_dir):
            shutil.rmtree(shard_dir)  # pruner drops the whole shard
        return names

    monkeypatch.setattr(os, "listdir", racing_listdir)
    assert cache.disk_stats()["entries"] == 0
    assert len(cache) == 0


# ---------------------------------------------------------------------------
# Runner: worker memo, compressed chunk IPC, slowpath parity
# ---------------------------------------------------------------------------
def test_memoized_part_reuses_equal_content():
    import repro.parallel.runner as runner_mod

    runner_mod._init_worker()
    calls = []

    def build(part):
        calls.append(part)
        return dict(part)

    a = runner_mod._memoized_part("system", {"x": 1}, build)
    b = runner_mod._memoized_part("system", {"x": 1}, build)
    c = runner_mod._memoized_part("system", {"x": 2}, build)
    assert a is b and a is not c
    assert len(calls) == 2
    # Kind participates in the key: same content, different kind -> rebuild.
    runner_mod._memoized_part("simulation", {"x": 1}, build)
    assert len(calls) == 3
    runner_mod._init_worker()
    assert runner_mod._WORKER_MEMO == {}


def test_chunk_results_cross_as_compressed_bytes():
    import repro.parallel.runner as runner_mod

    point = next(iter(tiny_spec(n_systems=1, seeds=(0,)).points()))
    tasks = [(point.label, point.payload_json())]
    out = runner_mod.execute_payload_chunk(tasks)
    assert len(out) == 1
    label, blob, err = out[0]
    assert err is None and isinstance(blob, bytes)
    decoded = runner_mod._decode_chunk_result(blob)
    assert decoded == runner_mod.execute_payload(point.payload_json())
    # zlib layer is really there (and worth it).
    assert len(blob) < len(zlib.decompress(blob))


def test_slowpath_and_fast_path_share_keys_and_results(tmp_path, monkeypatch):
    """Cold slowpath run (legacy keying, v1 entries) then a fast warm run
    over the same directory: every point must hit — split keys equal
    legacy keys and v2 readers serve v1 entries — with identical
    fingerprints."""
    spec = tiny_spec(n_systems=2, seeds=(0,))
    monkeypatch.setenv("REPRO_DATAPLANE_SLOWPATH", "1")
    legacy_cache = ResultCache(root=str(tmp_path))
    assert legacy_cache.store_format == "v1"
    assert legacy_cache.memory_entries == 0
    cold = run_sweep(spec, workers=1, cache=legacy_cache)
    assert cold.computed == 2

    monkeypatch.delenv("REPRO_DATAPLANE_SLOWPATH")
    warm_cache = ResultCache(root=str(tmp_path))
    warm = run_sweep(spec, workers=1, cache=warm_cache)
    assert warm.from_cache == 2 and warm.computed == 0
    assert fingerprints(warm.results) == fingerprints(cold.results)


def test_fast_cold_then_slowpath_warm(tmp_path, monkeypatch):
    """The reverse direction: v2 entries written by the fast path are
    served under the slowpath's legacy keying (same keys, both formats
    readable)."""
    spec = tiny_spec(n_systems=1, seeds=(0, 1))
    cold = run_sweep(spec, workers=1, cache=ResultCache(root=str(tmp_path)))
    assert cold.computed == 2
    monkeypatch.setenv("REPRO_DATAPLANE_SLOWPATH", "1")
    warm = run_sweep(spec, workers=1, cache=ResultCache(root=str(tmp_path)))
    assert warm.from_cache == 2 and warm.computed == 0
    assert fingerprints(warm.results) == fingerprints(cold.results)


def test_pooled_fast_path_matches_serial(tmp_path):
    spec = tiny_spec(n_systems=2, seeds=(0,))
    serial = run_sweep(spec, workers=1)
    pooled = run_sweep(spec, workers=2)
    assert fingerprints(serial.results) == fingerprints(pooled.results)


# ---------------------------------------------------------------------------
# Job-store TTL / eviction
# ---------------------------------------------------------------------------
def _terminal_record(store, job_id, state="done", finished_s=None):
    from repro.service.jobs import JobRecord

    record = JobRecord(
        job_id=job_id,
        kind="sweep",
        request={"kind": "sweep"},
        state=state,
        submitted_s=finished_s or time.time(),
        finished_s=finished_s,
    )
    store.save(record)
    store.write_result(job_id, {"digest": "d" * 8})
    return record


def test_job_store_delete_removes_siblings(tmp_path):
    from repro.service.jobs import JobStore

    store = JobStore(str(tmp_path))
    _terminal_record(store, "a" * 12, finished_s=time.time())
    with open(store.trace_path("a" * 12), "w") as fh:
        fh.write("{}")
    assert store.delete("a" * 12) is True
    for path in (store.job_path("a" * 12), store.result_path("a" * 12),
                 store.trace_path("a" * 12)):
        assert not os.path.exists(path)
    assert store.delete("a" * 12) is False  # already gone


def test_manager_evicts_only_expired_terminal_jobs(tmp_path):
    from repro.service.jobs import JobManager, JobStore

    store = JobStore(str(tmp_path))
    now = time.time()
    _terminal_record(store, "old0", state="done", finished_s=now - 100)
    _terminal_record(store, "old1", state="failed", finished_s=now - 90)
    _terminal_record(store, "new0", state="done", finished_s=now - 1)
    running = _terminal_record(store, "run0", state="running",
                               finished_s=now - 500)
    assert running.state == "running"

    manager = JobManager(store)
    manager.recover()
    evicted = manager.evict_expired(ttl_s=30.0, now=now)
    assert evicted == ["old0", "old1"]  # oldest first; new0/run0 kept
    assert manager.evicted == 2
    assert manager.get("old0") is None
    assert manager.get("new0") is not None
    assert manager.get("run0") is not None  # non-terminal never evicted
    assert not os.path.exists(store.result_path("old0"))
    # Second sweep finds nothing new.
    assert manager.evict_expired(ttl_s=30.0, now=now) == []


def test_prune_job_records_offline(tmp_path):
    from repro.service.jobs import JobStore, prune_job_records

    store = JobStore(str(tmp_path))
    now = time.time()
    _terminal_record(store, "old0", finished_s=now - 100)
    _terminal_record(store, "live", state="running", finished_s=None)
    assert prune_job_records(store, ttl_s=30.0, now=now) == 1
    assert not os.path.exists(store.job_path("old0"))
    assert os.path.exists(store.job_path("live"))


def test_cli_cache_prune_jobs(tmp_path, capsys):
    from repro.__main__ import main
    from repro.service.jobs import JobStore

    store = JobStore(str(tmp_path))
    _terminal_record(store, "old0", finished_s=time.time() - 100)
    stats_json = str(tmp_path / "stats.json")
    assert main([
        "cache", "--cache-dir", str(tmp_path),
        "--prune-jobs", "30", "--stats-json", stats_json,
    ]) == 0
    out = capsys.readouterr().out
    assert "pruned 1 terminal job record(s)" in out
    with open(stats_json) as fh:
        stats = json.load(fh)
    assert stats["pruned_jobs"] == 1 and stats["jobs"] == 0


def test_service_evict_loop_end_to_end(tmp_path):
    from repro.service import start_in_thread
    from repro.service.jobs import JobStore

    store = JobStore(str(tmp_path))
    _terminal_record(store, "old0", finished_s=time.time() - 100)
    handle = start_in_thread(cache_dir=str(tmp_path), service_workers=0,
                             job_ttl_s=2.0)
    try:
        deadline = time.time() + 10
        while handle.service.manager.get("old0") and time.time() < deadline:
            time.sleep(0.1)
        assert handle.service.manager.get("old0") is None
        assert handle.service.manager.evicted == 1
        assert not os.path.exists(store.job_path("old0"))
    finally:
        handle.stop()


def test_metrics_expose_evictions_and_memory_hits(tmp_path):
    from repro.service.jobs import JobManager, JobStore
    from repro.service.metrics import MetricsRegistry

    manager = JobManager(JobStore(str(tmp_path)))
    manager.evicted = 3
    manager.fold_cache_stats(CacheStats(hits=5, memory_hits=2))
    text = MetricsRegistry(manager, service_workers=1).render()
    assert "repro_service_jobs_evicted_total 3" in text
    assert "repro_cache_memory_hits_total 2" in text
    assert "repro_cache_hits_total 5" in text
