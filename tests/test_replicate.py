"""Tests for multi-seed replication and confidence intervals."""

import pytest

from repro.config import SimulationConfig
from repro.core.presets import hardharvest_block, noharvest
from repro.core.replicate import (
    MetricSummary,
    compare_metric,
    replicate,
    summarize_samples,
)

FAST = SimulationConfig(horizon_ms=50, warmup_ms=10, accesses_per_segment=6)


class TestSummaries:
    def test_basic_stats(self):
        s = summarize_samples([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.ci_low < 2.0 < s.ci_high
        assert s.n == 3

    def test_single_sample_degenerate(self):
        s = summarize_samples([5.0])
        assert s.mean == s.ci_low == s.ci_high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_samples([])

    def test_ci_narrows_with_more_samples(self):
        wide = summarize_samples([1, 2, 3])
        narrow = summarize_samples([1, 2, 3] * 5)
        assert (narrow.ci_high - narrow.ci_low) < (wide.ci_high - wide.ci_low)


class TestReplicate:
    def test_distinct_seeds_distinct_results(self):
        runs = replicate(noharvest(), FAST, seeds=[1, 2, 3])
        p99s = [r.avg_p99_ms() for r in runs]
        assert len(set(p99s)) == 3

    def test_same_seed_reproduces(self):
        a = replicate(noharvest(), FAST, seeds=[7])[0]
        b = replicate(noharvest(), FAST, seeds=[7])[0]
        assert a.p99_ms == b.p99_ms

    def test_no_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(noharvest(), FAST, seeds=[])


class TestCompare:
    def test_paired_ratio_summary(self):
        out = compare_metric(
            {"NoHarvest": noharvest(), "HardHarvest-Block": hardharvest_block()},
            FAST,
            seeds=[1, 2, 3],
            metric=lambda r: r.avg_busy_cores,
            baseline="NoHarvest",
        )
        base_ratio = out["NoHarvest"]["ratio_vs_baseline"]
        assert base_ratio.mean == pytest.approx(1.0)
        hh_ratio = out["HardHarvest-Block"]["ratio_vs_baseline"]
        # Utilization gain is large and consistent: CI well above 1.
        assert hh_ratio.ci_low > 2.0
        assert isinstance(out["HardHarvest-Block"]["absolute"], MetricSummary)
